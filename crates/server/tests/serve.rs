//! End-to-end protocol tests for `xsdf serve`: in-process servers driven
//! over real loopback sockets, plus process-level tests of the binary.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Command, Stdio};
use std::time::Duration;

use server::http::{self, ClientResponse};
use server::{Server, ServerConfig, ServerSummary};

const HEALTHY: &str = "<films><picture><cast><star>Kelly</star></cast></picture></films>";

/// Binds a server on a free loopback port, runs `f` against it, then
/// drains and returns the final summary.
fn with_server<F>(mut config: ServerConfig, f: F) -> ServerSummary
where
    F: FnOnce(SocketAddr),
{
    let sn = semnet::mini_wordnet();
    config.addr = "127.0.0.1:0".to_string();
    let server = Server::bind(sn, config).expect("bind loopback server");
    let addr = server.local_addr();
    let handle = server.handle();
    let mut summary = None;
    std::thread::scope(|scope| {
        let run = scope.spawn(|| server.run());
        // A panicking test body must still drain the server, or the scope
        // join would hang forever on the accept loop.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr)));
        handle.shutdown();
        summary = Some(run.join().expect("server thread"));
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
    });
    summary.unwrap()
}

/// One fresh-connection request (convenience for single-shot tests).
fn request(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut carry = Vec::new();
    http::client_roundtrip(
        &mut stream,
        &mut carry,
        method,
        target,
        &[("Content-Type", "application/xml")],
        body,
    )
    .expect("roundtrip")
}

fn body_str(response: &ClientResponse) -> String {
    String::from_utf8_lossy(&response.body).into_owned()
}

#[test]
fn healthz_metrics_and_routing() {
    with_server(ServerConfig::default(), |addr| {
        let health = request(addr, "GET", "/healthz", b"");
        assert_eq!(health.status, 200);
        assert!(body_str(&health).contains("\"status\":\"ok\""));

        let metrics = request(addr, "GET", "/metrics", b"");
        assert_eq!(metrics.status, 200);
        let json = body_str(&metrics);
        for key in [
            "\"server_state\":",
            "\"documents\":",
            "\"queue_capacity\":",
            "\"uptime_ms\":",
            "\"endpoint_healthz_requests\":",
        ] {
            assert!(json.contains(key), "metrics JSON missing {key}: {json}");
        }

        let missing = request(addr, "GET", "/nope", b"");
        assert_eq!(missing.status, 404);

        let wrong_method = request(addr, "DELETE", "/disambiguate", b"");
        assert_eq!(wrong_method.status, 405);
        assert_eq!(wrong_method.header("allow"), Some("POST"));
    });
}

#[test]
fn healthz_reports_readiness_and_memory_state() {
    with_server(ServerConfig::default(), |addr| {
        let health = request(addr, "GET", "/healthz", b"");
        assert_eq!(health.status, 200);
        let body = body_str(&health);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"ready\":true"), "{body}");
        assert!(body.contains("\"degraded\":false"), "{body}");
        assert!(body.contains("\"uptime_ms\":"), "{body}");
        assert!(body.contains("\"cache_bytes\":"), "{body}");
    });
}

#[test]
fn hard_watermark_sheds_with_503_then_recovers_after_the_trim() {
    // A 1-byte hard watermark: the first document populates the cache
    // past it, so the next request is shed (503 + Retry-After) and the
    // shed itself trims the cache back under pressure — after which
    // admissions resume. No restart, no janitor thread.
    let config = ServerConfig {
        mem_hard: 1,
        ..ServerConfig::default()
    };
    with_server(config, |addr| {
        let first = request(addr, "POST", "/disambiguate", HEALTHY.as_bytes());
        assert_eq!(first.status, 200, "empty cache is under any watermark");

        let health = request(addr, "GET", "/healthz", b"");
        let body = body_str(&health);
        assert!(body.contains("\"status\":\"degraded\""), "{body}");
        assert!(body.contains("\"ready\":false"), "{body}");

        let shed = request(addr, "POST", "/disambiguate", HEALTHY.as_bytes());
        assert_eq!(shed.status, 503, "{}", body_str(&shed));
        assert!(
            shed.header("retry-after").is_some(),
            "shed sets Retry-After"
        );
        assert!(body_str(&shed).contains("pressure"));

        // The shed trimmed the cache to the target (hard/2 = 0 bytes), so
        // the server is ready again and the next request is admitted.
        let recovered = request(addr, "POST", "/disambiguate", HEALTHY.as_bytes());
        assert_eq!(recovered.status, 200, "{}", body_str(&recovered));

        let metrics = body_str(&request(addr, "GET", "/metrics", b""));
        for key in [
            "\"rejected_pressure\": 1",
            "\"cache_trims\": 1",
            "\"mem_hard_bytes\": 1",
            "\"cache_evictions\":",
            "\"cache_bytes\":",
            "\"cache_bytes_peak\":",
            "\"degraded\":",
        ] {
            assert!(metrics.contains(key), "metrics missing {key}: {metrics}");
        }
    });
}

#[test]
fn soft_watermark_degrades_health_but_keeps_admitting() {
    let config = ServerConfig {
        mem_soft: 1,
        ..ServerConfig::default()
    };
    with_server(config, |addr| {
        let first = request(addr, "POST", "/disambiguate", HEALTHY.as_bytes());
        assert_eq!(first.status, 200);

        // Over the soft watermark: degraded, but still ready and serving.
        let second = request(addr, "POST", "/disambiguate", HEALTHY.as_bytes());
        assert_eq!(second.status, 200, "soft pressure never sheds");

        let health = body_str(&request(addr, "GET", "/healthz", b""));
        assert!(health.contains("\"status\":\"degraded\""), "{health}");
        assert!(health.contains("\"ready\":true"), "{health}");
        assert!(health.contains("\"degraded\":true"), "{health}");

        let metrics = body_str(&request(addr, "GET", "/metrics", b""));
        assert!(
            metrics.contains("\"rejected_pressure\": 0"),
            "soft watermark sheds nothing: {metrics}"
        );
        assert!(
            !metrics.contains("\"cache_trims\": 0"),
            "admissions over the soft watermark must have trimmed: {metrics}"
        );
    });
}

#[test]
fn disambiguate_returns_annotated_xml() {
    let summary = with_server(ServerConfig::default(), |addr| {
        let response = request(addr, "POST", "/disambiguate", HEALTHY.as_bytes());
        assert_eq!(response.status, 200, "{}", body_str(&response));
        assert_eq!(response.header("content-type"), Some("application/xml"));
        assert!(response.header("x-xsdf-nodes").is_some());
        assert!(response.header("x-xsdf-targets").is_some());
        assert!(response.header("x-xsdf-assigned").is_some());
        let body = body_str(&response);
        assert!(body.starts_with("<element"), "{body}");
        assert!(body.contains("concept="), "annotations present: {body}");
        assert!(body.ends_with('\n'), "annotated XML ends with newline");
    });
    assert_eq!(summary.documents, 1);
    assert_eq!(summary.failed, 0);
}

#[test]
fn malformed_http_gets_400_and_close() {
    with_server(ServerConfig::default(), |addr| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"THIS IS NOT HTTP\r\n\r\n")
            .expect("write garbage");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read until close");
        assert!(raw.starts_with("HTTP/1.1 400 "), "{raw}");
        assert!(raw.contains("\"kind\":\"bad_request\""), "{raw}");
    });
}

#[test]
fn malformed_xml_gets_400_parse_kind() {
    with_server(ServerConfig::default(), |addr| {
        let response = request(addr, "POST", "/disambiguate", b"<broken");
        assert_eq!(response.status, 400);
        assert!(body_str(&response).contains("\"kind\":\"parse\""));
    });
}

#[test]
fn bad_query_parameters_get_400() {
    with_server(ServerConfig::default(), |addr| {
        for target in [
            "/disambiguate?radius=banana",
            "/disambiguate?process=quantum",
            "/disambiguate?raduis=2", // typo must not silently pass
        ] {
            let response = request(addr, "POST", target, HEALTHY.as_bytes());
            assert_eq!(response.status, 400, "{target}");
            assert!(body_str(&response).contains("\"kind\":\"bad_request\""));
        }
    });
}

#[test]
fn oversized_body_gets_413_limit_kind() {
    let config = ServerConfig {
        max_body: Some(64),
        ..ServerConfig::default()
    };
    with_server(config, |addr| {
        let big = "x".repeat(1024);
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut carry = Vec::new();
        let response = http::client_roundtrip(
            &mut stream,
            &mut carry,
            "POST",
            "/disambiguate",
            &[("Content-Type", "application/xml")],
            big.as_bytes(),
        )
        .expect("roundtrip");
        assert_eq!(response.status, 413);
        assert!(body_str(&response).contains("\"kind\":\"limit\""));
        assert!(response.close, "oversized request closes the connection");
    });
}

#[test]
fn deadline_gets_504_deadline_kind() {
    let config = ServerConfig {
        deadline: Some(Duration::from_nanos(1)),
        ..ServerConfig::default()
    };
    with_server(config, |addr| {
        let response = request(addr, "POST", "/disambiguate", HEALTHY.as_bytes());
        assert_eq!(response.status, 504, "{}", body_str(&response));
        assert!(body_str(&response).contains("\"kind\":\"deadline\""));
    });
}

/// Saturates a 1-worker, 1-slot-queue server with closed-loop clients:
/// backpressure must answer 429 + `Retry-After`, and every response must
/// be either a success or an explicit rejection — nothing hangs, nothing
/// is silently dropped.
#[test]
fn queue_full_gets_429_with_retry_after() {
    let config = ServerConfig {
        workers: 1,
        queue: 1,
        ..ServerConfig::default()
    };
    let docs = server::bench::corpus_documents();
    let summary = with_server(config, |addr| {
        let saw_429 = std::sync::atomic::AtomicUsize::new(0);
        let saw_200 = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for worker in 0..12 {
                let docs = &docs;
                let saw_429 = &saw_429;
                let saw_200 = &saw_200;
                scope.spawn(move || {
                    let deadline = std::time::Instant::now() + Duration::from_secs(2);
                    let mut next = worker;
                    while std::time::Instant::now() < deadline {
                        let doc = &docs[next % docs.len()];
                        next += 1;
                        let response = request(addr, "POST", "/disambiguate", doc.as_bytes());
                        match response.status {
                            200 => {
                                saw_200.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            429 => {
                                assert_eq!(
                                    response.header("retry-after"),
                                    Some("1"),
                                    "429 must carry Retry-After"
                                );
                                assert!(body_str(&response).contains("\"kind\":\"overloaded\""));
                                saw_429.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            other => panic!("unexpected status {other}"),
                        }
                        // Enough evidence from this worker.
                        if saw_429.load(std::sync::atomic::Ordering::Relaxed) > 0
                            && saw_200.load(std::sync::atomic::Ordering::Relaxed) > 0
                        {
                            break;
                        }
                    }
                });
            }
        });
        assert!(
            saw_200.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "some requests must be admitted"
        );
        assert!(
            saw_429.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "a saturated 1-worker server must shed load with 429"
        );
    });
    assert!(summary.metrics_json.contains("\"rejected_queue_full\":"));
}

/// The same document posted by concurrent clients (cold cache, warm
/// cache, interleaved) must produce byte-identical annotated XML.
#[test]
fn concurrent_clients_get_byte_identical_responses() {
    with_server(ServerConfig::default(), |addr| {
        let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for _ in 0..3 {
                            let response =
                                request(addr, "POST", "/disambiguate", HEALTHY.as_bytes());
                            assert_eq!(response.status, 200);
                            out.push(response.body);
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        assert_eq!(bodies.len(), 12);
        for body in &bodies[1..] {
            assert_eq!(body, &bodies[0], "responses must be byte-identical");
        }
    });
}

/// Shutdown must drain: every request the engine processed corresponds to
/// a complete response delivered to a client, at 1, 2, and 8 workers.
#[test]
fn shutdown_drains_accepted_requests_at_1_2_and_8_workers() {
    let docs = server::bench::corpus_documents();
    for workers in [1usize, 2, 8] {
        let config = ServerConfig {
            workers,
            ..ServerConfig::default()
        };
        let delivered_200 = std::sync::atomic::AtomicUsize::new(0);
        let summary = with_server(config, |addr| {
            std::thread::scope(|scope| {
                for worker in 0..workers * 2 {
                    let docs = &docs;
                    let delivered_200 = &delivered_200;
                    scope.spawn(move || {
                        let mut stream = match TcpStream::connect(addr) {
                            Ok(s) => s,
                            Err(_) => return, // drain already closed the door
                        };
                        let mut carry = Vec::new();
                        for i in 0..5 {
                            let doc = &docs[(worker + i) % docs.len()];
                            match http::client_roundtrip(
                                &mut stream,
                                &mut carry,
                                "POST",
                                "/disambiguate",
                                &[("Content-Type", "application/xml")],
                                doc.as_bytes(),
                            ) {
                                Ok(response) if response.status == 200 => {
                                    delivered_200
                                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    if response.close {
                                        break;
                                    }
                                }
                                // 503 draining / 429, or the drain cut the
                                // connection: both are clean rejections.
                                Ok(_) | Err(_) => break,
                            }
                        }
                    });
                }
                // Let some requests through, then drain mid-stream.
                std::thread::sleep(Duration::from_millis(20));
                let shutdown = request(addr, "POST", "/shutdown", b"");
                assert_eq!(shutdown.status, 200);
                assert!(body_str(&shutdown).contains("\"status\":\"draining\""));
            });
        });
        assert_eq!(
            summary.documents,
            delivered_200.load(std::sync::atomic::Ordering::Relaxed),
            "workers={workers}: every processed document must reach a client"
        );
        assert!(
            summary
                .metrics_json
                .contains("\"server_state\": \"stopped\"")
                || summary
                    .metrics_json
                    .contains("\"server_state\":\"stopped\""),
            "workers={workers}: final snapshot taken after the drain barrier"
        );
    }
}

/// A draining server must refuse new work with 503 + `Retry-After`.
#[test]
fn requests_during_drain_get_503() {
    let sn = semnet::mini_wordnet();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    };
    let server = Server::bind(sn, config).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    std::thread::scope(|scope| {
        let run = scope.spawn(|| server.run());
        // Open a keep-alive connection while running, then drain, then try
        // to use it: the pipelined request must get an explicit 503.
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut carry = Vec::new();
        let first = http::client_roundtrip(&mut stream, &mut carry, "GET", "/healthz", &[], b"")
            .expect("healthz while running");
        assert_eq!(first.status, 200);

        handle.shutdown();
        // The request may race the drain flag: a connection closed by the
        // idle reaper is an equally clean drain, but if a response comes,
        // it must be the structured rejection.
        if let Ok(response) = http::client_roundtrip(
            &mut stream,
            &mut carry,
            "POST",
            "/disambiguate",
            &[("Content-Type", "application/xml")],
            HEALTHY.as_bytes(),
        ) {
            assert_eq!(response.status, 503, "{}", body_str(&response));
            assert_eq!(response.header("retry-after"), Some("1"));
            assert!(body_str(&response).contains("\"kind\":\"draining\""));
        }
        run.join().expect("server thread");
    });
}

// ---------------------------------------------------------------------
// Process-level: the actual binary.
// ---------------------------------------------------------------------

/// The server's 200 body must be byte-identical to what `xsdf batch
/// --annotate` prints for the same document and configuration.
#[test]
fn serve_body_matches_batch_annotate_bytes() {
    let dir = std::env::temp_dir().join(format!("xsdf-serve-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let docs = server::bench::corpus_documents();
    let mut cases = vec![HEALTHY.to_string()];
    cases.extend(docs.iter().take(3).cloned());

    for (i, doc) in cases.iter().enumerate() {
        let path = dir.join(format!("doc-{i}.xml"));
        std::fs::write(&path, doc).expect("write doc");

        let output = Command::new(env!("CARGO_BIN_EXE_xsdf"))
            .args(["batch", path.to_str().unwrap(), "--annotate"])
            .output()
            .expect("run xsdf batch");
        assert!(output.status.success(), "batch failed for doc {i}");
        let stdout = String::from_utf8(output.stdout).expect("utf8 stdout");
        // Per-document output is one summary line, then the annotated XML.
        let (_header, annotated) = stdout
            .split_once('\n')
            .expect("batch prints a summary line before the XML");

        let served = with_server(ServerConfig::default(), |addr| {
            let response = request(addr, "POST", "/disambiguate", doc.as_bytes());
            assert_eq!(response.status, 200, "doc {i}");
            assert_eq!(
                body_str(&response),
                annotated,
                "doc {i}: served body must be byte-identical to batch --annotate"
            );
        });
        assert_eq!(served.documents, 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns the binary, parses the bound address off stderr, and returns
/// the child plus its address and the buffered stderr reader.
fn spawn_serve(extra: &[&str]) -> (std::process::Child, SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xsdf"));
    cmd.args(["serve", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn xsdf serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve must announce its address")
            .expect("read stderr");
        if let Some(rest) = line.strip_prefix("listening on ") {
            let addr = rest.split(' ').next().expect("addr token");
            break addr.parse().expect("socket addr");
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

#[test]
fn serve_binary_serves_and_drains_on_shutdown_endpoint() {
    let dir = std::env::temp_dir().join(format!("xsdf-serve-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics_path = dir.join("serve-metrics.json");
    let (mut child, addr) = spawn_serve(&["--metrics", metrics_path.to_str().unwrap()]);

    let response = request(addr, "POST", "/disambiguate", HEALTHY.as_bytes());
    assert_eq!(response.status, 200, "{}", body_str(&response));
    let health = request(addr, "GET", "/healthz", b"");
    assert_eq!(health.status, 200);

    let shutdown = request(addr, "POST", "/shutdown", b"");
    assert_eq!(shutdown.status, 200);
    let status = child.wait().expect("serve exit");
    assert_eq!(status.code(), Some(0), "drain exits cleanly");

    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics flushed on drain");
    assert!(metrics.contains("\"documents\": 1") || metrics.contains("\"documents\":1"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_binary_drains_on_sigint() {
    let (mut child, addr) = spawn_serve(&[]);
    let response = request(addr, "POST", "/disambiguate", HEALTHY.as_bytes());
    assert_eq!(response.status, 200);

    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("send SIGINT");
    assert!(kill.success());
    let status = child.wait().expect("serve exit");
    assert_eq!(status.code(), Some(0), "SIGINT drains and exits cleanly");
}
