//! Process-level chaos: the `xsdf` binary with `XSDF_FAILPOINTS` set.
//!
//! Compiled only with `--features failpoints` (which forwards
//! `runtime/failpoints` into the binary); CI runs these alongside the
//! runtime's in-process chaos suite.
#![cfg(feature = "failpoints")]

use std::process::Command;

use corpus::pathological;

const HEALTHY: &str = "<films><picture><cast><star>Kelly</star></cast></picture></films>";
const PANIC_MARKER: &str = "CHAOS_PANIC";
const SLOW_MARKER: &str = "CHAOS_SLOW";

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xsdf-chaos-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn write_temp(dir: &std::path::Path, name: &str, content: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write temp doc");
    path.to_string_lossy().into_owned()
}

#[test]
fn batch_exits_2_on_a_mixed_batch_with_injected_panics() {
    let dir = temp_dir("mixed");
    let good = write_temp(&dir, "good.xml", HEALTHY);
    let bad = write_temp(&dir, "bad.xml", "<broken");
    let chaos = write_temp(
        &dir,
        "chaos.xml",
        &pathological::with_marker(HEALTHY, PANIC_MARKER),
    );

    let output = Command::new(env!("CARGO_BIN_EXE_xsdf"))
        .args(["batch", &good, &bad, &chaos])
        .env("XSDF_FAILPOINTS", format!("parse=panic-if({PANIC_MARKER})"))
        .output()
        .expect("run xsdf batch");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(2),
        "expected partial-failure exit, stderr: {stderr}"
    );
    assert!(stderr.contains("[parse]"), "stderr: {stderr}");
    assert!(stderr.contains("[panic]"), "stderr: {stderr}");
    assert!(
        stderr.contains("2 of 3 document(s) failed"),
        "stderr: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn first_sigint_drains_batch_writes_metrics_and_exits_2() {
    let dir = temp_dir("sigint");
    // A batch long enough to interrupt: every document hits a delay
    // failpoint, single worker, so the run takes ~docs × delay.
    let slow_doc = pathological::with_marker(HEALTHY, SLOW_MARKER);
    let files: Vec<String> = (0..20)
        .map(|i| write_temp(&dir, &format!("slow-{i}.xml"), &slow_doc))
        .collect();
    let metrics_path = dir.join("metrics.json");

    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xsdf"));
    cmd.arg("batch")
        .args(&files)
        .args([
            "--threads",
            "1",
            "--metrics",
            metrics_path.to_str().unwrap(),
        ])
        .env(
            "XSDF_FAILPOINTS",
            format!("disambiguate=delay-if({SLOW_MARKER}, 150)"),
        )
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped());
    let child = cmd.spawn().expect("spawn xsdf batch");

    // Give it time to start a document, then deliver the first Ctrl-C.
    std::thread::sleep(std::time::Duration::from_millis(400));
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("send SIGINT");
    assert!(kill.success(), "kill -INT failed");

    let output = child.wait_with_output().expect("wait for xsdf batch");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(2),
        "interrupted batch must exit with the partial-failure code, stderr: {stderr}"
    );
    assert!(
        stderr.contains("interrupted"),
        "stderr should report the interrupt: {stderr}"
    );
    let metrics = std::fs::read_to_string(&metrics_path)
        .expect("metrics JSON must be written despite the interrupt");
    assert!(metrics.contains("\"failed_cancelled\":"), "{metrics}");

    let _ = std::fs::remove_dir_all(&dir);
}
