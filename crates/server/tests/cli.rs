//! Integration tests of the `xsdf` command-line tool, driving the real
//! binary via `CARGO_BIN_EXE_xsdf`.

use std::process::Command;

fn xsdf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xsdf"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("xsdf-cli-test-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn disambiguate_prints_annotated_xml() {
    let doc = write_temp(
        "fig1.xml",
        "<films><picture><cast><star>Kelly</star></cast></picture></films>",
    );
    let output = xsdf()
        .arg("disambiguate")
        .arg(&doc)
        .arg("--quiet")
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("concept=\"kelly.grace\""), "{stdout}");
    assert!(stdout.contains("concept=\"cast.actors\""));
}

#[test]
fn disambiguate_honors_flags() {
    let doc = write_temp("flags.xml", "<cast><star>Kelly</star></cast>");
    let output = xsdf()
        .arg("disambiguate")
        .arg(&doc)
        .args([
            "--radius",
            "1",
            "--process",
            "combined",
            "--threshold",
            "auto",
            "--quiet",
        ])
        .output()
        .unwrap();
    assert!(output.status.success());
}

#[test]
fn ambiguity_ranks_nodes() {
    let doc = write_temp(
        "amb.xml",
        "<person><address><state/><zip/></address></person>",
    );
    let output = xsdf().arg("ambiguity").arg(&doc).output().unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("state"));
    // The first data row (highest Amb_Deg) should be the polysemous,
    // shallow "state", not the near-monosemous "zip".
    let first_data_line = stdout.lines().nth(1).unwrap();
    assert!(first_data_line.ends_with("state"), "{first_data_line}");
}

#[test]
fn senses_lists_inventory() {
    let output = xsdf().args(["senses", "state"]).output().unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("8 sense(s)"));
    assert!(stdout.contains("state.province"));
}

#[test]
fn network_stats_and_export_roundtrip() {
    let out = std::env::temp_dir().join(format!("xsdf-cli-export-{}.sn", std::process::id()));
    let status = xsdf()
        .args(["network", "--export"])
        .arg(&out)
        .status()
        .unwrap();
    assert!(status.success());
    // The exported network loads back and drives disambiguation.
    let doc = write_temp("roundtrip.xml", "<cast><star>Kelly</star></cast>");
    let output = xsdf()
        .arg("disambiguate")
        .arg(&doc)
        .arg("--network")
        .arg(&out)
        .arg("--quiet")
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(String::from_utf8_lossy(&output.stdout).contains("kelly.grace"));
    let _ = std::fs::remove_file(out);
}

#[test]
fn compile_network_snapshot_drives_batch_identically() {
    let pid = std::process::id();
    let snap = std::env::temp_dir().join(format!("xsdf-cli-snap-{pid}.snap"));
    // Compile the builtin MiniWordNet (no positional input).
    let output = xsdf()
        .args(["compile-network", "--out"])
        .arg(&snap)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("compiled"), "{stderr}");
    // Snapshot files start with the magic, not text.
    let bytes = std::fs::read(&snap).unwrap();
    assert_eq!(&bytes[..8], b"XSDFSNAP");

    // Batch output against the snapshot is byte-identical to the builtin
    // rebuild, across thread counts.
    let doc1 = write_temp(
        "snap1.xml",
        "<films><picture><cast><star>Kelly</star><star>Stewart</star></cast></picture></films>",
    );
    let doc2 = write_temp("snap2.xml", "<person><address><state/></address></person>");
    let run = |network: Option<&std::path::PathBuf>, threads: &str| {
        let mut cmd = xsdf();
        cmd.arg("batch").arg(&doc1).arg(&doc2).args([
            "--annotate",
            "--quiet",
            "--threads",
            threads,
        ]);
        if let Some(n) = network {
            cmd.arg("--network").arg(n);
        }
        let output = cmd.output().unwrap();
        assert!(
            output.status.success(),
            "{}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout).unwrap()
    };
    let rebuilt = run(None, "1");
    for threads in ["1", "2", "8"] {
        assert_eq!(rebuilt, run(Some(&snap), threads), "threads={threads}");
    }
    let _ = std::fs::remove_file(snap);
}

#[test]
fn compile_network_accepts_text_input_and_wndb_dir() {
    let pid = std::process::id();
    // From a text export.
    let text = write_temp(
        "compile-input.sn",
        "concept a.n | n | 2 | alpha | first letter\n\
         concept b.n | n | 1 | beta | second letter\n\
         rel b.n isa a.n\n",
    );
    let snap = std::env::temp_dir().join(format!("xsdf-cli-snap-text-{pid}.snap"));
    let output = xsdf()
        .arg("compile-network")
        .arg(&text)
        .arg("--out")
        .arg(&snap)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(String::from_utf8_lossy(&output.stderr).contains("compiled 2 concepts"));
    // The snapshot answers sense queries.
    let output = xsdf()
        .args(["senses", "beta", "--network"])
        .arg(&snap)
        .output()
        .unwrap();
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("b.n"));

    // From a WNDB directory.
    let dir = std::env::temp_dir().join(format!("xsdf-cli-wndb-dir-{pid}"));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("data.noun"),
        "00001740 03 n 01 entity 0 001 ~ 00001930 n 0000 | that which exists\n\
         00001930 03 n 01 thing 0 001 @ 00001740 n 0000 | a distinct entity\n",
    )
    .unwrap();
    let snap2 = std::env::temp_dir().join(format!("xsdf-cli-snap-wndb-{pid}.snap"));
    let output = xsdf()
        .args(["compile-network", "--wndb"])
        .arg(&dir)
        .arg("--out")
        .arg(&snap2)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let output = xsdf()
        .args(["senses", "thing", "--network"])
        .arg(&snap2)
        .output()
        .unwrap();
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("n-00001930"));
    let _ = std::fs::remove_file(snap);
    let _ = std::fs::remove_file(snap2);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn corrupt_snapshot_is_a_clean_cli_error() {
    let pid = std::process::id();
    let snap = std::env::temp_dir().join(format!("xsdf-cli-snap-corrupt-{pid}.snap"));
    let output = xsdf()
        .args(["compile-network", "--out"])
        .arg(&snap)
        .output()
        .unwrap();
    assert!(output.status.success());
    // Flip a byte inside the payload: checksum must catch it, as an
    // error message, not a panic.
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&snap, &bytes).unwrap();
    let doc = write_temp("corrupt-net.xml", "<cast><star>Kelly</star></cast>");
    let output = xsdf()
        .arg("disambiguate")
        .arg(&doc)
        .arg("--network")
        .arg(&snap)
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("checksum"), "{stderr}");
    let _ = std::fs::remove_file(snap);
}

#[test]
fn import_wndb_converts_fixture() {
    let data = write_temp(
        "data.noun",
        "00001740 03 n 01 entity 0 001 ~ 00001930 n 0000 | that which exists\n\
         00001930 03 n 01 thing 0 001 @ 00001740 n 0000 | a separate and distinct entity\n",
    );
    let out = std::env::temp_dir().join(format!("xsdf-cli-wndb-{}.sn", std::process::id()));
    let output = xsdf()
        .arg("import-wndb")
        .arg(&data)
        .arg("--out")
        .arg(&out)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&out).unwrap();
    assert!(text.contains("concept n-00001740"));
    assert!(text.contains("rel n-00001930 isa n-00001740"));
    let _ = std::fs::remove_file(out);
}

#[test]
fn batch_processes_files_and_writes_metrics() {
    let doc1 = write_temp(
        "batch1.xml",
        "<films><picture><cast><star>Kelly</star></cast></picture></films>",
    );
    let doc2 = write_temp("batch2.xml", "<cast><star>Stewart</star></cast>");
    let metrics =
        std::env::temp_dir().join(format!("xsdf-batch-metrics-{}.json", std::process::id()));
    let output = xsdf()
        .arg("batch")
        .arg(&doc1)
        .arg(&doc2)
        .args(["--threads", "2", "--metrics"])
        .arg(&metrics)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    // One summary line per file, in input order.
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].contains("batch1.xml") && lines[0].contains("nodes="));
    assert!(lines[1].contains("batch2.xml"));
    let json = std::fs::read_to_string(&metrics).unwrap();
    for key in [
        "\"documents\": 2",
        "\"cache_hits\":",
        "\"cache_misses\":",
        "\"wall_clock_ms\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    let _ = std::fs::remove_file(metrics);
}

#[test]
fn batch_trace_flags_write_spans_and_report_slow_docs() {
    let doc1 = write_temp(
        "trace1.xml",
        "<films><picture><cast><star>Kelly</star></cast></picture></films>",
    );
    let doc2 = write_temp("trace2.xml", "<cast><star>Stewart</star></cast>");
    let pid = std::process::id();
    let chrome = std::env::temp_dir().join(format!("xsdf-cli-trace-{pid}.json"));
    let jsonl = std::env::temp_dir().join(format!("xsdf-cli-trace-{pid}.jsonl"));
    let output = xsdf()
        .arg("batch")
        .arg(&doc1)
        .arg(&doc2)
        .args(["--threads", "2", "--slow-ms", "0", "--trace"])
        .arg(&chrome)
        .arg("--trace-jsonl")
        .arg(&jsonl)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let chrome_json = std::fs::read_to_string(&chrome).unwrap();
    assert!(chrome_json.starts_with("{\"traceEvents\":["));
    assert!(chrome_json.contains("\"worker-0\""));
    assert!(chrome_json.contains("\"doc 0 (ok)\""));
    assert!(chrome_json.contains("\"name\":\"disambiguate\""));
    let jsonl_text = std::fs::read_to_string(&jsonl).unwrap();
    assert_eq!(jsonl_text.lines().count(), 2);
    assert!(jsonl_text.lines().all(|l| l.contains("\"outcome\":\"ok\"")));
    // --slow-ms 0 reports every document with its stage breakdown.
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("slow document(s)"), "{stderr}");
    assert!(stderr.contains("trace1.xml"), "{stderr}");
    assert!(stderr.contains("disambiguate"), "{stderr}");
    let _ = std::fs::remove_file(chrome);
    let _ = std::fs::remove_file(jsonl);
}

#[test]
fn batch_metrics_include_latency_percentiles() {
    let doc = write_temp("lat.xml", "<cast><star>Kelly</star></cast>");
    let metrics = std::env::temp_dir().join(format!("xsdf-cli-lat-{}.json", std::process::id()));
    let output = xsdf()
        .arg("batch")
        .arg(&doc)
        .args(["--threads", "1", "--metrics"])
        .arg(&metrics)
        .output()
        .unwrap();
    assert!(output.status.success());
    let json = std::fs::read_to_string(&metrics).unwrap();
    for group in ["parse", "preprocess", "select", "disambiguate", "doc"] {
        for stat in ["p50", "p90", "p99", "max"] {
            let key = format!("\"{group}_{stat}_ms\":");
            assert!(json.contains(&key), "missing {key} in {json}");
        }
    }
    let _ = std::fs::remove_file(metrics);
}

#[test]
fn batch_output_is_thread_count_invariant() {
    let docs: Vec<_> = (0..6)
        .map(|i| {
            write_temp(
                &format!("inv{i}.xml"),
                "<films><picture><cast><star>Kelly</star><star>Stewart</star></cast></picture></films>",
            )
        })
        .collect();
    let run = |threads: &str| {
        let output = xsdf()
            .arg("batch")
            .args(&docs)
            .args(["--annotate", "--threads", threads])
            .output()
            .unwrap();
        assert!(output.status.success());
        String::from_utf8(output.stdout).unwrap()
    };
    let serial = run("1");
    assert_eq!(serial, run("2"));
    assert_eq!(serial, run("8"));
    assert!(serial.contains("concept=\"kelly.grace\""));
}

#[test]
fn batch_isolates_bad_documents_and_exits_2() {
    let good = write_temp("ok.xml", "<cast><star>Kelly</star></cast>");
    let bad = write_temp("bad.xml", "<unclosed");
    let output = xsdf().arg("batch").arg(&good).arg(&bad).output().unwrap();
    // Partial failure: the good document still processed, exit code 2.
    assert_eq!(output.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stdout.contains("ok.xml"), "{stdout}");
    assert!(stderr.contains("bad.xml"), "{stderr}");
    assert!(stderr.contains("[parse]"), "{stderr}");
    assert!(stderr.contains("1 of 2 document(s) failed"), "{stderr}");
}

#[test]
fn batch_where_everything_fails_exits_1() {
    let bad = write_temp("allbad.xml", "<unclosed");
    let output = xsdf().arg("batch").arg(&bad).output().unwrap();
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("all 1 document(s) failed"), "{stderr}");
}

#[test]
fn batch_resource_flags_reject_oversized_documents() {
    let good = write_temp("lim-ok.xml", "<cast><star>Kelly</star></cast>");
    let deep = write_temp(
        "lim-deep.xml",
        &("<a>".repeat(40) + "x" + &"</a>".repeat(40)),
    );
    let output = xsdf()
        .arg("batch")
        .arg(&good)
        .arg(&deep)
        .args(["--max-depth", "16", "--threads", "1"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("[limit]"), "{stderr}");
    assert!(stderr.contains("depth"), "{stderr}");
}

#[test]
fn disambiguate_applies_limits_too() {
    let doc = write_temp("one-limit.xml", "<cast><star>Kelly</star></cast>");
    let output = xsdf()
        .arg("disambiguate")
        .arg(&doc)
        .args(["--max-bytes", "4", "--quiet"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("[limit]"), "{stderr}");
    // Without the flag the same document succeeds.
    let output = xsdf()
        .arg("disambiguate")
        .arg(&doc)
        .arg("--quiet")
        .output()
        .unwrap();
    assert!(output.status.success());
}

#[test]
fn batch_rejects_contradictory_failure_modes() {
    let doc = write_temp("contradictory.xml", "<a/>");
    let output = xsdf()
        .arg("batch")
        .arg(&doc)
        .args(["--keep-going", "--fail-fast"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("mutually exclusive"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let output = xsdf().arg("frobnicate").output().unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("USAGE"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let output = xsdf()
        .args(["disambiguate", "/nonexistent/file.xml"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("cannot read"));
}

fn write_temp_bytes(name: &str, contents: &[u8]) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("xsdf-cli-test-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

/// Extracts an integer field from the `--metrics` JSON.
fn json_u64(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let at = json
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key} in {json}"));
    json[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn batch_max_bytes_rejects_from_file_metadata() {
    let good = write_temp("meta-ok.xml", "<a/>");
    let big = write_temp("meta-big.xml", "<cast><star>Kelly</star></cast>");
    let size = std::fs::metadata(&big).unwrap().len();
    let output = xsdf()
        .arg("batch")
        .arg(&good)
        .arg(&big)
        .args(["--max-bytes", "10", "--threads", "1"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("[limit]"), "{stderr}");
    // The reported actual is the on-disk size from fs::metadata — the
    // streaming parser would only ever have seen limit+1 bytes, so this
    // proves the file was rejected before any of it was buffered.
    assert!(stderr.contains(&format!("exceeded ({size})")), "{stderr}");
    assert!(stderr.contains("1 of 2 document(s) failed"), "{stderr}");
}

#[test]
fn non_utf8_input_is_a_typed_parse_error() {
    let good = write_temp("utf8-ok.xml", "<a/>");
    let bad = write_temp_bytes("utf8-bad.xml", b"<a>\xff\xfe</a>");
    let output = xsdf().arg("batch").arg(&good).arg(&bad).output().unwrap();
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("[parse]"), "{stderr}");
    assert!(stderr.contains("not valid UTF-8"), "{stderr}");
    // The error pinpoints where the bytes stop being UTF-8.
    assert!(stderr.contains("line 1, column 4"), "{stderr}");
    // Single-document mode fails the whole run with the same typed error.
    let output = xsdf().args(["disambiguate"]).arg(&bad).output().unwrap();
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("not valid UTF-8"), "{stderr}");
}

#[test]
fn gen_corpus_is_deterministic_and_resumable() {
    let pid = std::process::id();
    let dir_a = std::env::temp_dir().join(format!("xsdf-cli-gen-a-{pid}"));
    let dir_b = std::env::temp_dir().join(format!("xsdf-cli-gen-b-{pid}"));
    let gen = |dir: &std::path::Path, count: &str, start: &str| {
        let output = xsdf()
            .args([
                "gen-corpus",
                "--count",
                count,
                "--seed",
                "7",
                "--start",
                start,
                "--out",
            ])
            .arg(dir)
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "{}",
            String::from_utf8_lossy(&output.stderr)
        );
    };
    gen(&dir_a, "12", "0");
    // Same slice regenerated elsewhere, in two resumed halves.
    gen(&dir_b, "6", "0");
    gen(&dir_b, "6", "6");
    let mut names: Vec<String> = std::fs::read_dir(&dir_a)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert_eq!(names.len(), 12);
    assert_eq!(names[0], "doc-00000000.xml");
    assert_eq!(names[11], "doc-00000011.xml");
    for name in &names {
        let a = std::fs::read(dir_a.join(name)).unwrap();
        let b = std::fs::read(dir_b.join(name)).unwrap();
        assert_eq!(a, b, "{name} differs between full and resumed generation");
    }
    let _ = std::fs::remove_dir_all(dir_a);
    let _ = std::fs::remove_dir_all(dir_b);
}

#[test]
fn sharded_batch_is_shard_count_invariant() {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("xsdf-cli-shardinv-{pid}"));
    let status = xsdf()
        .args(["gen-corpus", "--count", "7", "--seed", "3", "--out"])
        .arg(&dir)
        .status()
        .unwrap();
    assert!(status.success());
    let mut docs: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    docs.sort();
    // One unparseable document exercises failure accounting across the
    // process boundary.
    let bad = dir.join("doc-zz-bad.xml");
    std::fs::write(&bad, "<unclosed").unwrap();
    docs.push(bad);

    let run = |shards: &str| {
        let metrics = std::env::temp_dir().join(format!("xsdf-cli-shardinv-{pid}-{shards}.json"));
        let output = xsdf()
            .arg("batch")
            .args(&docs)
            .args(["--threads", "1", "--shards", shards, "--metrics"])
            .arg(&metrics)
            .output()
            .unwrap();
        // Partial failure classifies identically at every shard count.
        assert_eq!(output.status.code(), Some(2), "shards={shards}");
        let json = std::fs::read_to_string(&metrics).unwrap();
        let _ = std::fs::remove_file(metrics);
        (String::from_utf8(output.stdout).unwrap(), json)
    };
    let (stdout1, json1) = run("1");
    let (stdout2, json2) = run("2");
    let (stdout4, json4) = run("4");
    // Per-document output is byte-identical regardless of shard count.
    assert_eq!(stdout1, stdout2);
    assert_eq!(stdout1, stdout4);
    assert!(stdout1.contains("doc-00000000.xml"), "{stdout1}");
    // Work-accounting metrics are invariant too (cache and throughput
    // figures legitimately vary: each process has its own cold cache).
    for key in [
        "documents",
        "failed_documents",
        "failed_parse",
        "failed_limit",
        "failed_deadline",
        "failed_panic",
        "failed_cancelled",
        "nodes",
        "targets",
        "assigned",
    ] {
        let v1 = json_u64(&json1, key);
        assert_eq!(v1, json_u64(&json2, key), "{key} differs at --shards 2");
        assert_eq!(v1, json_u64(&json4, key), "{key} differs at --shards 4");
    }
    assert_eq!(json_u64(&json1, "documents"), 8);
    assert_eq!(json_u64(&json1, "failed_documents"), 1);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn sharded_batch_rejects_unmergeable_flags() {
    let doc = write_temp("shard-flags.xml", "<a/>");
    for banned in [
        ["--shards", "2", "--fail-fast", ""],
        ["--shards", "2", "--slow-ms", "5"],
    ] {
        let output = xsdf()
            .arg("batch")
            .arg(&doc)
            .args(banned.iter().filter(|a| !a.is_empty()))
            .output()
            .unwrap();
        assert_eq!(output.status.code(), Some(1));
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("cannot be combined with --shards"),
            "banned={banned:?}"
        );
    }
}
