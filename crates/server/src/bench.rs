//! `xsdf bench-serve`: a closed-loop load generator against a running
//! `xsdf serve` instance.
//!
//! Closed-loop means each of the N connections keeps exactly one request
//! in flight: send, wait for the response, record, send the next. That
//! measures *sustained* service latency under a fixed concurrency level —
//! there is no open-loop arrival queue hiding server slowness as client
//! wait time. The run has two phases: an untimed warmup (populating the
//! server's shared similarity cache — the whole point of a resident
//! service) and a timed measurement window, reported as sustained
//! docs/sec plus the latency distribution of the warm steady state.
//!
//! The corpus is the same fixed generated set the batch benchmark replays
//! (`corpus::Corpus::generate_small(sn, 11, 2)`), so `BENCH_serve.json`
//! is directly comparable to `BENCH_batch.json`'s warm per-document
//! numbers.
//!
//! # Backpressure-aware client
//!
//! The server sheds load explicitly (429 queue-full, 503 pressure/drain)
//! with a `Retry-After` header. A shed is the protocol working, not a
//! failure, so the client honors it: jittered backoff around the server's
//! hint, a bounded retry budget per request, and separate `sheds` /
//! `retries` counters in the report. Only an exhausted budget (or a real
//! transport/HTTP failure) counts as an error.
//!
//! # Soak mode
//!
//! [`run_soak`] sends a fixed number of requests over a *streaming*
//! corpus (`corpus::stream`) — each worker generates fresh documents
//! from its strided slice of one seeded document stream instead of
//! replaying a fixed set — while a sampler thread
//! polls `GET /metrics` (and, when self-hosted, `/proc/self/status` RSS)
//! on an interval. The sample series goes into `BENCH_soak.json`, which
//! is how the repo proves a budgeted cache holds `cache_bytes ≤ budget`
//! for an entire sustained run while RSS stays flat.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use runtime::{CacheBudget, Histogram};

use crate::http;

/// Warm per-document p50 of the batch engine (`doc_latency_p50_ms` in
/// `BENCH_batch.json`): the reference the served latency is compared
/// against. The acceptance bar for the resident service is staying
/// within 3× of this.
pub const BATCH_WARM_DOC_P50_MS: f64 = 0.425983;

/// Load-generator phases, shared with worker threads through an atomic.
const WARMUP: usize = 0;
const MEASURE: usize = 1;
const STOP: usize = 2;

/// Everything tunable about one bench run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Address of the running server, e.g. `127.0.0.1:8737`.
    pub addr: String,
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// Untimed warmup phase (cache population).
    pub warmup: Duration,
    /// Timed measurement window.
    pub duration: Duration,
    /// Raw query string appended to `/disambiguate` (empty for server
    /// defaults), e.g. `radius=2&process=concept`.
    pub query: String,
}

/// What one bench run measured.
#[derive(Debug)]
pub struct BenchReport {
    /// Connections that generated load.
    pub connections: usize,
    /// Distinct corpus documents replayed round-robin.
    pub corpus_docs: usize,
    /// Successful requests during warmup (not in the latency figures).
    pub warmup_requests: u64,
    /// Successful requests inside the measurement window.
    pub requests: u64,
    /// Failed requests (non-200 or transport errors) inside the window.
    /// A shed request only lands here after its retry budget is spent.
    pub errors: u64,
    /// 429/503 shed responses received (any phase).
    pub sheds: u64,
    /// Retries performed after honoring `Retry-After` (any phase).
    pub retries: u64,
    /// Length of the measurement window.
    pub elapsed: Duration,
    /// Per-request latency over the measurement window.
    pub latency: Histogram,
}

impl BenchReport {
    /// Sustained successful requests per second over the window.
    pub fn docs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.requests as f64 / secs
        }
    }

    /// The report as the `BENCH_serve.json` object. `mode` is `"quick"`
    /// or `"full"` so readers know whether the numbers are a smoke test
    /// or a committed measurement.
    pub fn to_json(&self, mode: &str) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let p50_ms = ms(self.latency.p50());
        let fields: Vec<(&str, String)> = vec![
            ("bench", "\"serve_closed_loop\"".to_string()),
            ("mode", format!("\"{mode}\"")),
            ("connections", self.connections.to_string()),
            ("corpus_docs", self.corpus_docs.to_string()),
            ("warmup_requests", self.warmup_requests.to_string()),
            ("requests", self.requests.to_string()),
            ("errors", self.errors.to_string()),
            ("sheds", self.sheds.to_string()),
            ("retries", self.retries.to_string()),
            ("elapsed_ms", json_f64(ms(self.elapsed))),
            ("docs_per_sec", json_f64(self.docs_per_sec())),
            ("latency_p50_ms", json_f64(p50_ms)),
            ("latency_p90_ms", json_f64(ms(self.latency.p90()))),
            ("latency_p99_ms", json_f64(ms(self.latency.p99()))),
            ("latency_max_ms", json_f64(ms(self.latency.max()))),
            ("latency_mean_ms", json_f64(ms(self.latency.mean()))),
            ("batch_warm_p50_ms", json_f64(BATCH_WARM_DOC_P50_MS)),
            (
                "p50_vs_batch_warm",
                json_f64(if BATCH_WARM_DOC_P50_MS > 0.0 {
                    p50_ms / BATCH_WARM_DOC_P50_MS
                } else {
                    f64::NAN
                }),
            ),
        ];
        let mut out = String::from("{\n");
        for (i, (key, value)) in fields.iter().enumerate() {
            out.push_str("  \"");
            out.push_str(key);
            out.push_str("\": ");
            out.push_str(value);
            if i + 1 < fields.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

/// The fixed bench corpus, serialized compact — the same documents (and
/// serialization) the batch benchmark replays.
pub fn corpus_documents() -> Vec<String> {
    let sn = semnet::mini_wordnet();
    corpus::Corpus::generate_small(sn, 11, 2)
        .documents()
        .iter()
        .map(|d| xmltree::serialize::to_string_compact(&d.doc))
        .collect()
}

/// What one worker thread counted.
#[derive(Default)]
struct WorkerTally {
    warmup_requests: u64,
    requests: u64,
    errors: u64,
    sheds: u64,
    retries: u64,
    latency: Histogram,
}

/// Retries allowed per request when the server sheds with 429/503.
const RETRY_BUDGET: u32 = 4;

/// Cap on a single honored `Retry-After` interval, so a misbehaving
/// server can't park the client forever.
const MAX_BACKOFF: Duration = Duration::from_secs(2);

/// Deterministic xorshift64* PRNG for backoff jitter: std-only, seeded
/// per worker, so two clients shed at the same instant don't retry in
/// lockstep (and a given worker's schedule is reproducible).
struct Jitter(u64);

impl Jitter {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Sleeps a jittered backoff honoring the server's `Retry-After` hint:
/// uniform in `[hint/2, hint]`, capped at [`MAX_BACKOFF`], sliced into
/// short naps so a stop signal is never outwaited.
fn backoff(retry_after_secs: Option<u64>, jitter: &mut Jitter, stop: &dyn Fn() -> bool) {
    let base = Duration::from_secs(retry_after_secs.unwrap_or(1).max(1)).min(MAX_BACKOFF);
    let base_ms = base.as_millis() as u64;
    let ms = base_ms / 2 + jitter.next() % (base_ms / 2 + 1);
    let mut slept = 0;
    while slept < ms && !stop() {
        let slice = (ms - slept).min(25);
        std::thread::sleep(Duration::from_millis(slice));
        slept += slice;
    }
}

/// What one request ultimately came to, after retries.
enum Attempt {
    /// 200, with the winning attempt's latency.
    Ok(Duration),
    /// Still shed after the whole retry budget.
    Shed,
    /// Transport failure or an unexpected HTTP status.
    Error,
    /// The stop signal fired mid-retry; nothing to record.
    Stopped,
}

/// Sends one document through the closed loop, reconnecting as needed and
/// honoring `Retry-After` on 429/503 up to [`RETRY_BUDGET`] retries.
#[allow(clippy::too_many_arguments)]
fn send_with_retries(
    conn: &mut Option<(TcpStream, Vec<u8>)>,
    addr: &str,
    target: &str,
    xml: &str,
    sheds: &mut u64,
    retries: &mut u64,
    jitter: &mut Jitter,
    stop: &dyn Fn() -> bool,
) -> Attempt {
    let mut attempts = 0;
    loop {
        if stop() {
            return Attempt::Stopped;
        }
        if conn.is_none() {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    *conn = Some((stream, Vec::new()));
                }
                Err(_) => return Attempt::Error,
            }
        }
        // invariant: just ensured above
        let (stream, carry) = conn.as_mut().unwrap();
        let started = Instant::now();
        match http::client_roundtrip(
            stream,
            carry,
            "POST",
            target,
            &[("Content-Type", "application/xml")],
            xml.as_bytes(),
        ) {
            Ok(response) => {
                let retry_after = response
                    .header("retry-after")
                    .and_then(|v| v.trim().parse::<u64>().ok());
                if response.close {
                    *conn = None;
                }
                match response.status {
                    200 => return Attempt::Ok(started.elapsed()),
                    429 | 503 => {
                        *sheds += 1;
                        if attempts >= RETRY_BUDGET {
                            return Attempt::Shed;
                        }
                        attempts += 1;
                        *retries += 1;
                        backoff(retry_after, jitter, stop);
                    }
                    _ => return Attempt::Error,
                }
            }
            Err(_) => {
                *conn = None;
                return Attempt::Error;
            }
        }
    }
}

/// Runs the closed loop: N connections replay the corpus through a
/// warmup phase and a measured window against the server at
/// `config.addr`.
pub fn run_bench(config: &BenchConfig) -> Result<BenchReport, String> {
    let docs = corpus_documents();
    if docs.is_empty() {
        return Err("empty bench corpus".into());
    }
    let target = if config.query.is_empty() {
        "/disambiguate".to_string()
    } else {
        format!("/disambiguate?{}", config.query)
    };
    let phase = AtomicUsize::new(WARMUP);
    let connections = config.connections.max(1);

    let mut tallies: Vec<WorkerTally> = Vec::new();
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|worker| {
                let phase = &phase;
                let docs = &docs;
                let target = &target;
                let addr = config.addr.as_str();
                scope.spawn(move || worker_loop(addr, target, docs, worker, phase))
            })
            .collect();
        std::thread::sleep(config.warmup);
        let window = Instant::now();
        phase.store(MEASURE, Ordering::SeqCst);
        std::thread::sleep(config.duration);
        phase.store(STOP, Ordering::SeqCst);
        elapsed = window.elapsed();
        for handle in handles {
            // A worker that panicked still must not sink the run silently.
            match handle.join() {
                Ok(tally) => tallies.push(tally),
                Err(_) => tallies.push(WorkerTally {
                    errors: 1,
                    ..WorkerTally::default()
                }),
            }
        }
    });

    let mut report = BenchReport {
        connections,
        corpus_docs: docs.len(),
        warmup_requests: 0,
        requests: 0,
        errors: 0,
        sheds: 0,
        retries: 0,
        elapsed,
        latency: Histogram::new(),
    };
    for tally in &tallies {
        report.warmup_requests += tally.warmup_requests;
        report.requests += tally.requests;
        report.errors += tally.errors;
        report.sheds += tally.sheds;
        report.retries += tally.retries;
        report.latency.merge(&tally.latency);
    }
    if report.requests == 0 && report.warmup_requests == 0 {
        return Err(format!(
            "no request ever succeeded against {} ({} errors) — is the server up?",
            config.addr, report.errors
        ));
    }
    Ok(report)
}

/// One closed-loop connection: connect (and reconnect on failure), then
/// send-one-await-one until the stop phase, honoring server backpressure
/// via [`send_with_retries`].
fn worker_loop(
    addr: &str,
    target: &str,
    docs: &[String],
    worker: usize,
    phase: &AtomicUsize,
) -> WorkerTally {
    let mut tally = WorkerTally::default();
    let mut jitter = Jitter::new(worker as u64 + 1);
    // Stagger the round-robin start so workers don't all hit the same
    // document in lockstep.
    let mut next_doc = worker;
    let mut conn: Option<(TcpStream, Vec<u8>)> = None;
    let stop = || phase.load(Ordering::SeqCst) == STOP;
    while !stop() {
        let xml = &docs[next_doc % docs.len()];
        next_doc += 1;
        let attempt = send_with_retries(
            &mut conn,
            addr,
            target,
            xml,
            &mut tally.sheds,
            &mut tally.retries,
            &mut jitter,
            &stop,
        );
        // Classification uses the phase at completion time, like the
        // pre-retry client did.
        match attempt {
            Attempt::Ok(latency) => match phase.load(Ordering::SeqCst) {
                MEASURE => {
                    tally.requests += 1;
                    tally.latency.record(latency);
                }
                WARMUP => tally.warmup_requests += 1,
                _ => {}
            },
            Attempt::Shed | Attempt::Error => {
                if phase.load(Ordering::SeqCst) == MEASURE {
                    tally.errors += 1;
                }
                if matches!(attempt, Attempt::Error) {
                    // Don't hot-spin against a dead or unreachable server.
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
            Attempt::Stopped => break,
        }
    }
    tally
}

/// Everything tunable about one soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Address of the running server, e.g. `127.0.0.1:8737`.
    pub addr: String,
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// Total requests to issue across all connections.
    pub requests: u64,
    /// Interval between `/metrics` samples.
    pub sample_every: Duration,
    /// Raw query string appended to `/disambiguate` (empty for server
    /// defaults).
    pub query: String,
    /// The server runs in this process (self-hosted bench), so
    /// `/proc/self/status` RSS describes *its* memory too.
    pub rss_self: bool,
}

/// One point on the soak time series, scraped from live `/metrics`.
#[derive(Debug, Clone)]
pub struct SoakSample {
    /// Offset from soak start.
    pub t: Duration,
    /// Resident set size of the serving process, when observable
    /// (self-hosted on Linux); `None` renders as JSON `null`.
    pub rss_bytes: Option<u64>,
    /// Live `cache_bytes` gauge — the value the byte budget bounds.
    pub cache_bytes: u64,
    /// Live pair-table entry count.
    pub cache_entries: u64,
    /// Live vector-table entry count.
    pub vector_entries: u64,
    /// Cumulative evictions.
    pub cache_evictions: u64,
    /// Cumulative documents processed.
    pub documents: u64,
}

/// What one soak run measured: the closed-loop tallies plus the sampled
/// gauge series that proves the budget held.
#[derive(Debug)]
pub struct SoakReport {
    /// Connections that generated load.
    pub connections: usize,
    /// Successful requests.
    pub requests: u64,
    /// Failed requests (budget-exhausted sheds included).
    pub errors: u64,
    /// 429/503 shed responses received.
    pub sheds: u64,
    /// Retries performed after honoring `Retry-After`.
    pub retries: u64,
    /// Wall-clock length of the run.
    pub elapsed: Duration,
    /// Per-request latency.
    pub latency: Histogram,
    /// The cache budget the server ran under (0 = unbounded).
    pub budget: CacheBudget,
    /// The sampled gauge series, oldest first.
    pub samples: Vec<SoakSample>,
}

impl SoakReport {
    /// Sustained successful requests per second.
    pub fn docs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.requests as f64 / secs
        }
    }

    /// Highest `cache_bytes` any sample observed — the number CI checks
    /// against the byte budget.
    pub fn cache_bytes_max(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| s.cache_bytes)
            .max()
            .unwrap_or(0)
    }

    /// The report as the `BENCH_soak.json` object.
    pub fn to_json(&self, mode: &str) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let opt = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |n| n.to_string());
        let last = self.samples.last();
        let mut samples = String::from("[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                samples.push(',');
            }
            samples.push_str(&format!(
                "\n    {{\"t_ms\": {}, \"rss_bytes\": {}, \"cache_bytes\": {}, \
                 \"cache_entries\": {}, \"vector_entries\": {}, \
                 \"cache_evictions\": {}, \"documents\": {}}}",
                json_f64(ms(s.t)),
                opt(s.rss_bytes),
                s.cache_bytes,
                s.cache_entries,
                s.vector_entries,
                s.cache_evictions,
                s.documents,
            ));
        }
        samples.push_str("\n  ]");
        let fields: Vec<(&str, String)> = vec![
            ("bench", "\"serve_soak\"".to_string()),
            ("mode", format!("\"{mode}\"")),
            ("connections", self.connections.to_string()),
            ("requests", self.requests.to_string()),
            ("errors", self.errors.to_string()),
            ("sheds", self.sheds.to_string()),
            ("retries", self.retries.to_string()),
            ("elapsed_ms", json_f64(ms(self.elapsed))),
            ("docs_per_sec", json_f64(self.docs_per_sec())),
            ("latency_p50_ms", json_f64(ms(self.latency.p50()))),
            ("latency_p99_ms", json_f64(ms(self.latency.p99()))),
            ("latency_max_ms", json_f64(ms(self.latency.max()))),
            ("cache_entries_budget", self.budget.max_entries.to_string()),
            ("cache_bytes_budget", self.budget.max_bytes.to_string()),
            ("cache_bytes_max", self.cache_bytes_max().to_string()),
            (
                "cache_bytes_final",
                last.map_or(0, |s| s.cache_bytes).to_string(),
            ),
            (
                "cache_entries_final",
                last.map_or(0, |s| s.cache_entries).to_string(),
            ),
            (
                "evictions_total",
                last.map_or(0, |s| s.cache_evictions).to_string(),
            ),
            (
                "rss_first_bytes",
                opt(self.samples.first().and_then(|s| s.rss_bytes)),
            ),
            (
                "rss_max_bytes",
                opt(self.samples.iter().filter_map(|s| s.rss_bytes).max()),
            ),
            ("rss_final_bytes", opt(last.and_then(|s| s.rss_bytes))),
            ("samples", samples),
        ];
        let mut out = String::from("{\n");
        for (i, (key, value)) in fields.iter().enumerate() {
            out.push_str("  \"");
            out.push_str(key);
            out.push_str("\": ");
            out.push_str(value);
            if i + 1 < fields.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

/// Runs the soak: N closed-loop connections push `config.requests` fresh
/// streaming-corpus documents through the server while a sampler thread
/// records the gauge series. `budget` is echoed into the report so the
/// artifact is self-describing.
pub fn run_soak(config: &SoakConfig, budget: CacheBudget) -> Result<SoakReport, String> {
    let target = if config.query.is_empty() {
        "/disambiguate".to_string()
    } else {
        format!("/disambiguate?{}", config.query)
    };
    let connections = config.connections.max(1);
    let total = config.requests.max(1);
    let issued = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let started = Instant::now();

    let mut tallies: Vec<WorkerTally> = Vec::new();
    let mut samples: Vec<SoakSample> = Vec::new();
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|worker| {
                let issued = &issued;
                let target = &target;
                let addr = config.addr.as_str();
                scope.spawn(move || soak_worker(addr, target, worker, connections, total, issued))
            })
            .collect();
        let sampler = scope.spawn(|| {
            sample_loop(
                &config.addr,
                config.sample_every,
                config.rss_self,
                started,
                &done,
            )
        });
        for handle in handles {
            match handle.join() {
                Ok(tally) => tallies.push(tally),
                Err(_) => tallies.push(WorkerTally {
                    errors: 1,
                    ..WorkerTally::default()
                }),
            }
        }
        elapsed = started.elapsed();
        done.store(true, Ordering::SeqCst);
        samples = sampler.join().unwrap_or_default();
    });

    let mut report = SoakReport {
        connections,
        requests: 0,
        errors: 0,
        sheds: 0,
        retries: 0,
        elapsed,
        latency: Histogram::new(),
        budget,
        samples,
    };
    for tally in &tallies {
        report.requests += tally.requests;
        report.errors += tally.errors;
        report.sheds += tally.sheds;
        report.retries += tally.retries;
        report.latency.merge(&tally.latency);
    }
    if report.requests == 0 {
        return Err(format!(
            "no soak request ever succeeded against {} ({} errors) — is the server up?",
            config.addr, report.errors
        ));
    }
    Ok(report)
}

/// The stream seed every soak worker draws from: one shared streaming
/// corpus, partitioned by stride.
const SOAK_STREAM_SEED: u64 = 0x50AC;

/// One soak connection: claims requests from the shared counter and
/// feeds each a *fresh* document from the streaming corpus
/// (`corpus::stream`). Worker `w` walks positions `w, w + connections,
/// w + 2·connections, …` — a strided partition of one seeded stream —
/// so no two workers, and no two requests, ever replay the same
/// document; that keeps the cache key space growing, which is what
/// exercises eviction. Exactly one generated document is alive per
/// worker at any instant.
fn soak_worker(
    addr: &str,
    target: &str,
    worker: usize,
    connections: usize,
    total: u64,
    issued: &AtomicU64,
) -> WorkerTally {
    let sn = semnet::mini_wordnet();
    let mut tally = WorkerTally::default();
    let mut jitter = Jitter::new(0x50AC + worker as u64);
    let mut conn: Option<(TcpStream, Vec<u8>)> = None;
    let mut pos = worker as u64;
    // The request count bounds the loop, so workers never need a stop
    // signal — every claimed request resolves to exactly one outcome.
    let stop = || false;
    while issued.fetch_add(1, Ordering::SeqCst) < total {
        let doc = corpus::stream::document_at(sn, SOAK_STREAM_SEED, pos);
        let xml = xmltree::serialize::to_string_compact(&doc.doc);
        pos += connections as u64;
        match send_with_retries(
            &mut conn,
            addr,
            target,
            &xml,
            &mut tally.sheds,
            &mut tally.retries,
            &mut jitter,
            &stop,
        ) {
            Attempt::Ok(latency) => {
                tally.requests += 1;
                tally.latency.record(latency);
            }
            Attempt::Shed => tally.errors += 1,
            Attempt::Error => {
                tally.errors += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            Attempt::Stopped => break,
        }
    }
    tally
}

/// Scrapes `/metrics` on an interval until `done`, then takes one final
/// post-run sample so the series always ends with the settled state.
fn sample_loop(
    addr: &str,
    every: Duration,
    rss_self: bool,
    started: Instant,
    done: &AtomicBool,
) -> Vec<SoakSample> {
    let mut samples = Vec::new();
    let mut conn: Option<(TcpStream, Vec<u8>)> = None;
    loop {
        if let Some(sample) = take_sample(addr, &mut conn, rss_self, started) {
            samples.push(sample);
        }
        if done.load(Ordering::SeqCst) {
            return samples;
        }
        // Sliced sleep so shutdown isn't outwaited by a long interval.
        let mut slept = Duration::ZERO;
        while slept < every && !done.load(Ordering::SeqCst) {
            let slice = (every - slept).min(Duration::from_millis(25));
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

/// One `/metrics` scrape turned into a [`SoakSample`]. Returns `None`
/// (and drops the connection) on any transport or HTTP hiccup — a soak
/// tolerates missing points, it just needs the series.
fn take_sample(
    addr: &str,
    conn: &mut Option<(TcpStream, Vec<u8>)>,
    rss_self: bool,
    started: Instant,
) -> Option<SoakSample> {
    if conn.is_none() {
        let stream = TcpStream::connect(addr).ok()?;
        stream.set_nodelay(true).ok();
        *conn = Some((stream, Vec::new()));
    }
    // invariant: just ensured above
    let (stream, carry) = conn.as_mut().unwrap();
    let response = match http::client_roundtrip(stream, carry, "GET", "/metrics", &[], b"") {
        Ok(response) if response.status == 200 => response,
        _ => {
            *conn = None;
            return None;
        }
    };
    if response.close {
        *conn = None;
    }
    let body = String::from_utf8_lossy(&response.body).into_owned();
    Some(SoakSample {
        t: started.elapsed(),
        rss_bytes: if rss_self { rss_self_bytes() } else { None },
        cache_bytes: json_u64(&body, "cache_bytes")?,
        cache_entries: json_u64(&body, "cache_entries")?,
        vector_entries: json_u64(&body, "vector_entries")?,
        cache_evictions: json_u64(&body, "cache_evictions")?,
        documents: json_u64(&body, "documents")?,
    })
}

/// Pulls one unsigned integer out of a flat JSON object by key. The
/// `/metrics` body is a single-level object with unique keys, so a
/// substring scan for `"key":` is unambiguous (`cache_bytes` vs
/// `cache_bytes_peak` differ before the colon).
fn json_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Resident set size of this process, from `/proc/self/status` `VmRSS`
/// (kB → bytes). `None` off Linux or if the field is missing.
pub fn rss_self_bytes() -> Option<u64> {
    proc_status_kb("VmRSS:").map(|kb| kb * 1024)
}

/// Lifetime peak resident set size of this process, from
/// `/proc/self/status` `VmHWM` (kB → bytes) — the kernel's own high
/// watermark, so it catches spikes between point samples. `None` off
/// Linux or if the field is missing.
pub fn rss_peak_bytes() -> Option<u64> {
    proc_status_kb("VmHWM:").map(|kb| kb * 1024)
}

/// One kB-denominated field out of `/proc/self/status`.
fn proc_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_nonempty_and_stable() {
        let docs = corpus_documents();
        assert!(!docs.is_empty());
        assert_eq!(docs, corpus_documents(), "generation is deterministic");
    }

    #[test]
    fn report_json_has_the_committed_schema() {
        let mut latency = Histogram::new();
        for ms in [1u64, 2, 3] {
            latency.record(Duration::from_millis(ms));
        }
        let report = BenchReport {
            connections: 2,
            corpus_docs: 8,
            warmup_requests: 10,
            requests: 3,
            errors: 0,
            sheds: 2,
            retries: 1,
            elapsed: Duration::from_millis(300),
            latency,
        };
        assert!((report.docs_per_sec() - 10.0).abs() < 1e-9);
        let json = report.to_json("quick");
        for key in [
            "bench",
            "mode",
            "connections",
            "corpus_docs",
            "warmup_requests",
            "requests",
            "errors",
            "sheds",
            "retries",
            "elapsed_ms",
            "docs_per_sec",
            "latency_p50_ms",
            "latency_p90_ms",
            "latency_p99_ms",
            "latency_max_ms",
            "latency_mean_ms",
            "batch_warm_p50_ms",
            "p50_vs_batch_warm",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
        assert!(json.contains("\"bench\": \"serve_closed_loop\""));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn soak_report_json_has_the_committed_schema() {
        let mut latency = Histogram::new();
        latency.record(Duration::from_millis(2));
        let report = SoakReport {
            connections: 2,
            requests: 40,
            errors: 0,
            sheds: 3,
            retries: 3,
            elapsed: Duration::from_millis(500),
            latency,
            budget: CacheBudget {
                max_entries: 0,
                max_bytes: 65536,
            },
            samples: vec![
                SoakSample {
                    t: Duration::from_millis(0),
                    rss_bytes: Some(1_000_000),
                    cache_bytes: 100,
                    cache_entries: 5,
                    vector_entries: 2,
                    cache_evictions: 0,
                    documents: 1,
                },
                SoakSample {
                    t: Duration::from_millis(250),
                    rss_bytes: None,
                    cache_bytes: 60000,
                    cache_entries: 50,
                    vector_entries: 20,
                    cache_evictions: 7,
                    documents: 40,
                },
            ],
        };
        assert_eq!(report.cache_bytes_max(), 60000);
        let json = report.to_json("quick");
        for key in [
            "bench",
            "mode",
            "connections",
            "requests",
            "errors",
            "sheds",
            "retries",
            "elapsed_ms",
            "docs_per_sec",
            "latency_p50_ms",
            "latency_p99_ms",
            "latency_max_ms",
            "cache_entries_budget",
            "cache_bytes_budget",
            "cache_bytes_max",
            "cache_bytes_final",
            "cache_entries_final",
            "evictions_total",
            "rss_first_bytes",
            "rss_max_bytes",
            "rss_final_bytes",
            "samples",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
        assert!(json.contains("\"bench\": \"serve_soak\""));
        assert!(json.contains("\"cache_bytes_budget\": 65536"));
        assert!(json.contains("\"cache_bytes_max\": 60000"));
        assert!(json.contains("\"evictions_total\": 7"));
        // The second sample has no RSS reading: nullable, not zero.
        assert!(json.contains("\"rss_bytes\": null"));
        assert!(json.contains("\"rss_final_bytes\": null"));
        assert!(json.contains("\"rss_max_bytes\": 1000000"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn json_u64_extracts_flat_metric_keys_unambiguously() {
        let body = r#"{"cache_bytes": 4096,"cache_bytes_peak": 8192,"documents":12}"#;
        assert_eq!(json_u64(body, "cache_bytes"), Some(4096));
        assert_eq!(json_u64(body, "cache_bytes_peak"), Some(8192));
        assert_eq!(json_u64(body, "documents"), Some(12));
        assert_eq!(json_u64(body, "missing"), None);
    }

    #[test]
    fn backoff_returns_promptly_when_stopped() {
        let mut jitter = Jitter::new(9);
        let started = Instant::now();
        backoff(Some(60), &mut jitter, &|| true);
        assert!(started.elapsed() < Duration::from_millis(200));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_is_observable_on_linux() {
        let rss = rss_self_bytes().expect("VmRSS readable");
        assert!(rss > 0);
        let peak = rss_peak_bytes().expect("VmHWM readable");
        assert!(peak >= rss / 2, "peak {peak} implausibly below rss {rss}");
    }
}
