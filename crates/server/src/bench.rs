//! `xsdf bench-serve`: a closed-loop load generator against a running
//! `xsdf serve` instance.
//!
//! Closed-loop means each of the N connections keeps exactly one request
//! in flight: send, wait for the response, record, send the next. That
//! measures *sustained* service latency under a fixed concurrency level —
//! there is no open-loop arrival queue hiding server slowness as client
//! wait time. The run has two phases: an untimed warmup (populating the
//! server's shared similarity cache — the whole point of a resident
//! service) and a timed measurement window, reported as sustained
//! docs/sec plus the latency distribution of the warm steady state.
//!
//! The corpus is the same fixed generated set the batch benchmark replays
//! (`corpus::Corpus::generate_small(sn, 11, 2)`), so `BENCH_serve.json`
//! is directly comparable to `BENCH_batch.json`'s warm per-document
//! numbers.

use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use runtime::Histogram;

use crate::http;

/// Warm per-document p50 of the batch engine (`doc_latency_p50_ms` in
/// `BENCH_batch.json`): the reference the served latency is compared
/// against. The acceptance bar for the resident service is staying
/// within 3× of this.
pub const BATCH_WARM_DOC_P50_MS: f64 = 0.425983;

/// Load-generator phases, shared with worker threads through an atomic.
const WARMUP: usize = 0;
const MEASURE: usize = 1;
const STOP: usize = 2;

/// Everything tunable about one bench run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Address of the running server, e.g. `127.0.0.1:8737`.
    pub addr: String,
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// Untimed warmup phase (cache population).
    pub warmup: Duration,
    /// Timed measurement window.
    pub duration: Duration,
    /// Raw query string appended to `/disambiguate` (empty for server
    /// defaults), e.g. `radius=2&process=concept`.
    pub query: String,
}

/// What one bench run measured.
#[derive(Debug)]
pub struct BenchReport {
    /// Connections that generated load.
    pub connections: usize,
    /// Distinct corpus documents replayed round-robin.
    pub corpus_docs: usize,
    /// Successful requests during warmup (not in the latency figures).
    pub warmup_requests: u64,
    /// Successful requests inside the measurement window.
    pub requests: u64,
    /// Failed requests (non-200 or transport errors) inside the window.
    pub errors: u64,
    /// Length of the measurement window.
    pub elapsed: Duration,
    /// Per-request latency over the measurement window.
    pub latency: Histogram,
}

impl BenchReport {
    /// Sustained successful requests per second over the window.
    pub fn docs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.requests as f64 / secs
        }
    }

    /// The report as the `BENCH_serve.json` object. `mode` is `"quick"`
    /// or `"full"` so readers know whether the numbers are a smoke test
    /// or a committed measurement.
    pub fn to_json(&self, mode: &str) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let p50_ms = ms(self.latency.p50());
        let fields: Vec<(&str, String)> = vec![
            ("bench", "\"serve_closed_loop\"".to_string()),
            ("mode", format!("\"{mode}\"")),
            ("connections", self.connections.to_string()),
            ("corpus_docs", self.corpus_docs.to_string()),
            ("warmup_requests", self.warmup_requests.to_string()),
            ("requests", self.requests.to_string()),
            ("errors", self.errors.to_string()),
            ("elapsed_ms", json_f64(ms(self.elapsed))),
            ("docs_per_sec", json_f64(self.docs_per_sec())),
            ("latency_p50_ms", json_f64(p50_ms)),
            ("latency_p90_ms", json_f64(ms(self.latency.p90()))),
            ("latency_p99_ms", json_f64(ms(self.latency.p99()))),
            ("latency_max_ms", json_f64(ms(self.latency.max()))),
            ("latency_mean_ms", json_f64(ms(self.latency.mean()))),
            ("batch_warm_p50_ms", json_f64(BATCH_WARM_DOC_P50_MS)),
            (
                "p50_vs_batch_warm",
                json_f64(if BATCH_WARM_DOC_P50_MS > 0.0 {
                    p50_ms / BATCH_WARM_DOC_P50_MS
                } else {
                    f64::NAN
                }),
            ),
        ];
        let mut out = String::from("{\n");
        for (i, (key, value)) in fields.iter().enumerate() {
            out.push_str("  \"");
            out.push_str(key);
            out.push_str("\": ");
            out.push_str(value);
            if i + 1 < fields.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

/// The fixed bench corpus, serialized compact — the same documents (and
/// serialization) the batch benchmark replays.
pub fn corpus_documents() -> Vec<String> {
    let sn = semnet::mini_wordnet();
    corpus::Corpus::generate_small(sn, 11, 2)
        .documents()
        .iter()
        .map(|d| xmltree::serialize::to_string_compact(&d.doc))
        .collect()
}

/// What one worker thread counted.
#[derive(Default)]
struct WorkerTally {
    warmup_requests: u64,
    requests: u64,
    errors: u64,
    latency: Histogram,
}

/// Runs the closed loop: N connections replay the corpus through a
/// warmup phase and a measured window against the server at
/// `config.addr`.
pub fn run_bench(config: &BenchConfig) -> Result<BenchReport, String> {
    let docs = corpus_documents();
    if docs.is_empty() {
        return Err("empty bench corpus".into());
    }
    let target = if config.query.is_empty() {
        "/disambiguate".to_string()
    } else {
        format!("/disambiguate?{}", config.query)
    };
    let phase = AtomicUsize::new(WARMUP);
    let connections = config.connections.max(1);

    let mut tallies: Vec<WorkerTally> = Vec::new();
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|worker| {
                let phase = &phase;
                let docs = &docs;
                let target = &target;
                let addr = config.addr.as_str();
                scope.spawn(move || worker_loop(addr, target, docs, worker, phase))
            })
            .collect();
        std::thread::sleep(config.warmup);
        let window = Instant::now();
        phase.store(MEASURE, Ordering::SeqCst);
        std::thread::sleep(config.duration);
        phase.store(STOP, Ordering::SeqCst);
        elapsed = window.elapsed();
        for handle in handles {
            // A worker that panicked still must not sink the run silently.
            match handle.join() {
                Ok(tally) => tallies.push(tally),
                Err(_) => tallies.push(WorkerTally {
                    errors: 1,
                    ..WorkerTally::default()
                }),
            }
        }
    });

    let mut report = BenchReport {
        connections,
        corpus_docs: docs.len(),
        warmup_requests: 0,
        requests: 0,
        errors: 0,
        elapsed,
        latency: Histogram::new(),
    };
    for tally in &tallies {
        report.warmup_requests += tally.warmup_requests;
        report.requests += tally.requests;
        report.errors += tally.errors;
        report.latency.merge(&tally.latency);
    }
    if report.requests == 0 && report.warmup_requests == 0 {
        return Err(format!(
            "no request ever succeeded against {} ({} errors) — is the server up?",
            config.addr, report.errors
        ));
    }
    Ok(report)
}

/// One closed-loop connection: connect (and reconnect on failure), then
/// send-one-await-one until the stop phase.
fn worker_loop(
    addr: &str,
    target: &str,
    docs: &[String],
    worker: usize,
    phase: &AtomicUsize,
) -> WorkerTally {
    let mut tally = WorkerTally::default();
    // Stagger the round-robin start so workers don't all hit the same
    // document in lockstep.
    let mut next_doc = worker;
    let mut conn: Option<(TcpStream, Vec<u8>)> = None;
    while phase.load(Ordering::SeqCst) != STOP {
        if conn.is_none() {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    conn = Some((stream, Vec::new()));
                }
                Err(_) => {
                    if phase.load(Ordering::SeqCst) == MEASURE {
                        tally.errors += 1;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            }
        }
        // invariant: just ensured above
        let (stream, carry) = conn.as_mut().unwrap();
        let xml = &docs[next_doc % docs.len()];
        next_doc += 1;
        let started = Instant::now();
        match http::client_roundtrip(
            stream,
            carry,
            "POST",
            target,
            &[("Content-Type", "application/xml")],
            xml.as_bytes(),
        ) {
            Ok(response) => {
                match phase.load(Ordering::SeqCst) {
                    MEASURE if response.status == 200 => {
                        tally.requests += 1;
                        tally.latency.record(started.elapsed());
                    }
                    MEASURE => tally.errors += 1,
                    WARMUP if response.status == 200 => tally.warmup_requests += 1,
                    _ => {}
                }
                if response.close {
                    conn = None;
                }
            }
            Err(_) => {
                if phase.load(Ordering::SeqCst) == MEASURE {
                    tally.errors += 1;
                }
                conn = None;
            }
        }
    }
    tally
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_nonempty_and_stable() {
        let docs = corpus_documents();
        assert!(!docs.is_empty());
        assert_eq!(docs, corpus_documents(), "generation is deterministic");
    }

    #[test]
    fn report_json_has_the_committed_schema() {
        let mut latency = Histogram::new();
        for ms in [1u64, 2, 3] {
            latency.record(Duration::from_millis(ms));
        }
        let report = BenchReport {
            connections: 2,
            corpus_docs: 8,
            warmup_requests: 10,
            requests: 3,
            errors: 0,
            elapsed: Duration::from_millis(300),
            latency,
        };
        assert!((report.docs_per_sec() - 10.0).abs() < 1e-9);
        let json = report.to_json("quick");
        for key in [
            "bench",
            "mode",
            "connections",
            "corpus_docs",
            "warmup_requests",
            "requests",
            "errors",
            "elapsed_ms",
            "docs_per_sec",
            "latency_p50_ms",
            "latency_p90_ms",
            "latency_p99_ms",
            "latency_max_ms",
            "latency_mean_ms",
            "batch_warm_p50_ms",
            "p50_vs_batch_warm",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
        assert!(json.contains("\"bench\": \"serve_closed_loop\""));
        assert!(json.ends_with("}\n"));
    }
}
