//! # xsdf-server
//!
//! The resident disambiguation service for XSDF: keep one warm
//! [`runtime::SharedCache`] alive across requests and serve the pipeline
//! of *Resolving XML Semantic Ambiguity* (EDBT 2015) over a minimal,
//! std-only HTTP/1.1 endpoint.
//!
//! The batch engine amortizes sense-pair scoring across the documents of
//! *one* invocation; a resident service amortizes it across *all*
//! invocations. The modules:
//!
//! * [`http`] — a deliberately small HTTP/1.1 reader/writer over blocking
//!   `TcpStream`s: request parsing with header/body ceilings, keep-alive,
//!   `Expect: 100-continue`, and quantum-sliced reads so a draining server
//!   can wake idle connections without an async runtime;
//! * [`service`] — the server itself ([`Server`]): a blocking accept loop,
//!   thread-per-connection handling, admission control with a bounded
//!   wait queue (429/503 + `Retry-After` under overload), per-request
//!   deadlines and resource limits mapped onto the [`runtime::XsdfError`]
//!   taxonomy as structured JSON errors, and a drain-then-exit shutdown
//!   state machine (`Running → Draining → Stopped`);
//! * [`stats`] — the serving-layer counters ([`stats::ServerStats`]):
//!   per-endpoint latency histograms, queue-wait distribution, HTTP status
//!   tallies, and the engine aggregates folded in from each
//!   [`runtime::DocOutcome`], exported through
//!   [`runtime::MetricsSnapshot::to_json_extended`] as one flat JSON
//!   object on `GET /metrics`;
//! * [`bench`] — a closed-loop load generator (`xsdf bench-serve`):
//!   N keep-alive connections replay a fixed corpus through a warmup then
//!   a measured window, reporting sustained docs/sec and tail latency;
//! * [`report`] — the slow-document report formatter shared byte-for-byte
//!   between `xsdf batch --slow-ms` and the server's live slow-request
//!   stream;
//! * [`signal`] — the crate's one `unsafe` corner: a SIGINT handler over
//!   raw `libc` FFI giving both `xsdf batch` and `xsdf serve` graceful
//!   first-interrupt drain and hard second-interrupt exit.
//!
//! The `xsdf` CLI binary lives here (not in `xsdf-runtime`) because the
//! `serve` and `bench-serve` commands need this crate, which itself
//! depends on the runtime.
//!
//! Protocol sketch:
//!
//! ```text
//! POST /disambiguate?radius=2&process=combined   body: the XML document
//!   200 annotated XML (byte-identical to `xsdf batch --annotate`)
//!   4xx/5xx {"error":{"kind":"parse"|"limit"|"deadline"|..., "message": ...}}
//! GET  /metrics    engine + serving-layer metrics as one JSON object
//! GET  /healthz    {"status":"ok","uptime_ms":...}
//! POST /shutdown   begin drain; in-flight requests finish, then exit
//! ```

#![warn(missing_docs)]

pub mod bench;
pub mod http;
pub mod report;
pub mod service;
pub mod signal;
pub mod stats;

pub use bench::{BenchConfig, BenchReport};
pub use service::{Server, ServerConfig, ServerHandle, ServerSummary};
