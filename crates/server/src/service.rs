//! The resident disambiguation server: accept loop, admission control,
//! request handling, and the drain-then-exit shutdown state machine.
//!
//! # Architecture
//!
//! One blocking acceptor thread plus one thread per connection, capped by
//! [`ServerConfig::max_connections`]. Control endpoints (`/healthz`,
//! `/metrics`, `/shutdown`) are answered immediately on the connection
//! thread — they can never be starved by queued work. `/disambiguate`
//! passes through an **admission semaphore**: [`ServerConfig::workers`]
//! permits bound concurrent engine work, and at most
//! [`ServerConfig::queue`] further requests may wait for a permit. A
//! request that finds the wait queue full is turned away with `429` and a
//! `Retry-After` header — backpressure is explicit, not an unbounded
//! queue hiding latency.
//!
//! Each admitted request builds a throwaway [`BatchEngine`] for its
//! per-request configuration (radius/measure/process query parameters).
//! Engines are cheap; the warm state — the sense-pair similarity cache
//! and context-vector table — lives in one [`SharedCache`] injected into
//! every engine, so cross-request (and cross-configuration, keyed by
//! similarity-weight fingerprint) reuse is what makes the resident
//! service faster than cold batch starts.
//!
//! # Shutdown state machine
//!
//! ```text
//! Running --(POST /shutdown | SIGINT | handle.shutdown())--> Draining --> Stopped
//! ```
//!
//! Draining means: the acceptor wakes (via a loopback self-connect) and
//! stops accepting; idle keep-alive connections close within one read
//! quantum (the `idle_abort` hook of [`http::Conn::read_request`]);
//! requests already read or waiting on admission run to completion; new
//! `/disambiguate` requests on surviving connections get `503` +
//! `Retry-After`. When the last connection thread exits, the server
//! flushes a final metrics snapshot and [`Server::run`] returns.
//!
//! # Memory watermarks
//!
//! The shared cache is the only state that grows with traffic, so memory
//! pressure is governed by watermarking its accounted bytes
//! ([`SharedCache::bytes`]):
//!
//! ```text
//!                 bytes >= soft: trim cold segments, degraded = true
//! Normal <-----> Degraded        (degraded clears at bytes <= soft/2)
//!                 bytes >= hard: shed /disambiguate with 503 + Retry-After,
//!                                trim until below the soft watermark
//! ```
//!
//! The soft watermark degrades quality-of-service (colder cache → slower
//! requests) but keeps serving; `/healthz` reports `degraded: true` so
//! load balancers can steer traffic away. The hard watermark sheds the
//! offending admission *and* trims, so pressure clears by the very next
//! request — shedding is a transient, not a death spiral. Both default
//! to off (`0`); they are enforced at admission time on the same path as
//! the queue-full and draining rejections.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use runtime::{BatchEngine, CacheBudget, ResourceLimits, SharedCache, XsdfError};
use semnet::SemanticNetwork;
use xsdf::{DisambiguationProcess, ThresholdPolicy, VectorSimilarity, XsdfConfig};

use crate::http::{self, Conn, HttpError, ReadOpts, Request, Response};
use crate::report;
use crate::stats::ServerStats;

/// `Retry-After` seconds suggested on 429/503 rejections.
const RETRY_AFTER_SECS: u32 = 1;

/// Server lifecycle states (stored in an atomic).
const RUNNING: usize = 0;
const DRAINING: usize = 1;
const STOPPED: usize = 2;

/// Everything tunable about a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8737` (port 0 picks a free port).
    pub addr: String,
    /// Concurrent engine permits. `0` means one per available core.
    pub workers: usize,
    /// Bounded wait queue: requests allowed to wait for a permit before
    /// new ones are rejected with 429. `0` means `4 × workers`.
    pub queue: usize,
    /// Connection cap; further connections get an immediate 503.
    pub max_connections: usize,
    /// Baseline pipeline configuration; per-request query parameters
    /// override individual fields.
    pub base: XsdfConfig,
    /// Per-request resource limits (enforced by the engine).
    pub limits: ResourceLimits,
    /// Per-request deadline (maps to a `deadline` error kind / 504).
    pub deadline: Option<Duration>,
    /// HTTP-layer body ceiling: requests declaring a larger
    /// `Content-Length` are refused with 413 before the body is read.
    pub max_body: Option<usize>,
    /// Stream a slow-document report to stderr for requests at or over
    /// this engine-time threshold (the `--slow-ms` of batch mode).
    pub slow: Option<Duration>,
    /// Keep-alive idle timeout before a quiet connection is closed.
    pub idle_timeout: Duration,
    /// Read deadline for a started request.
    pub read_timeout: Duration,
    /// Poll quantum of the connection read loop: the upper bound on how
    /// long an idle connection takes to notice a drain.
    pub quantum: Duration,
    /// Capacity budget for the shared similarity/vector cache
    /// (`--cache-entries` / `--cache-bytes`; default unbounded).
    pub cache_budget: CacheBudget,
    /// Soft memory watermark in cache bytes: at or above it the server
    /// trims cold cache segments and reports `degraded: true` in
    /// `/healthz` (cleared once bytes fall to half the watermark).
    /// `0` = off.
    pub mem_soft: u64,
    /// Hard memory watermark in cache bytes: at or above it new
    /// `/disambiguate` admissions are shed with 503 + `Retry-After`
    /// while the cache is trimmed back below the soft watermark.
    /// `0` = off.
    pub mem_hard: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8737".to_string(),
            workers: 0,
            queue: 0,
            max_connections: 64,
            base: XsdfConfig::default(),
            limits: ResourceLimits::unlimited(),
            deadline: None,
            max_body: None,
            slow: None,
            idle_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(10),
            quantum: Duration::from_millis(100),
            cache_budget: CacheBudget::unbounded(),
            mem_soft: 0,
            mem_hard: 0,
        }
    }
}

/// Resolves a `--threads`-style count: `0` means one per available core.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// The admission semaphore: `permits` concurrent workers plus a bounded
/// wait queue. Rejection is immediate (no partial wait) so backpressure
/// reaches clients while the information is still current.
struct Admission {
    permits: usize,
    queue_cap: usize,
    state: Mutex<AdmissionState>,
    available: Condvar,
}

struct AdmissionState {
    available: usize,
    waiting: usize,
}

impl Admission {
    fn new(permits: usize, queue_cap: usize) -> Self {
        Self {
            permits,
            queue_cap,
            state: Mutex::new(AdmissionState {
                available: permits,
                waiting: 0,
            }),
            available: Condvar::new(),
        }
    }

    /// Takes a permit, waiting in the bounded queue if necessary.
    /// `false` means the queue was full and the request must be rejected.
    fn acquire(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        if st.available > 0 {
            st.available -= 1;
            return true;
        }
        if st.waiting >= self.queue_cap {
            return false;
        }
        st.waiting += 1;
        while st.available == 0 {
            st = self.available.wait(st).unwrap();
        }
        st.waiting -= 1;
        st.available -= 1;
        true
    }

    fn release(&self) {
        let mut st = self.state.lock().unwrap();
        st.available += 1;
        drop(st);
        self.available.notify_one();
    }

    /// Requests currently waiting for a permit.
    fn depth(&self) -> usize {
        self.state.lock().unwrap().waiting
    }

    /// Permits currently held (busy workers).
    fn busy(&self) -> usize {
        self.permits - self.state.lock().unwrap().available
    }
}

/// A remote control for a bound server: initiate shutdown from another
/// thread (a signal watcher, a test) without touching the socket the
/// server owns.
#[derive(Clone, Copy)]
pub struct ServerHandle<'a> {
    state: &'a AtomicUsize,
    addr: SocketAddr,
}

impl ServerHandle<'_> {
    /// Begins the drain (idempotent). Wakes the acceptor so
    /// [`Server::run`] can return once in-flight work completes.
    pub fn shutdown(&self) {
        initiate_drain(self.state, self.addr);
    }

    /// Whether the server has left the running state.
    pub fn is_draining(&self) -> bool {
        self.state.load(Ordering::SeqCst) != RUNNING
    }

    /// Whether [`Server::run`] has returned.
    pub fn is_stopped(&self) -> bool {
        self.state.load(Ordering::SeqCst) == STOPPED
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Flips `Running → Draining` and pokes the acceptor awake with a
/// throwaway loopback connection.
fn initiate_drain(state: &AtomicUsize, addr: SocketAddr) {
    if state
        .compare_exchange(RUNNING, DRAINING, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        // Best-effort: if the connect fails the acceptor is already awake
        // (or gone).
        let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
    }
}

/// What a finished server reports back to the CLI.
#[derive(Debug)]
pub struct ServerSummary {
    /// The final metrics snapshot (the same JSON `GET /metrics` served).
    pub metrics_json: String,
    /// Disambiguation documents processed (success or failure).
    pub documents: usize,
    /// Documents that failed.
    pub failed: usize,
    /// Total HTTP responses sent.
    pub responses: u64,
    /// Total connections accepted.
    pub connections: u64,
}

/// A bound, resident disambiguation server. Construct with
/// [`Server::bind`], then call [`Server::run`] (blocking until drained).
pub struct Server<'sn> {
    sn: &'sn SemanticNetwork,
    config: ServerConfig,
    listener: TcpListener,
    addr: SocketAddr,
    workers: usize,
    state: AtomicUsize,
    admission: Admission,
    stats: Mutex<ServerStats>,
    cache: Arc<SharedCache>,
    /// Sticky soft-watermark flag (see the module-level state machine).
    degraded: AtomicBool,
    conns_active: AtomicUsize,
    conns_total: AtomicU64,
    req_seq: AtomicU64,
}

impl<'sn> Server<'sn> {
    /// Binds the listener and sizes the admission semaphore. The server
    /// is not serving until [`Server::run`].
    pub fn bind(sn: &'sn SemanticNetwork, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = resolve_threads(config.workers);
        let queue_cap = if config.queue == 0 {
            workers * 4
        } else {
            config.queue
        };
        Ok(Self {
            sn,
            listener,
            addr,
            workers,
            state: AtomicUsize::new(RUNNING),
            admission: Admission::new(workers, queue_cap),
            stats: Mutex::new(ServerStats::new(Instant::now())),
            cache: Arc::new(SharedCache::with_budget(config.cache_budget)),
            degraded: AtomicBool::new(false),
            conns_active: AtomicUsize::new(0),
            conns_total: AtomicU64::new(0),
            req_seq: AtomicU64::new(0),
            config,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Worker permits after `0 = auto` resolution.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Bounded admission-queue capacity after `0 = auto` resolution.
    pub fn queue_capacity(&self) -> usize {
        self.admission.queue_cap
    }

    /// A control handle usable from other threads.
    pub fn handle(&self) -> ServerHandle<'_> {
        ServerHandle {
            state: &self.state,
            addr: self.addr,
        }
    }

    fn draining(&self) -> bool {
        self.state.load(Ordering::SeqCst) != RUNNING
    }

    /// Updates the sticky degraded flag from the current cache footprint:
    /// set at or above the soft watermark, cleared once bytes fall to
    /// half of it (hysteresis, so the flag doesn't flap around the
    /// threshold). Called from every pressure check and from `/healthz`,
    /// so probes see fresh state even on an idle server.
    fn refresh_degraded(&self, bytes: u64) -> bool {
        let soft = self.config.mem_soft;
        if soft == 0 {
            return false;
        }
        if bytes >= soft {
            self.degraded.store(true, Ordering::Relaxed);
        } else if bytes <= soft / 2 {
            self.degraded.store(false, Ordering::Relaxed);
        }
        self.degraded.load(Ordering::Relaxed)
    }

    /// The watermark check on the `/disambiguate` admission path.
    /// Returns a 503 shed response when the hard watermark is breached;
    /// otherwise trims (soft watermark) as needed and admits. Trimming
    /// happens on the rejected/admitted request's own thread — the
    /// server has no background janitor to die or fall behind.
    fn apply_pressure(&self) -> Option<Response> {
        let (soft, hard) = (self.config.mem_soft, self.config.mem_hard);
        if soft == 0 && hard == 0 {
            return None;
        }
        let bytes = self.cache.bytes();
        self.refresh_degraded(bytes);
        // Trim target: just below the soft watermark (or half the hard
        // one if no soft is configured), so one trim clears hard
        // pressure but leaves the warmest, still-useful entries.
        let target = if soft > 0 {
            soft.saturating_mul(3) / 4
        } else {
            hard / 2
        };
        if hard > 0 && bytes >= hard {
            self.degraded.store(true, Ordering::Relaxed);
            self.cache.trim_to(target);
            let mut stats = self.stats.lock().unwrap();
            stats.rejected_pressure += 1;
            stats.cache_trims += 1;
            return Some(overloaded_response(503, "pressure"));
        }
        if soft > 0 && bytes >= soft {
            self.cache.trim_to(target);
            self.stats.lock().unwrap().cache_trims += 1;
        }
        None
    }

    /// Serves until drained: accepts connections, spawns one scoped
    /// thread per connection, and returns the final summary once a
    /// shutdown request (or [`ServerHandle::shutdown`]) has drained all
    /// in-flight work.
    pub fn run(&self) -> ServerSummary {
        std::thread::scope(|scope| {
            loop {
                let stream = match self.listener.accept() {
                    Ok((stream, _peer)) => stream,
                    Err(_) if self.draining() => break,
                    Err(_) => continue,
                };
                if self.draining() {
                    // Usually the shutdown wake itself; either way no new
                    // work is accepted past this point.
                    break;
                }
                if self.conns_active.load(Ordering::SeqCst) >= self.config.max_connections {
                    self.stats.lock().unwrap().rejected_over_capacity += 1;
                    self.respond_and_close(stream, overloaded_response(503, "over_capacity"));
                    continue;
                }
                self.conns_active.fetch_add(1, Ordering::SeqCst);
                self.conns_total.fetch_add(1, Ordering::SeqCst);
                scope.spawn(move || {
                    self.handle_connection(stream);
                    self.conns_active.fetch_sub(1, Ordering::SeqCst);
                });
            }
            // Scope exit joins every connection thread: the drain barrier.
        });
        self.state.store(STOPPED, Ordering::SeqCst);
        let summary = {
            let stats = self.stats.lock().unwrap();
            ServerSummary {
                metrics_json: self.metrics_json_locked(&stats),
                documents: stats.documents,
                failed: stats.failures.total(),
                responses: stats.http.values().sum(),
                connections: self.conns_total.load(Ordering::SeqCst),
            }
        };
        summary
    }

    /// Best-effort single response on a connection we will not keep.
    fn respond_and_close(&self, stream: TcpStream, response: Response) {
        let mut conn = Conn::new(stream);
        self.stats.lock().unwrap().record_status(response.status);
        let _ = conn.write_response(&response.closing());
    }

    /// The keep-alive loop of one connection.
    fn handle_connection(&self, stream: TcpStream) {
        let mut conn = Conn::new(stream);
        loop {
            let idle_abort = || self.draining();
            let opts = ReadOpts {
                idle_timeout: self.config.idle_timeout,
                read_timeout: self.config.read_timeout,
                quantum: self.config.quantum,
                max_header_bytes: http::DEFAULT_MAX_HEADER_BYTES,
                max_body_bytes: self.config.max_body,
                idle_abort: Some(&idle_abort),
            };
            match conn.read_request(&opts) {
                Ok(None) => break, // idle close, remote close, or drain
                Err(HttpError::Io(_)) => break,
                Err(e) => {
                    let response = Response::json(
                        e.status(),
                        error_body(protocol_error_kind(&e), &e.message()),
                    )
                    .closing();
                    self.stats.lock().unwrap().record_status(response.status);
                    let _ = conn.write_response(&response);
                    break;
                }
                Ok(Some(request)) => {
                    let close = request.close || self.draining();
                    let mut response = self.dispatch(&request);
                    response.close = response.close || close;
                    let closing = response.close;
                    self.stats.lock().unwrap().record_status(response.status);
                    if conn.write_response(&response).is_err() || closing {
                        break;
                    }
                }
            }
        }
    }

    /// Routes one request.
    fn dispatch(&self, request: &Request) -> Response {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => self.handle_healthz(),
            ("GET", "/metrics") => self.handle_metrics(),
            ("POST", "/shutdown") => self.handle_shutdown(),
            ("POST", "/disambiguate") => self.handle_disambiguate(request),
            (_, "/healthz") | (_, "/metrics") => method_not_allowed("GET"),
            (_, "/shutdown") | (_, "/disambiguate") => method_not_allowed("POST"),
            _ => Response::json(
                404,
                error_body("not_found", &format!("no route {:?}", request.path)),
            ),
        }
    }

    /// Liveness *and* readiness in one probe: `status` summarizes for
    /// humans, `ready` is what a load balancer should gate on (false
    /// while draining or shedding at the hard watermark), and `degraded`
    /// flags soft-watermark pressure — up, but slower than usual.
    fn handle_healthz(&self) -> Response {
        let started = Instant::now();
        let bytes = self.cache.bytes();
        let degraded = self.refresh_degraded(bytes);
        let shedding = self.config.mem_hard > 0 && bytes >= self.config.mem_hard;
        let draining = self.draining();
        let ready = !draining && !shedding;
        let state = if draining {
            "draining"
        } else if degraded || shedding {
            "degraded"
        } else {
            "ok"
        };
        let uptime_ms = {
            let stats = self.stats.lock().unwrap();
            stats.started.elapsed().as_secs_f64() * 1e3
        };
        let body = format!(
            "{{\"status\":\"{state}\",\"ready\":{ready},\"degraded\":{degraded},\
             \"uptime_ms\":{uptime_ms:?},\"cache_bytes\":{bytes}}}\n"
        );
        self.stats
            .lock()
            .unwrap()
            .ep_healthz
            .record(started.elapsed());
        Response::json(200, body)
    }

    fn handle_metrics(&self) -> Response {
        let started = Instant::now();
        let mut stats = self.stats.lock().unwrap();
        let json = self.metrics_json_locked(&stats);
        stats.ep_metrics.record(started.elapsed());
        drop(stats);
        Response::json(200, json + "\n")
    }

    /// Renders the full `/metrics` object from already-locked stats.
    fn metrics_json_locked(&self, stats: &ServerStats) -> String {
        let snapshot = stats.snapshot(self.workers, &self.cache);
        let state = match self.state.load(Ordering::SeqCst) {
            RUNNING => "running",
            DRAINING => "draining",
            _ => "stopped",
        };
        let gauges = [
            ("server_state".to_string(), format!("\"{state}\"")),
            (
                "connections_active".to_string(),
                self.conns_active.load(Ordering::SeqCst).to_string(),
            ),
            (
                "connections_total".to_string(),
                self.conns_total.load(Ordering::SeqCst).to_string(),
            ),
            (
                "requests_total".to_string(),
                stats.http.values().sum::<u64>().to_string(),
            ),
            (
                "queue_depth".to_string(),
                self.admission.depth().to_string(),
            ),
            (
                "queue_capacity".to_string(),
                self.admission.queue_cap.to_string(),
            ),
            (
                "workers_busy".to_string(),
                self.admission.busy().to_string(),
            ),
            (
                "degraded".to_string(),
                self.degraded.load(Ordering::Relaxed).to_string(),
            ),
            (
                "mem_soft_bytes".to_string(),
                self.config.mem_soft.to_string(),
            ),
            (
                "mem_hard_bytes".to_string(),
                self.config.mem_hard.to_string(),
            ),
        ];
        snapshot.to_json_extended(&stats.extras(&gauges))
    }

    fn handle_shutdown(&self) -> Response {
        initiate_drain(&self.state, self.addr);
        Response::json(200, "{\"status\":\"draining\"}\n".to_string()).closing()
    }

    fn handle_disambiguate(&self, request: &Request) -> Response {
        let received = Instant::now();
        if self.draining() {
            self.stats.lock().unwrap().rejected_draining += 1;
            return overloaded_response(503, "draining");
        }
        if let Some(shed) = self.apply_pressure() {
            return shed;
        }
        let config = match request_config(&self.config.base, request) {
            Ok(config) => config,
            Err(message) => {
                return Response::json(400, error_body("bad_request", &message));
            }
        };
        let body = match std::str::from_utf8(&request.body) {
            Ok(body) => body,
            Err(_) => {
                return Response::json(400, error_body("parse", "body is not valid UTF-8"));
            }
        };

        let admission_start = Instant::now();
        if !self.admission.acquire() {
            self.stats.lock().unwrap().rejected_queue_full += 1;
            return overloaded_response(429, "overloaded");
        }
        let queue_wait = admission_start.elapsed();

        let mut engine = BatchEngine::new(self.sn, config)
            .threads(1)
            .limits(self.config.limits)
            .shared_cache(Arc::clone(&self.cache))
            .tracing(true);
        if let Some(deadline) = self.config.deadline {
            engine = engine.deadline(deadline);
        }
        let outcome = engine.process_document_observed(body);
        self.admission.release();

        let request_id = self.req_seq.fetch_add(1, Ordering::SeqCst);
        {
            let mut stats = self.stats.lock().unwrap();
            stats.record_outcome(&outcome, received.elapsed(), queue_wait);
        }
        if let (Some(threshold), Some(span)) = (self.config.slow, &outcome.span) {
            if span.duration() >= threshold {
                eprint!(
                    "{}\n{}",
                    report::slow_header(1, threshold),
                    report::slow_span_report(&format!("req-{request_id}"), span)
                );
            }
        }

        match outcome.result {
            Ok(result) => {
                // The same bytes `xsdf batch --annotate` prints for this
                // document: annotated XML plus the trailing newline.
                let mut body = result.semantic_tree.to_annotated_xml();
                body.push('\n');
                Response::new(200)
                    .header("X-Xsdf-Nodes", result.reports.len().to_string())
                    .header("X-Xsdf-Targets", result.targets().count().to_string())
                    .header("X-Xsdf-Assigned", result.assigned_count().to_string())
                    .body("application/xml", body)
            }
            Err(error) => Response::json(
                status_for(&error),
                error_body(error.kind(), &error.to_string()),
            ),
        }
    }
}

/// HTTP status for each [`XsdfError`] kind.
fn status_for(error: &XsdfError) -> u16 {
    match error {
        XsdfError::Parse(_) => 400,
        XsdfError::LimitExceeded { .. } => 413,
        XsdfError::DeadlineExceeded { .. } => 504,
        XsdfError::Panicked { .. } => 500,
        XsdfError::Cancelled => 503,
    }
}

/// Kind tag for HTTP-layer read errors, aligned with the engine taxonomy
/// where one exists (an oversized body is the same `limit` kind the
/// engine's own byte ceiling reports).
fn protocol_error_kind(error: &HttpError) -> &'static str {
    match error {
        HttpError::BodyTooLarge { .. } => "limit",
        HttpError::Timeout => "timeout",
        _ => "bad_request",
    }
}

/// A 429/503 backpressure response with `Retry-After`.
fn overloaded_response(status: u16, kind: &str) -> Response {
    let message = match kind {
        "overloaded" => "admission queue full; retry later",
        "draining" => "server is draining; retry against a fresh instance",
        "pressure" => "shedding under memory pressure; retry shortly",
        _ => "over connection capacity; retry later",
    };
    Response::json(status, error_body(kind, message))
        .header("Retry-After", RETRY_AFTER_SECS.to_string())
        .closing()
}

/// The structured error body: `{"error":{"kind":...,"message":...}}`.
fn error_body(kind: &str, message: &str) -> String {
    format!(
        "{{\"error\":{{\"kind\":{},\"message\":{}}}}}\n",
        json_string(kind),
        json_string(message)
    )
}

fn method_not_allowed(allow: &str) -> Response {
    Response::json(
        405,
        error_body("method_not_allowed", &format!("use {allow}")),
    )
    .header("Allow", allow)
}

/// A JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Applies per-request query parameters over the server's baseline
/// configuration. Unknown parameters are rejected — silent typos would
/// otherwise serve results under the wrong configuration.
fn request_config(base: &XsdfConfig, request: &Request) -> Result<XsdfConfig, String> {
    let mut config = base.clone();
    for (key, value) in &request.query {
        match key.as_str() {
            "radius" => {
                config.radius = value
                    .parse()
                    .map_err(|_| format!("bad radius value {value:?}"))?;
            }
            "process" => {
                config.process = match value.as_str() {
                    "concept" => DisambiguationProcess::ConceptBased,
                    "context" => DisambiguationProcess::ContextBased,
                    "combined" => DisambiguationProcess::Combined {
                        concept: 0.5,
                        context: 0.5,
                    },
                    other => return Err(format!("bad process value {other:?}")),
                };
            }
            "measure" => {
                config.vector_similarity = match value.as_str() {
                    "cosine" => VectorSimilarity::Cosine,
                    "jaccard" => VectorSimilarity::Jaccard,
                    "pearson" => VectorSimilarity::Pearson,
                    other => return Err(format!("bad measure value {other:?}")),
                };
            }
            "threshold" => {
                config.threshold = if value == "auto" {
                    ThresholdPolicy::Auto
                } else {
                    let t: f64 = value
                        .parse()
                        .map_err(|_| format!("bad threshold value {value:?}"))?;
                    if !(0.0..=1.0).contains(&t) {
                        return Err(format!("threshold {t} outside [0, 1]"));
                    }
                    ThresholdPolicy::Fixed(t)
                };
            }
            "structure" => {
                config.structure_and_content = match value.as_str() {
                    "only" => false,
                    "content" => true,
                    other => return Err(format!("bad structure value {other:?}")),
                };
            }
            "prune" => {
                config.prune = xsdf::PruningConfig::parse(value)
                    .map_err(|e| format!("bad prune value {value:?}: {e}"))?;
            }
            other => return Err(format!("unknown query parameter {other:?}")),
        }
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req_with_query(query: &[(&str, &str)]) -> Request {
        Request {
            method: "POST".into(),
            path: "/disambiguate".into(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: Vec::new(),
            body: Vec::new(),
            close: false,
        }
    }

    #[test]
    fn query_parameters_override_base_config() {
        let base = XsdfConfig::default();
        let config = request_config(
            &base,
            &req_with_query(&[
                ("radius", "3"),
                ("process", "combined"),
                ("measure", "jaccard"),
                ("threshold", "auto"),
                ("structure", "only"),
                ("prune", "topk:4,slack:0.05"),
            ]),
        )
        .unwrap();
        assert_eq!(config.radius, 3);
        assert!(matches!(
            config.process,
            DisambiguationProcess::Combined { .. }
        ));
        assert_eq!(config.vector_similarity, VectorSimilarity::Jaccard);
        assert!(matches!(config.threshold, ThresholdPolicy::Auto));
        assert!(!config.structure_and_content);
        assert!(config.prune.early_exit);
        assert_eq!(config.prune.density_top_k, 4);
        assert!((config.prune.bound_slack - 0.05).abs() < 1e-12);
    }

    #[test]
    fn bad_and_unknown_query_parameters_are_rejected() {
        let base = XsdfConfig::default();
        for query in [
            [("radius", "not-a-number")],
            [("process", "quantum")],
            [("measure", "manhattan")],
            [("threshold", "1.5")],
            [("structure", "both")],
            [("prune", "topk:0")],
            [("prune", "aggressive")],
            [("raduis", "2")], // typo must not silently pass
        ] {
            assert!(
                request_config(&base, &req_with_query(&query)).is_err(),
                "{query:?} should be rejected"
            );
        }
    }

    #[test]
    fn admission_grants_queue_and_rejects() {
        let admission = Admission::new(1, 1);
        assert!(admission.acquire(), "first permit is immediate");
        assert_eq!(admission.busy(), 1);
        // One waiter fits; started on another thread because acquire
        // blocks.
        let admission = std::sync::Arc::new(admission);
        let waiter = {
            let admission = Arc::clone(&admission);
            std::thread::spawn(move || admission.acquire())
        };
        // Wait until the waiter is registered.
        while admission.depth() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // The queue (capacity 1) is now full: an immediate reject.
        assert!(!admission.acquire(), "queue full must reject");
        admission.release();
        assert!(waiter.join().unwrap(), "waiter gets the released permit");
        admission.release();
        assert_eq!(admission.busy(), 0);
        assert_eq!(admission.depth(), 0);
    }

    #[test]
    fn error_bodies_are_structured_json() {
        let body = error_body("deadline", "deadline of 5.0 ms exceeded after 9.0 ms");
        assert!(body.starts_with("{\"error\":{\"kind\":\"deadline\""));
        assert!(body.ends_with("}\n"));
        let escaped = error_body("parse", "bad \"quote\"");
        assert!(escaped.contains("bad \\\"quote\\\""));
    }

    #[test]
    fn xsdf_error_kinds_map_to_stable_statuses() {
        assert_eq!(
            status_for(&XsdfError::Panicked {
                message: "boom".into()
            }),
            500
        );
        assert_eq!(status_for(&XsdfError::Cancelled), 503);
        assert_eq!(
            status_for(&XsdfError::DeadlineExceeded {
                budget: Duration::from_millis(1),
                elapsed: Duration::from_millis(2),
            }),
            504
        );
    }
}
