//! Live serving-layer counters, folded together with the engine's own
//! aggregates into one flat `/metrics` JSON object.
//!
//! The batch runtime already knows how to describe a run
//! ([`runtime::MetricsSnapshot`]); a resident server is just a run that
//! never ends. So `/metrics` is built by filling a `MetricsSnapshot` from
//! the accumulated per-request [`runtime::DocOutcome`]s (stage timings,
//! latency histograms, failure kinds, cache accounting) and appending the
//! serving-layer extras — uptime, connection and queue gauges, rejection
//! counters, HTTP status tallies, and per-endpoint latency percentiles —
//! through [`MetricsSnapshot::to_json_extended`]. Dashboards see one
//! schema whether they scrape a batch report or a live server.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use runtime::{
    DocOutcome, FailureCounts, Histogram, MetricsSnapshot, SharedCache, StageLatency, StageTimings,
};
use semsim::SimilarityCache;

/// Everything the serving layer counts. One instance lives behind the
/// server's mutex; handlers lock, record, and unlock around each request.
#[derive(Debug)]
pub struct ServerStats {
    /// When the server started (the `/metrics` uptime epoch).
    pub started: Instant,
    /// Disambiguation documents attempted (success or failure).
    pub documents: usize,
    /// Failed documents by [`runtime::XsdfError`] kind.
    pub failures: FailureCounts,
    /// Tree nodes across successful documents.
    pub nodes: usize,
    /// Selected disambiguation targets across successful documents.
    pub targets: usize,
    /// Targets that received a sense.
    pub assigned: usize,
    /// Sense pairs scored (the guard's tick count), summed.
    pub sense_pairs: u64,
    /// Per-stage CPU time summed across requests.
    pub stages: StageTimings,
    /// Per-document latency distributions (per stage + end-to-end),
    /// engine time only — queue wait is tracked separately.
    pub latency: StageLatency,
    /// Similarity-cache hits summed across requests.
    pub cache_hits: u64,
    /// Similarity-cache misses summed across requests.
    pub cache_misses: u64,
    /// Gloss-overlap kernel invocations summed across requests.
    pub gloss_pairs_scored: u64,
    /// Context vectors built from scratch, summed.
    pub vectors_built: u64,
    /// Context vectors reused from the shared table, summed.
    pub vectors_reused: u64,
    /// Candidate evaluations skipped by the pruner, summed (zero unless
    /// requests enable `prune=`).
    pub candidates_pruned: u64,
    /// Candidate loops the pruner stopped early, summed.
    pub early_exits: u64,
    /// End-to-end `/disambiguate` latency (queue wait + engine).
    pub ep_disambiguate: Histogram,
    /// `GET /metrics` latency.
    pub ep_metrics: Histogram,
    /// `GET /healthz` latency.
    pub ep_healthz: Histogram,
    /// Time requests spent waiting for a worker permit.
    pub queue_wait: Histogram,
    /// Responses by HTTP status code.
    pub http: BTreeMap<u16, u64>,
    /// `/disambiguate` requests turned away with 429 (wait queue full).
    pub rejected_queue_full: u64,
    /// Connections turned away with 503 while draining.
    pub rejected_draining: u64,
    /// Connections turned away with 503 at the connection cap.
    pub rejected_over_capacity: u64,
    /// `/disambiguate` requests shed with 503 at the hard memory
    /// watermark.
    pub rejected_pressure: u64,
    /// Watermark-triggered cache trims (soft or hard).
    pub cache_trims: u64,
}

impl ServerStats {
    /// Fresh counters with the uptime epoch at `now`.
    pub fn new(started: Instant) -> Self {
        Self {
            started,
            documents: 0,
            failures: FailureCounts::default(),
            nodes: 0,
            targets: 0,
            assigned: 0,
            sense_pairs: 0,
            stages: StageTimings::default(),
            latency: StageLatency::default(),
            cache_hits: 0,
            cache_misses: 0,
            gloss_pairs_scored: 0,
            vectors_built: 0,
            vectors_reused: 0,
            candidates_pruned: 0,
            early_exits: 0,
            ep_disambiguate: Histogram::new(),
            ep_metrics: Histogram::new(),
            ep_healthz: Histogram::new(),
            queue_wait: Histogram::new(),
            http: BTreeMap::new(),
            rejected_queue_full: 0,
            rejected_draining: 0,
            rejected_over_capacity: 0,
            rejected_pressure: 0,
            cache_trims: 0,
        }
    }

    /// Tallies one response status.
    pub fn record_status(&mut self, status: u16) {
        *self.http.entry(status).or_insert(0) += 1;
    }

    /// Folds one `/disambiguate` outcome into the counters. `total` is
    /// the end-to-end request time (queue wait included), `queue_wait`
    /// the slice spent waiting for a worker permit.
    pub fn record_outcome(&mut self, outcome: &DocOutcome, total: Duration, queue_wait: Duration) {
        self.documents += 1;
        self.ep_disambiguate.record(total);
        self.queue_wait.record(queue_wait);
        self.cache_hits += outcome.cache_hits;
        self.cache_misses += outcome.cache_misses;
        self.gloss_pairs_scored += outcome.gloss_pairs_scored;
        self.vectors_built += outcome.vectors_built;
        self.vectors_reused += outcome.vectors_reused;
        self.candidates_pruned += outcome.candidates_pruned;
        self.early_exits += outcome.early_exits;
        if let Err(e) = &outcome.result {
            self.failures.record(e);
        }
        if let Some(span) = &outcome.span {
            self.latency.doc.record(span.duration());
            self.sense_pairs += span.sense_pairs;
            if span.outcome == "ok" {
                self.nodes += span.nodes;
                self.targets += span.targets;
                self.assigned += span.assigned;
            }
            // Stage slices land in both the summed timings and the
            // per-stage latency histograms, exactly as a batch records
            // them.
            let sums = [
                &mut self.stages.parse,
                &mut self.stages.preprocess,
                &mut self.stages.select,
                &mut self.stages.disambiguate,
            ];
            let hists = [
                &mut self.latency.parse,
                &mut self.latency.preprocess,
                &mut self.latency.select,
                &mut self.latency.disambiguate,
            ];
            for ((slice, sum), hist) in span.stages.iter().zip(sums).zip(hists) {
                if let Some(stage) = slice {
                    *sum += stage.duration;
                    hist.record(stage.duration);
                }
            }
        }
    }

    /// The engine-shaped part of `/metrics`: a [`MetricsSnapshot`] whose
    /// `wall_clock` is the server's uptime, so `docs_per_sec` reads as
    /// sustained lifetime throughput.
    pub fn snapshot(&self, workers: usize, cache: &SharedCache) -> MetricsSnapshot {
        MetricsSnapshot {
            threads: workers,
            documents: self.documents,
            failed_documents: self.failures.total(),
            failures: self.failures,
            nodes: self.nodes,
            targets: self.targets,
            assigned: self.assigned,
            stages: self.stages,
            latency: self.latency.clone(),
            wall_clock: self.started.elapsed(),
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            cache_entries: cache.len(),
            cache_evictions: cache.evictions(),
            cache_bytes: cache.bytes(),
            cache_bytes_peak: cache.bytes_peak(),
            gloss_pairs_scored: self.gloss_pairs_scored,
            vectors_built: self.vectors_built,
            vectors_reused: self.vectors_reused,
            vector_entries: cache.vectors_len(),
            candidates_pruned: self.candidates_pruned,
            early_exits: self.early_exits,
        }
    }

    /// The serving-layer extras appended after the snapshot's own keys.
    /// Gauges the stats struct cannot see (state, connections, queue
    /// depth) come in through `gauges` as ready-made `(key, value)`
    /// pairs.
    pub fn extras(&self, gauges: &[(String, String)]) -> Vec<(String, String)> {
        let mut extras: Vec<(String, String)> = gauges.to_vec();
        extras.push((
            "uptime_ms".into(),
            format!("{:?}", self.started.elapsed().as_secs_f64() * 1e3),
        ));
        extras.push(("sense_pairs".into(), self.sense_pairs.to_string()));
        extras.push((
            "rejected_queue_full".into(),
            self.rejected_queue_full.to_string(),
        ));
        extras.push((
            "rejected_draining".into(),
            self.rejected_draining.to_string(),
        ));
        extras.push((
            "rejected_over_capacity".into(),
            self.rejected_over_capacity.to_string(),
        ));
        extras.push((
            "rejected_pressure".into(),
            self.rejected_pressure.to_string(),
        ));
        extras.push(("cache_trims".into(), self.cache_trims.to_string()));
        for (name, hist) in [
            ("endpoint_disambiguate", &self.ep_disambiguate),
            ("endpoint_metrics", &self.ep_metrics),
            ("endpoint_healthz", &self.ep_healthz),
            ("queue_wait", &self.queue_wait),
        ] {
            extras.push((format!("{name}_requests"), hist.count().to_string()));
            for (stat, value) in [
                ("p50", hist.p50()),
                ("p90", hist.p90()),
                ("p99", hist.p99()),
                ("max", hist.max()),
            ] {
                extras.push((
                    format!("{name}_{stat}_ms"),
                    format!("{:?}", value.as_secs_f64() * 1e3),
                ));
            }
        }
        for (status, count) in &self.http {
            extras.push((format!("http_{status}"), count.to_string()));
        }
        extras
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::{BatchEngine, ResourceLimits};
    use xsdf::XsdfConfig;

    fn outcome(xml: &str) -> DocOutcome {
        BatchEngine::new(semnet::mini_wordnet(), XsdfConfig::default())
            .threads(1)
            .limits(ResourceLimits::unlimited())
            .tracing(true)
            .process_document_observed(xml)
    }

    #[test]
    fn outcomes_accumulate_into_snapshot() {
        let mut stats = ServerStats::new(Instant::now());
        let ok = outcome("<cast><star>Kelly</star></cast>");
        assert!(ok.result.is_ok());
        stats.record_outcome(&ok, Duration::from_millis(3), Duration::from_millis(1));
        let bad = outcome("<a></b>");
        assert!(bad.result.is_err());
        stats.record_outcome(&bad, Duration::from_millis(1), Duration::ZERO);

        let cache = SharedCache::new();
        cache.store(
            (
                semsim::WeightsFingerprint(7),
                semnet::ConceptId(0),
                semnet::ConceptId(0),
            ),
            0.5,
        );
        let snap = stats.snapshot(2, &cache);
        assert_eq!(snap.documents, 2);
        assert_eq!(snap.failed_documents, 1);
        assert_eq!(snap.failures.parse, 1);
        assert!(snap.nodes > 0, "ok doc contributes nodes");
        assert_eq!(snap.threads, 2);
        assert_eq!(snap.cache_entries, 1);
        assert_eq!(snap.vector_entries, 0);
        assert!(snap.cache_bytes > 0, "accounted bytes must be visible");
        assert_eq!(snap.cache_bytes_peak, snap.cache_bytes);
        assert_eq!(snap.cache_evictions, 0);
        assert_eq!(snap.latency.doc.count(), 2);
        assert!(snap.stages.total() > Duration::ZERO);
        assert_eq!(stats.ep_disambiguate.count(), 2);
        assert_eq!(stats.queue_wait.count(), 2);
        // Pruning was off for both requests, so the summed counters are 0.
        assert_eq!(snap.candidates_pruned, 0);
        assert_eq!(snap.early_exits, 0);
    }

    #[test]
    fn pruned_outcomes_surface_in_snapshot() {
        let cfg = XsdfConfig {
            prune: xsdf::PruningConfig::exact(),
            ..XsdfConfig::default()
        };
        let pruned = BatchEngine::new(semnet::mini_wordnet(), cfg)
            .threads(1)
            .tracing(true)
            .process_document_observed(
                "<films><picture><cast><star>Stewart</star><star>Kelly</star></cast></picture></films>",
            );
        assert!(pruned.result.is_ok());
        let mut stats = ServerStats::new(Instant::now());
        stats.record_outcome(&pruned, Duration::from_millis(2), Duration::ZERO);
        let snap = stats.snapshot(1, &SharedCache::new());
        assert!(snap.candidates_pruned > 0, "pruned request must be counted");
        assert_eq!(snap.candidates_pruned, pruned.candidates_pruned);
        assert_eq!(snap.early_exits, pruned.early_exits);
    }

    #[test]
    fn extras_render_into_flat_metrics_json() {
        let mut stats = ServerStats::new(Instant::now());
        stats.record_status(200);
        stats.record_status(200);
        stats.record_status(429);
        stats.rejected_queue_full = 1;
        let gauges = [("server_state".to_string(), "\"running\"".to_string())];
        let json = stats
            .snapshot(1, &SharedCache::new())
            .to_json_extended(&stats.extras(&gauges));
        for key in [
            "server_state",
            "uptime_ms",
            "sense_pairs",
            "rejected_queue_full",
            "rejected_draining",
            "rejected_over_capacity",
            "rejected_pressure",
            "cache_trims",
            "cache_evictions",
            "cache_bytes",
            "cache_bytes_peak",
            "endpoint_disambiguate_p99_ms",
            "endpoint_metrics_requests",
            "endpoint_healthz_p50_ms",
            "queue_wait_max_ms",
            "candidates_pruned",
            "early_exits",
            "http_200",
            "http_429",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
        assert!(json.contains("\"http_200\": 2"));
        assert!(json.contains("\"server_state\": \"running\""));
    }
}
