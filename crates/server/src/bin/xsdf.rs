//! The `xsdf` command-line tool: run the XML Semantic Disambiguation
//! Framework on files from the shell.
//!
//! ```text
//! xsdf disambiguate doc.xml [--radius N] [--process concept|context|combined]
//!                           [--threshold auto|<float>] [--network kb.sn]
//!                           [--structure-only] [--quiet]
//! xsdf batch        a.xml b.xml ... [--threads N] [--shards N] [--metrics out.json]
//!                   [--trace out.json] [--trace-jsonl out.jsonl] [--slow-ms N]
//! xsdf gen-corpus   --out dir [--count N] [--seed S] [--start P]
//! xsdf ambiguity    doc.xml [--network kb.sn]       # Amb_Deg per node
//! xsdf network      [--export kb.sn]                # MiniWordNet stats/export
//! xsdf senses       <word> [--network kb.sn]        # sense inventory of a word
//! xsdf serve        [--addr 127.0.0.1:8737] [--threads N] [--queue N] ...
//! xsdf bench-serve  [--addr host:port] [--connections N] [--duration-ms N] ...
//! ```

use std::process::ExitCode;
use std::time::{Duration, Instant};

use runtime::{BatchEngine, CacheBudget, MetricsSnapshot, ResourceLimits, ShardReport, XsdfError};
use server::bench::{run_bench, run_soak, BenchConfig, SoakConfig};
use server::{report, signal, Server, ServerConfig};
use xsdf::guard::LimitKind;
use xsdf::{DisambiguationProcess, ThresholdPolicy, Xsdf, XsdfConfig};

/// Exit code for a batch where some — but not all — documents failed.
/// `0` means every document succeeded; `1` is a total or usage failure.
const EXIT_PARTIAL: u8 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "disambiguate" => cmd_disambiguate(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "gen-corpus" => cmd_gen_corpus(&args[1..]),
        "ambiguity" => cmd_ambiguity(&args[1..]),
        "network" => cmd_network(&args[1..]),
        "compile-network" => cmd_compile_network(&args[1..]),
        "import-wndb" => cmd_import_wndb(&args[1..]),
        "senses" => cmd_senses(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "bench-serve" => cmd_bench_serve(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
xsdf — XML Semantic Disambiguation Framework (EDBT 2015)

USAGE:
    xsdf disambiguate <file.xml> [options]   resolve node senses, print annotated XML
    xsdf batch        <files...> [options]   disambiguate many files in parallel
                                             (add --shards N to fan out over N
                                             worker processes with merged metrics)
    xsdf gen-corpus   --out <dir> [options]  materialize streaming-corpus documents
                                             as XML files (constant memory)
    xsdf ambiguity    <file.xml> [options]   print each node's ambiguity degree
    xsdf network      [--export <file>]      built-in network stats / text export
    xsdf compile-network [<network>] --out <file.snap>
                                             compile a network (text file, --wndb <dir>,
                                             or builtin MiniWordNet) + its scoring
                                             artifacts into a binary snapshot that
                                             cold-starts as one read instead of a rebuild
    xsdf senses       <word> [options]       list a word's senses
    xsdf serve        [options]              resident HTTP service (see SERVE OPTIONS)
    xsdf bench-serve  [options]              closed-loop load bench against a server

OPTIONS:
    --network <file>      load a semantic network instead of MiniWordNet; the
                          format is sniffed: compiled snapshot (from
                          compile-network) or text export
    --radius <1|2|3|..>   sphere neighborhood radius d          [default: 2]
    --process <p>         concept | context | combined          [default: concept]
    --threshold <t>       auto | a float in [0,1]               [default: 0]
    --structure-only      ignore element/attribute text values
    --prune <spec>        candidate pruning: off | exact | topk:<K> |
                          budget | slack:<x> (comma-separated; topk/
                          budget/slack imply exact)              [default: off]
    --quiet               suppress the per-node report

GEN-CORPUS OPTIONS:
    --out <dir>           output directory (created if missing; required)
    --count <N>           documents to write                    [default: 100]
    --seed <S>            stream seed                           [default: 42]
    --start <P>           first stream position                 [default: 0]

RESOURCE OPTIONS (disambiguate + batch):
    --max-bytes <N>       reject documents larger than N bytes
                          (checked against the on-disk size before the
                          file is ever buffered)
    --max-nodes <N>       reject documents with more than N tree nodes
    --max-depth <N>       reject element nesting deeper than N
    --deadline-ms <N>     per-document wall-clock budget in milliseconds

BATCH OPTIONS:
    --threads <N>         worker threads; 0 = auto, one per available
                          core (std::thread::available_parallelism)
                                                                [default: 0]
    --shards <N>          fan the batch out over N worker PROCESSES
                          (contiguous balanced slices of the input list);
                          per-document output replays in input order and
                          the merged metrics/histograms are independent
                          of N. Incompatible with --fail-fast, --trace,
                          --trace-jsonl, --slow-ms.
    --metrics <file>      write run metrics as JSON (incl. per-stage latency percentiles)
    --trace <file>        write per-document spans in Chrome trace-event format
                          (load in Perfetto or chrome://tracing; one track per worker)
    --trace-jsonl <file>  write per-document spans as JSON Lines (one object per doc)
    --slow-ms <N>         report documents slower than N ms on stderr with their
                          stage breakdown and most-missed cache concepts
    --annotate            print each document's annotated XML to stdout
    --keep-going          process every document despite failures [default]
    --fail-fast           stop scheduling documents after the first failure

CACHE OPTIONS (batch + serve + self-hosted bench-serve):
    --cache-entries <N>   cap EACH similarity-cache table (pair scores,
                          context vectors) at N entries; coldest evicted
                          first (0 = unbounded)                  [default: 0]
    --cache-bytes <N>     cap the cache's total accounted heap bytes at N,
                          split across both tables (0 = unbounded)
                                                                 [default: 0]

SERVE OPTIONS (plus the shared pipeline + resource + cache options above):
    --addr <host:port>    bind address (port 0 = any free port)  [default: 127.0.0.1:8737]
    --threads <N>         concurrent worker permits; 0 = auto, one per
                          available core                         [default: 0]
    --queue <N>           bounded admission queue; requests beyond it
                          get 429 + Retry-After (0 = 4 x workers) [default: 0]
    --max-connections <N> connection cap (excess gets 503)       [default: 64]
    --slow-ms <N>         stream slow-request reports to stderr, batch format
    --metrics <file>      write the final metrics snapshot on shutdown
    --mem-soft <N>        soft watermark on accounted cache bytes: trim the
                          coldest cache segments, report degraded health
                          (0 = off)                              [default: 0]
    --mem-hard <N>        hard watermark: shed /disambiguate with 503 +
                          Retry-After until pressure clears (0 = off)
                                                                 [default: 0]
    Endpoints: POST /disambiguate?radius=&process=&measure=&threshold=&structure=&prune=
               GET /metrics | GET /healthz | POST /shutdown
    Shutdown:  POST /shutdown or Ctrl-C drains (in-flight requests finish);
               a second Ctrl-C aborts immediately (exit 130).

BENCH-SERVE OPTIONS:
    --addr <host:port>    bench an already-running server; omit to self-host
                          an in-process server on a free port
    --connections <N>     concurrent closed-loop connections     [default: 2]
    --warmup-ms <N>       untimed cache-warming phase            [default: 3000]
    --duration-ms <N>     timed measurement window               [default: 10000]
    --threads <N>         (self-hosted) worker permits; 0 = auto [default: 0]
    --query <q>           query string for /disambiguate, e.g. radius=2
    --out <file>          report path                  [default: BENCH_serve.json]
    --soak                soak mode: send a fixed number of requests over a
                          STREAMING corpus (fresh documents, growing key
                          space) while sampling /metrics gauges — writes
                          BENCH_soak.json proving cache_bytes stays under
                          the byte budget
    --requests <N>        (soak) total requests        [default: 5000; quick 300]
    --sample-ms <N>       (soak) gauge sample interval [default: 500; quick 100]
    XSDF_BENCH_QUICK=1 shrinks warmup/duration/requests to a smoke test.

EXIT CODES (batch):
    0  every document succeeded
    2  some documents failed (each is reported on stderr with its kind),
       or a first Ctrl-C drained the batch early (cancelled slots count
       as failures; metrics/trace files are still written)
    1  all documents failed, or the invocation itself was invalid";

/// Simple flag parser: returns (positional args, flag lookup).
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn positional(&self) -> Vec<&'a str> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.args.len() {
            let a = &self.args[i];
            if a.starts_with("--") {
                if !matches!(
                    a.as_str(),
                    "--structure-only"
                        | "--quiet"
                        | "--annotate"
                        | "--keep-going"
                        | "--fail-fast"
                        | "--soak"
                ) {
                    i += 1; // skip the flag's value
                }
            } else {
                out.push(a.as_str());
            }
            i += 1;
        }
        out
    }

    fn value(&self, name: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }
}

enum Network {
    Builtin,
    Loaded(Box<semnet::SemanticNetwork>),
}

impl Network {
    fn get(&self) -> &semnet::SemanticNetwork {
        match self {
            Self::Builtin => semnet::mini_wordnet(),
            Self::Loaded(sn) => sn,
        }
    }
}

fn load_network(flags: &Flags) -> Result<Network, String> {
    match flags.value("--network") {
        None => Ok(Network::Builtin),
        Some(path) => Ok(Network::Loaded(Box::new(load_network_path(path)?))),
    }
}

/// Loads a semantic network from a path, sniffing the format: a compiled
/// snapshot (magic bytes) decodes in one pass with its artifacts already
/// built; anything else parses as the text format.
fn load_network_path(path: &str) -> Result<semnet::SemanticNetwork, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read network {path}: {e}"))?;
    if semnet::snapshot::sniff(&bytes) {
        return semnet::snapshot::decode(&bytes)
            .map_err(|e| format!("cannot load snapshot {path}: {e}"));
    }
    let text =
        String::from_utf8(bytes).map_err(|e| format!("network {path} is not UTF-8 text: {e}"))?;
    semnet::format::from_text(&text).map_err(|e| format!("cannot parse network {path}: {e}"))
}

fn build_config(flags: &Flags) -> Result<XsdfConfig, String> {
    let mut config = XsdfConfig::default();
    if let Some(radius) = flags.value("--radius") {
        config.radius = radius
            .parse()
            .map_err(|_| format!("bad --radius value {radius:?}"))?;
    }
    if let Some(process) = flags.value("--process") {
        config.process = match process {
            "concept" => DisambiguationProcess::ConceptBased,
            "context" => DisambiguationProcess::ContextBased,
            "combined" => DisambiguationProcess::Combined {
                concept: 0.5,
                context: 0.5,
            },
            other => return Err(format!("bad --process value {other:?}")),
        };
    }
    if let Some(threshold) = flags.value("--threshold") {
        config.threshold = if threshold == "auto" {
            ThresholdPolicy::Auto
        } else {
            let t: f64 = threshold
                .parse()
                .map_err(|_| format!("bad --threshold value {threshold:?}"))?;
            ThresholdPolicy::Fixed(t)
        };
    }
    if flags.has("--structure-only") {
        config.structure_and_content = false;
    }
    if let Some(spec) = flags.value("--prune") {
        config.prune = xsdf::PruningConfig::parse(spec)
            .map_err(|e| format!("bad --prune value {spec:?}: {e}"))?;
    }
    Ok(config)
}

/// Parses the shared resource-limit flags into engine settings.
fn build_limits(flags: &Flags) -> Result<(ResourceLimits, Option<Duration>), String> {
    fn parsed<T: std::str::FromStr>(flags: &Flags, name: &str) -> Result<Option<T>, String> {
        match flags.value(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad {name} value {v:?}")),
        }
    }
    let mut limits = ResourceLimits::unlimited();
    if let Some(max) = parsed(flags, "--max-bytes")? {
        limits = limits.max_bytes(max);
    }
    if let Some(max) = parsed(flags, "--max-nodes")? {
        limits = limits.max_nodes(max);
    }
    if let Some(max) = parsed(flags, "--max-depth")? {
        limits = limits.max_depth(max);
    }
    let deadline = parsed(flags, "--deadline-ms")?.map(Duration::from_millis);
    Ok((limits, deadline))
}

/// Why one input file could not be ingested.
enum IngestError {
    /// A typed per-document failure in the engine's taxonomy (too big,
    /// not UTF-8): reported like any other document failure, so it is
    /// counted and kind-tagged instead of sinking the whole run.
    Doc(XsdfError),
    /// A filesystem failure (missing file, permissions): an invocation
    /// problem, reported as a whole-run error.
    Io(String),
}

/// Reads one XML input with the `--max-bytes` ceiling enforced *before*
/// buffering: the on-disk length is checked against the limit first, so
/// an oversized input is rejected as a typed `LimitExceeded` without
/// `read` ever materializing it. Invalid UTF-8 maps to a typed parse
/// failure (with the line/column of the first bad byte) rather than an
/// opaque io error.
fn ingest_doc(path: &str, limits: &ResourceLimits) -> Result<String, IngestError> {
    if let Some(max) = limits.max_bytes {
        let len = std::fs::metadata(path)
            .map_err(|e| IngestError::Io(format!("cannot read {path}: {e}")))?
            .len();
        if len > max as u64 {
            return Err(IngestError::Doc(XsdfError::LimitExceeded {
                which: LimitKind::Bytes,
                limit: max as u64,
                actual: len,
            }));
        }
    }
    let bytes =
        std::fs::read(path).map_err(|e| IngestError::Io(format!("cannot read {path}: {e}")))?;
    String::from_utf8(bytes).map_err(|e| {
        let valid = &e.as_bytes()[..e.utf8_error().valid_up_to()];
        let line = valid.iter().filter(|&&b| b == b'\n').count() as u32 + 1;
        let column = valid.iter().rev().take_while(|&&b| b != b'\n').count() as u32 + 1;
        IngestError::Doc(XsdfError::Parse(xmltree::ParseError::new(
            xmltree::ParseErrorKind::Malformed("input is not valid UTF-8".into()),
            line,
            column,
        )))
    })
}

fn read_doc(flags: &Flags, limits: &ResourceLimits) -> Result<(String, String), String> {
    let positional = flags.positional();
    let path = positional
        .first()
        .ok_or_else(|| "missing input file (see `xsdf help`)".to_string())?;
    match ingest_doc(path, limits) {
        Ok(xml) => Ok((path.to_string(), xml)),
        Err(IngestError::Doc(e)) => Err(format!("{path}: [{}] {e}", e.kind())),
        Err(IngestError::Io(message)) => Err(message),
    }
}

fn cmd_disambiguate(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags { args };
    let (limits, deadline) = build_limits(&flags)?;
    let (path, xml) = read_doc(&flags, &limits)?;
    let network = load_network(&flags)?;
    let config = build_config(&flags)?;
    // A one-document engine rather than `Xsdf::disambiguate_str`: the
    // engine path applies the resource limits, the deadline, and panic
    // isolation to interactive runs too.
    let mut engine = BatchEngine::new(network.get(), config)
        .threads(1)
        .limits(limits);
    if let Some(d) = deadline {
        engine = engine.deadline(d);
    }
    let result = engine
        .process_document(&xml)
        .map_err(|e| format!("{path}: [{}] {e}", e.kind()))?;
    if !flags.has("--quiet") {
        eprintln!(
            "{path}: {} nodes, {} targets, {} senses assigned",
            result.reports.len(),
            result.targets().count(),
            result.assigned_count()
        );
        for report in &result.reports {
            if let Some((_, score)) = &report.chosen {
                // invariant: the pipeline annotates the semantic tree for
                // every report with a chosen sense
                let sense = result.semantic_tree.sense(report.node).unwrap();
                eprintln!("  {:16} -> {:24} ({score:.3})", report.label, sense.concept);
            }
        }
    }
    println!("{}", result.semantic_tree.to_annotated_xml());
    Ok(ExitCode::SUCCESS)
}

fn cmd_batch(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags { args };
    if let Some(n) = flags.value("--shards") {
        let shards: usize = n.parse().map_err(|_| format!("bad --shards value {n:?}"))?;
        if shards == 0 {
            return Err("--shards must be at least 1".into());
        }
        return cmd_batch_sharded(&flags, shards);
    }
    let files = flags.positional();
    if files.is_empty() {
        return Err("missing input files (see `xsdf help`)".into());
    }
    if flags.has("--keep-going") && flags.has("--fail-fast") {
        return Err("--keep-going and --fail-fast are mutually exclusive".into());
    }
    let network = load_network(&flags)?;
    let config = build_config(&flags)?;
    let (limits, deadline) = build_limits(&flags)?;
    let threads: usize = match flags.value("--threads") {
        None => 0,
        Some(n) => n
            .parse()
            .map_err(|_| format!("bad --threads value {n:?}"))?,
    };

    // Ingest with the byte ceiling enforced up front: an oversized or
    // non-UTF-8 file becomes a typed per-document failure in its input
    // slot (never buffered when oversized); a filesystem error is still
    // a whole-run failure.
    let mut slots: Vec<Result<String, XsdfError>> = Vec::with_capacity(files.len());
    for path in &files {
        match ingest_doc(path, &limits) {
            Ok(xml) => slots.push(Ok(xml)),
            Err(IngestError::Doc(e)) => slots.push(Err(e)),
            Err(IngestError::Io(message)) => return Err(message),
        }
    }
    let docs: Vec<&str> = slots.iter().filter_map(|s| s.as_deref().ok()).collect();

    let slow_ms: Option<u64> = match flags.value("--slow-ms") {
        None => None,
        Some(n) => Some(
            n.parse()
                .map_err(|_| format!("bad --slow-ms value {n:?}"))?,
        ),
    };
    let tracing = flags.has("--trace") || flags.has("--trace-jsonl") || slow_ms.is_some();

    // First Ctrl-C stops scheduling (unstarted documents become
    // `cancelled` failures) but metrics/trace outputs are still written;
    // a second Ctrl-C aborts the process immediately.
    signal::install();
    let mut engine = BatchEngine::new(network.get(), config)
        .threads(threads)
        .limits(limits)
        .fail_fast(flags.has("--fail-fast"))
        .cancel_flag(signal::cancel_flag())
        .tracing(tracing);
    let budget = build_cache_budget(&flags)?;
    if budget.is_bounded() {
        engine = engine.cache_budget(budget);
    }
    if let Some(d) = deadline {
        engine = engine.deadline(d);
    }
    let report = engine.run(&docs);

    // Stitch engine results back into input order around the ingest
    // failures, counting the latter into the metrics so the summary,
    // `--metrics` JSON, and shard reports all see them.
    let mut metrics = report.metrics.clone();
    let mut engine_results = report.results.iter();
    let mut failures = 0usize;
    for (path, slot) in files.iter().zip(&slots) {
        let outcome = match slot {
            // invariant: the engine got exactly the Ok slots, in order
            Ok(_) => engine_results
                .next()
                .unwrap()
                .as_ref()
                .map_err(|e| e.clone()),
            Err(e) => {
                metrics.documents += 1;
                metrics.failed_documents += 1;
                metrics.failures.record(e);
                Err(e.clone())
            }
        };
        match outcome {
            Ok(result) => {
                println!(
                    "{path}\tnodes={} targets={} assigned={}",
                    result.reports.len(),
                    result.targets().count(),
                    result.assigned_count()
                );
                if flags.has("--annotate") {
                    println!("{}", result.semantic_tree.to_annotated_xml());
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("{path}: [{}] {e}", e.kind());
            }
        }
    }

    // Shard-child mode (internal, set by the `--shards` parent): ship
    // the metrics to the parent and let *it* classify the run — a child
    // whose whole slice failed must not turn into a whole-run error, or
    // shard count would change the outcome.
    if let Some(path) = flags.value("--shard-out") {
        std::fs::write(path, ShardReport::new(metrics).to_text())
            .map_err(|e| format!("cannot write shard report {path}: {e}"))?;
        return Ok(ExitCode::SUCCESS);
    }

    let m = &metrics;
    if !flags.has("--quiet") {
        print_batch_summary(m);
    }
    if let Some(path) = flags.value("--metrics") {
        std::fs::write(path, m.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(trace) = &report.trace {
        if let Some(path) = flags.value("--trace") {
            std::fs::write(path, trace.to_chrome_trace())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if let Some(path) = flags.value("--trace-jsonl") {
            std::fs::write(path, trace.to_jsonl())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if let Some(ms) = slow_ms {
            // Trace spans index the engine's input (the readable slots).
            let engine_paths: Vec<&str> = files
                .iter()
                .zip(&slots)
                .filter(|(_, slot)| slot.is_ok())
                .map(|(path, _)| *path)
                .collect();
            print_slow_docs(trace, &engine_paths, Duration::from_millis(ms));
        }
    }
    if signal::interrupt_count() > 0 {
        eprintln!(
            "interrupted: {} of {} document(s) cancelled before processing",
            m.failures.cancelled,
            files.len()
        );
        return Ok(ExitCode::from(EXIT_PARTIAL));
    }
    if failures == files.len() {
        return Err(format!("all {failures} document(s) failed"));
    }
    if failures > 0 {
        eprintln!("{failures} of {} document(s) failed", files.len());
        return Ok(ExitCode::from(EXIT_PARTIAL));
    }
    Ok(ExitCode::SUCCESS)
}

/// The one-line batch summary on stderr, shared between the in-process
/// batch and the sharded driver so both render merged metrics the same
/// way.
fn print_batch_summary(m: &MetricsSnapshot) {
    eprintln!(
        "{} docs ({} failed), {} nodes, {} assigned | {} threads, {:.1} ms wall | \
         {:.1} docs/s, {:.0} nodes/s | cache: {} hits / {} misses ({:.1}% hit rate)",
        m.documents,
        m.failed_documents,
        m.nodes,
        m.assigned,
        m.threads,
        m.wall_clock.as_secs_f64() * 1e3,
        m.docs_per_sec(),
        m.nodes_per_sec(),
        m.cache_hits,
        m.cache_misses,
        m.cache_hit_rate() * 100.0
    );
}

/// The batch flags a shard child inherits: every flag (with its value)
/// except the file positionals, `--shards` itself, and the outputs the
/// parent owns (`--metrics`); `--quiet` is dropped here and re-added
/// unconditionally so children never print their own summaries.
fn shard_passthrough(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with("--") {
            // Keep in sync with the boolean-flag list in
            // `Flags::positional`.
            let boolean = matches!(
                a.as_str(),
                "--structure-only"
                    | "--quiet"
                    | "--annotate"
                    | "--keep-going"
                    | "--fail-fast"
                    | "--soak"
            );
            let drop = matches!(a.as_str(), "--shards" | "--metrics" | "--quiet");
            if !drop {
                out.push(a.clone());
            }
            if !boolean {
                if let Some(value) = args.get(i + 1) {
                    if !drop {
                        out.push(value.clone());
                    }
                }
                i += 1;
            }
        }
        i += 1;
    }
    out
}

/// `xsdf batch --shards N`: the multi-process scale-out driver.
///
/// The inputs are split into N contiguous, balanced slices in input
/// order; one child `xsdf batch` process runs per slice with the same
/// flags (plus `--quiet --shard-out <tmp>`), and the parent replays each
/// child's captured stdout/stderr in shard order — so the concatenated
/// per-document output is byte-identical for every shard count. Child
/// metrics travel back as [`ShardReport`]s and merge element-wise
/// (histograms included) via the same deterministic merge the in-process
/// executor uses across threads; the parent then overwrites the merged
/// wall clock with its own end-to-end measurement and classifies the
/// run exactly like a single process would.
fn cmd_batch_sharded(flags: &Flags, shards: usize) -> Result<ExitCode, String> {
    let files = flags.positional();
    if files.is_empty() {
        return Err("missing input files (see `xsdf help`)".into());
    }
    for banned in ["--trace", "--trace-jsonl", "--slow-ms"] {
        if flags.has(banned) {
            return Err(format!(
                "{banned} cannot be combined with --shards \
                 (per-document traces do not merge across processes)"
            ));
        }
    }
    if flags.has("--fail-fast") {
        return Err("--fail-fast cannot be combined with --shards \
                    (cross-process cancellation would make the outcome depend on shard count)"
            .into());
    }
    if flags.has("--shard-out") {
        return Err("--shard-out is internal to the shard driver".into());
    }
    let shards = shards.min(files.len());
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate the xsdf binary: {e}"))?;
    let passthrough = shard_passthrough(flags.args);
    let started = Instant::now();

    // Contiguous balanced partition, earlier slices one longer when the
    // division is uneven: input order is preserved end to end.
    let base = files.len() / shards;
    let extra = files.len() % shards;
    let mut children = Vec::new();
    let mut next = 0usize;
    for shard in 0..shards {
        let take = base + usize::from(shard < extra);
        let slice = &files[next..next + take];
        next += take;
        let report_path =
            std::env::temp_dir().join(format!("xsdf-shard-{}-{shard}.report", std::process::id()));
        let child = std::process::Command::new(&exe)
            .arg("batch")
            .args(&passthrough)
            .arg("--quiet")
            .arg("--shard-out")
            .arg(&report_path)
            .args(slice.iter())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| format!("cannot spawn shard {shard}: {e}"))?;
        children.push((report_path, child));
    }

    // Collect in shard order: each child's streams replay whole and in
    // input order, so the interleaving matches a single-process run.
    let mut reports: Vec<ShardReport> = Vec::new();
    let mut shard_errors: Vec<String> = Vec::new();
    for (shard, (report_path, child)) in children.into_iter().enumerate() {
        let output = child
            .wait_with_output()
            .map_err(|e| format!("cannot wait for shard {shard}: {e}"))?;
        {
            use std::io::Write as _;
            std::io::stdout().write_all(&output.stdout).ok();
            std::io::stderr().write_all(&output.stderr).ok();
        }
        let text = std::fs::read_to_string(&report_path);
        std::fs::remove_file(&report_path).ok();
        if !output.status.success() {
            shard_errors.push(format!("shard {shard} failed ({})", output.status));
            continue;
        }
        match text {
            Ok(text) => match ShardReport::from_text(&text) {
                Ok(report) => reports.push(report),
                Err(e) => shard_errors.push(format!("shard {shard}: {e}")),
            },
            Err(e) => shard_errors.push(format!("shard {shard} wrote no report: {e}")),
        }
    }
    if !shard_errors.is_empty() {
        return Err(shard_errors.join("; "));
    }
    // invariant: shards >= 1 and every shard either reported or errored
    let mut merged = ShardReport::merge_all(&reports).unwrap();
    // The merged wall clock is the max over shards (they overlap); the
    // parent's own measurement is the true end-to-end elapsed time.
    merged.wall_clock = started.elapsed();

    if !flags.has("--quiet") {
        print_batch_summary(&merged);
    }
    if let Some(path) = flags.value("--metrics") {
        std::fs::write(path, merged.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    let failures = merged.failed_documents;
    if failures == files.len() {
        return Err(format!("all {failures} document(s) failed"));
    }
    if failures > 0 {
        eprintln!("{failures} of {} document(s) failed", files.len());
        return Ok(ExitCode::from(EXIT_PARTIAL));
    }
    Ok(ExitCode::SUCCESS)
}

/// `xsdf gen-corpus --out <dir>`: materializes a slice of the streaming
/// evaluation corpus as XML files — one file per stream position, named
/// `doc-<position>.xml` so shell glob order equals stream order. The
/// stream is generated lazily (one document in memory at a time), so
/// `--count 1000000` works in constant memory; `--start` resumes
/// mid-stream for incremental or sharded materialization.
fn cmd_gen_corpus(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags { args };
    fn parsed<T: std::str::FromStr>(flags: &Flags, name: &str) -> Result<Option<T>, String> {
        match flags.value(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad {name} value {v:?}")),
        }
    }
    let out = flags.value("--out").ok_or("missing --out <dir>")?;
    let count: u64 = parsed(&flags, "--count")?.unwrap_or(100);
    let seed: u64 = parsed(&flags, "--seed")?.unwrap_or(42);
    let start: u64 = parsed(&flags, "--start")?.unwrap_or(0);
    std::fs::create_dir_all(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let sn = semnet::mini_wordnet();
    let mut bytes_total = 0u64;
    for pos in start..start.saturating_add(count) {
        let doc = corpus::stream::document_at(sn, seed, pos);
        let xml = xmltree::serialize::to_string_compact(&doc.doc);
        let path = std::path::Path::new(out).join(format!("doc-{pos:08}.xml"));
        std::fs::write(&path, &xml).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        bytes_total += xml.len() as u64;
    }
    eprintln!(
        "wrote {count} document(s) ({bytes_total} bytes) to {out} \
         (seed {seed}, positions {start}..{})",
        start.saturating_add(count)
    );
    Ok(ExitCode::SUCCESS)
}

/// Reports every document at or over the slow threshold on stderr:
/// the file, its end-to-end time, the per-stage breakdown, and the
/// concepts whose cache misses cost it most.
fn print_slow_docs(trace: &runtime::Trace, files: &[&str], threshold: Duration) {
    let slow = trace.slow_docs(threshold);
    if slow.is_empty() {
        eprintln!(
            "no documents at or over {:.1} ms",
            threshold.as_secs_f64() * 1e3
        );
        return;
    }
    // The formatter is shared with `xsdf serve --slow-ms`, so batch and
    // server reports stay byte-identical per span.
    eprintln!("{}", report::slow_header(slow.len(), threshold));
    for span in slow {
        let path = files.get(span.doc).copied().unwrap_or("?");
        eprint!("{}", report::slow_span_report(path, span));
    }
}

fn cmd_ambiguity(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags { args };
    let (path, xml) = read_doc(&flags, &ResourceLimits::unlimited())?;
    let network = load_network(&flags)?;
    let sn = network.get();
    let doc = xmltree::parse(&xml).map_err(|e| format!("{path}: {e}"))?;
    let framework = Xsdf::new(sn, XsdfConfig::default());
    let tree = framework.build_tree(&doc);
    println!("{:>8}  {:>7}  {:>5}  label", "Amb_Deg", "senses", "depth");
    let mut rows: Vec<(f64, usize, u32, String)> = tree
        .preorder()
        .map(|n| {
            let degree =
                xsdf::ambiguity::ambiguity_degree(sn, &tree, n, xsdf::AmbiguityWeights::equal());
            let senses = sn
                .senses_normalized(tree.label(n), lingproc::porter_stem)
                .len();
            (degree, senses, tree.depth(n), tree.label(n).to_string())
        })
        .collect();
    rows.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (degree, senses, depth, label) in rows {
        println!("{degree:>8.4}  {senses:>7}  {depth:>5}  {label}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_network(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags { args };
    let network = load_network(&flags)?;
    let sn = network.get();
    if let Some(path) = flags.value("--export") {
        std::fs::write(path, semnet::format::to_text(sn))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("exported {} concepts to {path}", sn.len());
        return Ok(ExitCode::SUCCESS);
    }
    println!("concepts:       {}", sn.len());
    println!("vocabulary:     {}", sn.vocabulary_size());
    println!("typed edges:    {}", sn.all_edges().count());
    println!("max depth:      {}", sn.max_depth());
    println!("max polysemy:   {}", sn.max_polysemy());
    println!("total frequency:{}", sn.total_frequency());
    Ok(ExitCode::SUCCESS)
}

/// `xsdf compile-network [<network>] [--wndb <dir>] --out <file>`:
/// builds a network from a text export, a WNDB directory, or the builtin
/// MiniWordNet, forces its scoring artifacts, and writes the compiled
/// snapshot the `--network` flag can then cold-start from.
fn cmd_compile_network(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags { args };
    let out_path = flags.value("--out").ok_or("missing --out <file>")?;
    let inputs = flags.positional();
    let sn = match (flags.value("--wndb"), inputs.first()) {
        (Some(_), Some(_)) => {
            return Err("pass either a network file or --wndb <dir>, not both".into())
        }
        (Some(dir), None) => {
            let mut importer = semnet::wndb::WndbImporter::new();
            for (name, pos) in [
                ("data.noun", semnet::PartOfSpeech::Noun),
                ("data.verb", semnet::PartOfSpeech::Verb),
                ("data.adj", semnet::PartOfSpeech::Adjective),
                ("data.adv", semnet::PartOfSpeech::Adverb),
            ] {
                let path = std::path::Path::new(dir).join(name);
                if !path.exists() {
                    continue;
                }
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                importer
                    .add_data(&text, pos)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                eprintln!("{}: {} synsets so far", path.display(), importer.len());
            }
            if importer.is_empty() {
                return Err(format!("no data.{{noun,verb,adj,adv}} files under {dir:?}"));
            }
            importer.build().map_err(|e| e.to_string())?
        }
        (None, Some(path)) => load_network_path(path)?,
        (None, None) => semnet::mini_wordnet().clone(),
    };
    // Force the artifact build now so the snapshot carries it and loads
    // never recompute it.
    let art = sn.gloss_artifacts();
    let vocab = art.vocab_len();
    let (bytes, layout) = semnet::snapshot::encode_with_layout(&sn);
    std::fs::write(out_path, &bytes).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!(
        "compiled {} concepts, {} edges, {} interned tokens into {out_path} ({} bytes, {} sections)",
        sn.len(),
        sn.all_edges().count(),
        vocab,
        bytes.len(),
        layout.len() - 1, // the final entry marks the end, not a section
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_import_wndb(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags { args };
    let inputs = flags.positional();
    if inputs.is_empty() {
        return Err("missing WNDB data files (e.g. data.noun)".into());
    }
    let out_path = flags.value("--out").ok_or("missing --out <file>")?;
    let mut importer = semnet::wndb::WndbImporter::new();
    for path in inputs {
        // Infer the part of speech from the file name suffix.
        let pos = if path.ends_with("noun") {
            semnet::PartOfSpeech::Noun
        } else if path.ends_with("verb") {
            semnet::PartOfSpeech::Verb
        } else if path.ends_with("adj") {
            semnet::PartOfSpeech::Adjective
        } else if path.ends_with("adv") {
            semnet::PartOfSpeech::Adverb
        } else {
            return Err(format!("cannot infer part of speech from {path:?}"));
        };
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        importer
            .add_data(&text, pos)
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("{path}: {} synsets so far", importer.len());
    }
    let sn = importer.build().map_err(|e| e.to_string())?;
    std::fs::write(out_path, semnet::format::to_text(&sn))
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!("wrote {} concepts to {out_path}", sn.len());
    Ok(ExitCode::SUCCESS)
}

/// Parses the shared `--cache-entries` / `--cache-bytes` budget flags
/// (0 = unbounded, the historical behavior).
fn build_cache_budget(flags: &Flags) -> Result<CacheBudget, String> {
    fn parsed(flags: &Flags, name: &str) -> Result<usize, String> {
        match flags.value(name) {
            None => Ok(0),
            Some(v) => v.parse().map_err(|_| format!("bad {name} value {v:?}")),
        }
    }
    Ok(CacheBudget {
        max_entries: parsed(flags, "--cache-entries")?,
        max_bytes: parsed(flags, "--cache-bytes")?,
    })
}

/// Parses the serve/bench flags shared with [`ServerConfig`].
fn build_server_config(flags: &Flags) -> Result<ServerConfig, String> {
    fn parsed<T: std::str::FromStr>(flags: &Flags, name: &str) -> Result<Option<T>, String> {
        match flags.value(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad {name} value {v:?}")),
        }
    }
    let base = build_config(flags)?;
    let (limits, deadline) = build_limits(flags)?;
    let mut config = ServerConfig {
        base,
        limits,
        deadline,
        ..ServerConfig::default()
    };
    if let Some(addr) = flags.value("--addr") {
        config.addr = addr.to_string();
    }
    if let Some(workers) = parsed(flags, "--threads")? {
        config.workers = workers;
    }
    if let Some(queue) = parsed(flags, "--queue")? {
        config.queue = queue;
    }
    if let Some(max) = parsed(flags, "--max-connections")? {
        config.max_connections = max;
    }
    // Mirror the engine's byte ceiling to the HTTP layer, so oversized
    // uploads are refused from the Content-Length alone (413 before the
    // body is read) instead of after buffering.
    config.max_body = parsed(flags, "--max-bytes")?;
    config.slow = parsed(flags, "--slow-ms")?.map(Duration::from_millis);
    config.cache_budget = build_cache_budget(flags)?;
    if let Some(soft) = parsed(flags, "--mem-soft")? {
        config.mem_soft = soft;
    }
    if let Some(hard) = parsed(flags, "--mem-hard")? {
        config.mem_hard = hard;
    }
    Ok(config)
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags { args };
    let network = load_network(&flags)?;
    let config = build_server_config(&flags)?;
    let bind_addr = config.addr.clone();

    signal::install();
    let server =
        Server::bind(network.get(), config).map_err(|e| format!("cannot bind {bind_addr}: {e}"))?;
    let handle = server.handle();
    eprintln!(
        "listening on {} ({} workers, queue {})",
        server.local_addr(),
        server.workers(),
        server.queue_capacity()
    );

    let summary = std::thread::scope(|s| {
        // Ctrl-C watcher: `signal()` installs with SA_RESTART semantics,
        // so the blocking accept loop won't see an EINTR — a sidecar
        // thread turns the first SIGINT into an orderly drain instead.
        s.spawn(|| loop {
            if signal::interrupt_count() > 0 {
                handle.shutdown();
                break;
            }
            if handle.is_stopped() {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
        server.run()
    });

    if let Some(path) = flags.value("--metrics") {
        std::fs::write(path, &summary.metrics_json)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    eprintln!(
        "drained: {} document(s) ({} failed), {} response(s) over {} connection(s)",
        summary.documents, summary.failed, summary.responses, summary.connections
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_bench_serve(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags { args };
    fn parsed<T: std::str::FromStr>(flags: &Flags, name: &str) -> Result<Option<T>, String> {
        match flags.value(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad {name} value {v:?}")),
        }
    }
    let quick = std::env::var_os("XSDF_BENCH_QUICK").is_some();
    if flags.has("--soak") {
        return cmd_soak(&flags, quick);
    }
    let (default_warmup_ms, default_duration_ms) = if quick { (300, 700) } else { (3000, 10_000) };
    let mut bench = BenchConfig {
        addr: String::new(),
        connections: parsed(&flags, "--connections")?.unwrap_or(2),
        warmup: Duration::from_millis(parsed(&flags, "--warmup-ms")?.unwrap_or(default_warmup_ms)),
        duration: Duration::from_millis(
            parsed(&flags, "--duration-ms")?.unwrap_or(default_duration_ms),
        ),
        query: flags.value("--query").unwrap_or("").to_string(),
    };
    let mode = if quick { "quick" } else { "full" };

    let report = match flags.value("--addr") {
        Some(addr) => {
            bench.addr = addr.to_string();
            run_bench(&bench)?
        }
        None => {
            // Self-hosted: spin up an in-process server on a free port,
            // bench it, drain it.
            let network = load_network(&flags)?;
            let mut server_config = build_server_config(&flags)?;
            server_config.addr = "127.0.0.1:0".to_string();
            let server = Server::bind(network.get(), server_config)
                .map_err(|e| format!("cannot bind self-hosted server: {e}"))?;
            bench.addr = server.local_addr().to_string();
            eprintln!(
                "self-hosted server on {} ({} workers)",
                bench.addr,
                server.workers()
            );
            let handle = server.handle();
            let mut outcome = Err("bench did not run".to_string());
            std::thread::scope(|s| {
                let serving = s.spawn(|| server.run());
                outcome = run_bench(&bench);
                handle.shutdown();
                let _ = serving.join();
            });
            outcome?
        }
    };

    eprintln!(
        "bench-serve: {} connections, {} warmup + {} measured requests, {} errors",
        report.connections, report.warmup_requests, report.requests, report.errors
    );
    eprintln!(
        "  sustained {:.1} docs/s | p50 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
        report.docs_per_sec(),
        report.latency.p50().as_secs_f64() * 1e3,
        report.latency.p99().as_secs_f64() * 1e3,
        report.latency.max().as_secs_f64() * 1e3,
    );
    let json = report.to_json(mode);
    let out = flags.value("--out").unwrap_or("BENCH_serve.json");
    std::fs::write(out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("wrote {out}");
    print!("{json}");
    Ok(ExitCode::SUCCESS)
}

/// `xsdf bench-serve --soak`: fixed request count over a streaming
/// corpus with a `/metrics` gauge sampler, written as `BENCH_soak.json`.
fn cmd_soak(flags: &Flags, quick: bool) -> Result<ExitCode, String> {
    fn parsed<T: std::str::FromStr>(flags: &Flags, name: &str) -> Result<Option<T>, String> {
        match flags.value(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad {name} value {v:?}")),
        }
    }
    let (default_requests, default_sample_ms) = if quick { (300, 100) } else { (5000, 500) };
    let mut soak = SoakConfig {
        addr: String::new(),
        connections: parsed(flags, "--connections")?.unwrap_or(2),
        requests: parsed(flags, "--requests")?.unwrap_or(default_requests),
        sample_every: Duration::from_millis(
            parsed(flags, "--sample-ms")?.unwrap_or(default_sample_ms),
        ),
        query: flags.value("--query").unwrap_or("").to_string(),
        rss_self: false,
    };
    let mode = if quick { "quick" } else { "full" };
    // The budget echoed into the artifact: for a self-hosted run these
    // same flags configure the server, so the echo is authoritative; for
    // --addr the caller passes the budget the remote server runs with.
    let budget = build_cache_budget(flags)?;

    let report = match flags.value("--addr") {
        Some(addr) => {
            soak.addr = addr.to_string();
            run_soak(&soak, budget)?
        }
        None => {
            let network = load_network(flags)?;
            let mut server_config = build_server_config(flags)?;
            server_config.addr = "127.0.0.1:0".to_string();
            let server = Server::bind(network.get(), server_config)
                .map_err(|e| format!("cannot bind self-hosted server: {e}"))?;
            soak.addr = server.local_addr().to_string();
            // The server lives in this process, so VmRSS is its RSS too.
            soak.rss_self = true;
            eprintln!(
                "self-hosted server on {} ({} workers, cache budget: {} entries / {} bytes)",
                soak.addr,
                server.workers(),
                budget.max_entries,
                budget.max_bytes
            );
            let handle = server.handle();
            let mut outcome = Err("soak did not run".to_string());
            std::thread::scope(|s| {
                let serving = s.spawn(|| server.run());
                outcome = run_soak(&soak, budget);
                handle.shutdown();
                let _ = serving.join();
            });
            outcome?
        }
    };

    eprintln!(
        "soak: {} connections, {} ok / {} errors ({} sheds, {} retries), {} samples",
        report.connections,
        report.requests,
        report.errors,
        report.sheds,
        report.retries,
        report.samples.len()
    );
    eprintln!(
        "  {:.1} docs/s | p50 {:.3} ms  p99 {:.3} ms | cache_bytes max {} (budget {})",
        report.docs_per_sec(),
        report.latency.p50().as_secs_f64() * 1e3,
        report.latency.p99().as_secs_f64() * 1e3,
        report.cache_bytes_max(),
        report.budget.max_bytes,
    );
    let json = report.to_json(mode);
    let out = flags.value("--out").unwrap_or("BENCH_soak.json");
    std::fs::write(out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("wrote {out}");
    print!("{json}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_senses(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags { args };
    let positional = flags.positional();
    let word = positional
        .first()
        .ok_or_else(|| "missing word".to_string())?;
    let network = load_network(&flags)?;
    let sn = network.get();
    let senses = sn.senses_normalized(word, lingproc::porter_stem);
    if senses.is_empty() {
        println!("{word}: no senses in the network");
        return Ok(ExitCode::SUCCESS);
    }
    println!("{word}: {} sense(s)", senses.len());
    for &c in senses {
        let concept = sn.concept(c);
        println!(
            "  {:24} freq {:>4}  [{}]  {}",
            concept.key,
            concept.frequency,
            concept.lemmas.join(", "),
            concept.gloss
        );
    }
    Ok(ExitCode::SUCCESS)
}
