//! The slow-document report: one shared formatter so `xsdf batch
//! --slow-ms` and `xsdf serve --slow-ms` emit byte-identical breakdowns
//! and operators can grep one format across both modes.

use std::fmt::Write as _;
use std::time::Duration;

use runtime::DocSpan;

/// Formats one slow document exactly as the batch CLI reports it: the
/// label, the end-to-end time with byte/node/cache context, a per-stage
/// breakdown, and the concepts whose cache misses cost it most. The
/// result is multi-line and ends with a newline.
pub fn slow_span_report(label: &str, span: &DocSpan) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {label}: {:.2} ms total ({}, {} bytes, {} nodes, {} sense pairs, \
         cache {} hits / {} misses)",
        span.duration().as_secs_f64() * 1e3,
        span.outcome,
        span.bytes,
        span.nodes,
        span.sense_pairs,
        span.cache_hits,
        span.cache_misses,
    );
    for (name, stage) in span.stages() {
        let _ = writeln!(
            out,
            "    {name:13} {:>9.2} ms",
            stage.duration.as_secs_f64() * 1e3
        );
    }
    if !span.top_miss_concepts.is_empty() {
        let list: Vec<String> = span
            .top_miss_concepts
            .iter()
            .map(|(key, n)| format!("{key} ({n})"))
            .collect();
        let _ = writeln!(out, "    top cache-miss concepts: {}", list.join(", "));
    }
    out
}

/// The header line above a group of slow-document reports.
pub fn slow_header(count: usize, threshold: Duration) -> String {
    format!(
        "{count} slow document(s) (>= {:.1} ms):",
        threshold.as_secs_f64() * 1e3
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::StageSpan;

    #[test]
    fn report_has_stage_breakdown_and_miss_concepts() {
        let start = Duration::from_micros(100);
        let span = DocSpan {
            doc: 0,
            worker: 0,
            start,
            end: start + Duration::from_millis(7),
            bytes: 64,
            outcome: "ok",
            error: None,
            nodes: 5,
            targets: 2,
            assigned: 2,
            sense_pairs: 9,
            cache_hits: 3,
            cache_misses: 4,
            stages: [
                Some(StageSpan {
                    start,
                    duration: Duration::from_millis(1),
                }),
                None,
                None,
                Some(StageSpan {
                    start: start + Duration::from_millis(1),
                    duration: Duration::from_millis(6),
                }),
            ],
            top_miss_concepts: vec![("star.performer".into(), 4)],
        };
        let report = slow_span_report("req-7", &span);
        assert!(report.starts_with("  req-7: 7.00 ms total (ok, 64 bytes, 5 nodes"));
        assert!(report.contains("parse"));
        assert!(report.contains("disambiguate"));
        assert!(!report.contains("select"), "skipped stages are absent");
        assert!(report.contains("top cache-miss concepts: star.performer (4)"));
        assert!(report.ends_with('\n'));
        assert_eq!(
            slow_header(2, Duration::from_millis(25)),
            "2 slow document(s) (>= 25.0 ms):"
        );
    }
}
