//! A minimal HTTP/1.1 layer over blocking [`TcpStream`]s — just enough
//! protocol for a loopback control plane, with the ceilings a resident
//! service needs (header and body size limits, read deadlines) enforced
//! *before* memory is committed.
//!
//! The distinctive piece is the quantum-sliced read loop: instead of one
//! long blocking `read`, [`Conn::read_request`] waits in short
//! `SO_RCVTIMEO` quanta and re-checks an `idle_abort` predicate between
//! them. That is what lets a draining server wake its idle keep-alive
//! connections within ~100 ms without an async runtime, signals, or
//! platform-specific polling.
//!
//! Scope (deliberate): `Content-Length` bodies only (`Transfer-Encoding`
//! is answered with 501), no multiline headers, no TLS. Requests whose
//! first byte has arrived are always read to completion — draining only
//! aborts waits for a *next* request.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard ceiling on a request's head (request line + headers).
pub const DEFAULT_MAX_HEADER_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Decoded path without the query string (e.g. `/disambiguate`).
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, values trimmed, in order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection must close after the response
    /// (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub close: bool,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_get(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps onto one canonical
/// HTTP status (see [`HttpError::status`]).
#[derive(Debug)]
pub enum HttpError {
    /// The bytes are not a parseable HTTP/1.x request → 400.
    Malformed(String),
    /// The head outgrew the configured ceiling → 431.
    HeadersTooLarge(usize),
    /// A body-bearing method arrived without `Content-Length` → 411.
    LengthRequired,
    /// `Transfer-Encoding` is out of scope for this server → 501.
    UnsupportedTransfer,
    /// `Content-Length` exceeds the configured body ceiling → 413.
    /// Detected from the declared length, before reading the body.
    BodyTooLarge {
        /// The configured ceiling in bytes.
        limit: usize,
        /// The declared `Content-Length`.
        actual: usize,
    },
    /// A started request stalled past the read deadline → 408.
    Timeout,
    /// The socket failed; no response is possible.
    Io(io::Error),
}

impl HttpError {
    /// The HTTP status this error answers with (0 for [`HttpError::Io`],
    /// where no response can be written).
    pub fn status(&self) -> u16 {
        match self {
            Self::Malformed(_) => 400,
            Self::HeadersTooLarge(_) => 431,
            Self::LengthRequired => 411,
            Self::UnsupportedTransfer => 501,
            Self::BodyTooLarge { .. } => 413,
            Self::Timeout => 408,
            Self::Io(_) => 0,
        }
    }

    /// Human-readable detail for the error response body.
    pub fn message(&self) -> String {
        match self {
            Self::Malformed(detail) => format!("malformed request: {detail}"),
            Self::HeadersTooLarge(limit) => {
                format!("request head exceeds {limit} bytes")
            }
            Self::LengthRequired => "Content-Length required".to_string(),
            Self::UnsupportedTransfer => {
                "Transfer-Encoding is not supported; send Content-Length".to_string()
            }
            Self::BodyTooLarge { limit, actual } => {
                format!("body of {actual} bytes exceeds the {limit} byte limit")
            }
            Self::Timeout => "timed out reading the request".to_string(),
            Self::Io(e) => format!("i/o error: {e}"),
        }
    }
}

/// How patiently [`Conn::read_request`] waits, and how much it accepts.
pub struct ReadOpts<'a> {
    /// Maximum wait for the *first* byte of the next request before the
    /// connection is considered idle and closed (`Ok(None)`).
    pub idle_timeout: Duration,
    /// Maximum wall-clock to finish reading a request once its first byte
    /// has arrived.
    pub read_timeout: Duration,
    /// Poll slice: the longest the reader blocks before re-checking
    /// `idle_abort` and the deadlines.
    pub quantum: Duration,
    /// Ceiling on the request head (line + headers).
    pub max_header_bytes: usize,
    /// Ceiling on the declared `Content-Length`, if any.
    pub max_body_bytes: Option<usize>,
    /// Checked between quanta while waiting for a request's first byte;
    /// returning `true` closes the idle connection (`Ok(None)`). This is
    /// the drain hook.
    pub idle_abort: Option<&'a (dyn Fn() -> bool + 'a)>,
}

impl Default for ReadOpts<'_> {
    fn default() -> Self {
        Self {
            idle_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(10),
            quantum: Duration::from_millis(100),
            max_header_bytes: DEFAULT_MAX_HEADER_BYTES,
            max_body_bytes: None,
            idle_abort: None,
        }
    }
}

/// One outcome of pulling bytes off the socket.
enum Fill {
    /// At least one byte arrived.
    Data,
    /// Orderly remote close.
    Eof,
    /// The read quantum elapsed with nothing to read.
    Quantum,
}

/// A server-side connection: the stream plus the carry-over buffer that
/// keeps pipelined bytes between requests.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    /// Wraps an accepted stream.
    pub fn new(stream: TcpStream) -> Self {
        // Small request/response exchanges on loopback: never Nagle.
        stream.set_nodelay(true).ok();
        Self {
            stream,
            buf: Vec::new(),
        }
    }

    /// Pulls more bytes into the buffer, waiting at most `quantum`.
    fn fill(&mut self, quantum: Duration) -> Result<Fill, HttpError> {
        self.stream
            .set_read_timeout(Some(quantum.max(Duration::from_millis(1))))
            .map_err(HttpError::Io)?;
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(Fill::Eof),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(Fill::Data)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(Fill::Quantum)
            }
            Err(e) => Err(HttpError::Io(e)),
        }
    }

    /// Reads the next request. `Ok(None)` means the connection ended
    /// quietly: remote close between requests, idle timeout, or an
    /// `idle_abort` (drain) — nothing to respond to.
    pub fn read_request(&mut self, opts: &ReadOpts) -> Result<Option<Request>, HttpError> {
        let started = Instant::now();
        // Carried-over pipelined bytes count as a started request.
        let mut first_byte: Option<Instant> = (!self.buf.is_empty()).then(Instant::now);

        // Phase 1: accumulate the head.
        let head_end = loop {
            if let Some(end) = find_subslice(&self.buf, b"\r\n\r\n") {
                break end;
            }
            if self.buf.len() > opts.max_header_bytes {
                return Err(HttpError::HeadersTooLarge(opts.max_header_bytes));
            }
            match self.fill(opts.quantum)? {
                Fill::Data => {
                    first_byte.get_or_insert_with(Instant::now);
                }
                Fill::Eof => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(HttpError::Malformed("connection closed mid-head".into()))
                    };
                }
                Fill::Quantum => match first_byte {
                    None => {
                        if opts.idle_abort.is_some_and(|abort| abort()) {
                            return Ok(None);
                        }
                        if started.elapsed() >= opts.idle_timeout {
                            return Ok(None);
                        }
                    }
                    Some(t0) => {
                        if t0.elapsed() >= opts.read_timeout {
                            return Err(HttpError::Timeout);
                        }
                    }
                },
            }
        };

        let head = String::from_utf8(self.buf[..head_end].to_vec())
            .map_err(|_| HttpError::Malformed("head is not valid UTF-8".into()))?;
        self.buf.drain(..head_end + 4);
        let (method, target, headers, http10) = parse_head(&head)?;

        let mut close = header_value(&headers, "connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false);
        if http10 {
            close = !header_value(&headers, "connection")
                .map(|v| v.eq_ignore_ascii_case("keep-alive"))
                .unwrap_or(false);
        }

        // Phase 2: the body.
        if header_value(&headers, "transfer-encoding").is_some() {
            return Err(HttpError::UnsupportedTransfer);
        }
        let content_length = match header_value(&headers, "content-length") {
            Some(v) => Some(
                v.trim()
                    .parse::<usize>()
                    .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?,
            ),
            None => None,
        };
        let body_len = match content_length {
            Some(n) => n,
            // Body-bearing methods must declare a length; the rest have
            // no body by convention.
            None if method == "POST" || method == "PUT" || method == "PATCH" => {
                return Err(HttpError::LengthRequired);
            }
            None => 0,
        };
        if let Some(limit) = opts.max_body_bytes {
            if body_len > limit {
                return Err(HttpError::BodyTooLarge {
                    limit,
                    actual: body_len,
                });
            }
        }
        if body_len > 0
            && header_value(&headers, "expect")
                .is_some_and(|v| v.to_ascii_lowercase().contains("100-continue"))
        {
            self.stream
                .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
                .map_err(HttpError::Io)?;
        }
        let body_started = Instant::now();
        while self.buf.len() < body_len {
            match self.fill(opts.quantum)? {
                Fill::Data => {}
                Fill::Eof => {
                    return Err(HttpError::Malformed("connection closed mid-body".into()));
                }
                Fill::Quantum => {
                    if body_started.elapsed() >= opts.read_timeout {
                        return Err(HttpError::Timeout);
                    }
                }
            }
        }
        let body: Vec<u8> = self.buf.drain(..body_len).collect();

        let (path, query) = split_target(&target);
        Ok(Some(Request {
            method,
            path,
            query,
            headers,
            body,
            close,
        }))
    }

    /// Writes a full response. The writer owns `Content-Length` and
    /// `Connection`; callers must not set either.
    pub fn write_response(&mut self, resp: &Response) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\n",
            resp.status,
            reason_phrase(resp.status)
        );
        for (name, value) in &resp.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", resp.body.len()));
        head.push_str(if resp.close {
            "Connection: close\r\n"
        } else {
            "Connection: keep-alive\r\n"
        });
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(&resp.body)?;
        self.stream.flush()
    }
}

/// One response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (never `Content-Length`/`Connection` — the writer
    /// owns those).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Whether to close the connection after this response.
    pub close: bool,
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: u16) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: Vec::new(),
            close: false,
        }
    }

    /// Adds a header.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Sets the body and its content type.
    pub fn body(mut self, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        self.headers
            .push(("Content-Type".to_string(), content_type.to_string()));
        self.body = body.into();
        self
    }

    /// A JSON response (body should already be serialized).
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self::new(status).body("application/json", body)
    }

    /// Marks the connection for close after this response.
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }
}

/// The canonical reason phrase for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Parses the head block (request line + headers, no trailing CRLFCRLF)
/// into `(method, target, headers, is_http10)`.
#[allow(clippy::type_complexity)]
fn parse_head(head: &str) -> Result<(String, String, Vec<(String, String)>, bool), HttpError> {
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    };
    if parts.next().is_some() || method.is_empty() || target.is_empty() {
        return Err(HttpError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    }
    let http10 = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        other => {
            return Err(HttpError::Malformed(format!(
                "unsupported version {other:?}"
            )));
        }
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), target.to_string(), headers, http10))
}

/// First value of a (lowercase) header name.
fn header_value<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Splits a request target into a decoded path and query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (percent_decode(target, false), Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|pair| !pair.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
                    None => (percent_decode(pair, true), String::new()),
                })
                .collect();
            (percent_decode(path, false), pairs)
        }
    }
}

/// Percent-decoding; in query components `+` also decodes to space.
/// Invalid escapes pass through literally (this is a loopback control
/// plane, not a hardened edge).
fn percent_decode(s: &str, in_query: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if in_query => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// First index of `needle` in `haystack`.
fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

// ---------------------------------------------------------------------
// Client side: just enough to drive the server from the load generator
// and the protocol tests.
// ---------------------------------------------------------------------

/// One response as seen by the minimal client.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Whether the server asked to close the connection.
    pub close: bool,
}

impl ClientResponse {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_value(&self.headers, name)
    }
}

/// Sends one request and reads the full response on a keep-alive
/// connection. `carry` holds the client-side read buffer across calls on
/// the same stream.
pub fn client_roundtrip(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<ClientResponse> {
    let mut head = format!("{method} {target} HTTP/1.1\r\nHost: xsdf\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if !body.is_empty() || method == "POST" {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    read_client_response(stream, carry)
}

/// Reads one response off the stream (headers then a `Content-Length`
/// body). Interim `100 Continue` responses are skipped.
pub fn read_client_response(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
) -> io::Result<ClientResponse> {
    loop {
        let head_end = loop {
            if let Some(end) = find_subslice(carry, b"\r\n\r\n") {
                break end;
            }
            let mut chunk = [0u8; 4096];
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            carry.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&carry[..head_end]).into_owned();
        carry.drain(..head_end + 4);
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        if status == 100 {
            continue; // interim response; the real one follows
        }
        let headers: Vec<(String, String)> = lines
            .filter_map(|line| line.split_once(':'))
            .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        let body_len: usize = header_value(&headers, "content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        while carry.len() < body_len {
            let mut chunk = [0u8; 4096];
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            carry.extend_from_slice(&chunk[..n]);
        }
        let body: Vec<u8> = carry.drain(..body_len).collect();
        let close = header_value(&headers, "connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false);
        return Ok(ClientResponse {
            status,
            headers,
            body,
            close,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_parses_method_target_version_and_headers() {
        let (method, target, headers, http10) = parse_head(
            "POST /disambiguate?radius=2 HTTP/1.1\r\nHost: x\r\nContent-Type: application/xml",
        )
        .unwrap();
        assert_eq!(method, "POST");
        assert_eq!(target, "/disambiguate?radius=2");
        assert!(!http10);
        assert_eq!(
            headers,
            vec![
                ("host".to_string(), "x".to_string()),
                ("content-type".to_string(), "application/xml".to_string()),
            ]
        );
    }

    #[test]
    fn malformed_heads_are_rejected() {
        for head in [
            "",
            "GET",
            "GET /x",
            "GET /x HTTP/2.0",
            "GET /x HTTP/1.1 extra",
            "GET /x HTTP/1.1\r\nno-colon-here",
            "GET /x HTTP/1.1\r\nbad name: v",
        ] {
            let err = parse_head(head).unwrap_err();
            assert_eq!(err.status(), 400, "{head:?} should be malformed");
        }
    }

    #[test]
    fn http10_is_accepted_and_marked() {
        let (.., http10) = parse_head("GET / HTTP/1.0").unwrap();
        assert!(http10);
    }

    #[test]
    fn target_splits_and_decodes() {
        let (path, query) = split_target("/disambiguate?radius=3&process=concept&x=a%20b+c");
        assert_eq!(path, "/disambiguate");
        assert_eq!(
            query,
            vec![
                ("radius".to_string(), "3".to_string()),
                ("process".to_string(), "concept".to_string()),
                ("x".to_string(), "a b c".to_string()),
            ]
        );
        let (path, query) = split_target("/metrics");
        assert_eq!(path, "/metrics");
        assert!(query.is_empty());
    }

    #[test]
    fn percent_decoding_tolerates_bad_escapes() {
        assert_eq!(percent_decode("a%2Fb", false), "a/b");
        assert_eq!(percent_decode("100%", false), "100%");
        assert_eq!(percent_decode("%zz", false), "%zz");
        // `+` is a space only in query components.
        assert_eq!(percent_decode("a+b", false), "a+b");
        assert_eq!(percent_decode("a+b", true), "a b");
    }

    #[test]
    fn error_statuses_are_stable() {
        assert_eq!(HttpError::Malformed("x".into()).status(), 400);
        assert_eq!(HttpError::HeadersTooLarge(16).status(), 431);
        assert_eq!(HttpError::LengthRequired.status(), 411);
        assert_eq!(HttpError::UnsupportedTransfer.status(), 501);
        assert_eq!(
            HttpError::BodyTooLarge {
                limit: 1,
                actual: 2
            }
            .status(),
            413
        );
        assert_eq!(HttpError::Timeout.status(), 408);
    }

    #[test]
    fn reason_phrases_cover_emitted_statuses() {
        for status in [
            200, 400, 404, 405, 408, 411, 413, 429, 431, 500, 501, 503, 504,
        ] {
            assert_ne!(reason_phrase(status), "Unknown", "status {status}");
        }
    }
}
