//! Graceful SIGINT handling for the CLI, and the crate's only `unsafe`
//! code: two `libc` symbols declared by hand because the build is
//! std-only (no `libc` crate).
//!
//! The protocol is two-stage, the classic server convention:
//!
//! 1. the **first** Ctrl-C raises a process-wide cancel flag — `xsdf
//!    batch` stops scheduling new documents (via
//!    [`runtime::BatchEngine::cancel_flag`]) and still writes its metrics
//!    and trace outputs; `xsdf serve` begins its drain;
//! 2. a **second** Ctrl-C calls `_exit(130)` (128 + SIGINT), the
//!    immediate abort escape hatch when draining takes too long.
//!
//! The handler body touches only atomics and `_exit`, both
//! async-signal-safe. State is sticky for the process lifetime: install
//! once from `main`, poll [`interrupt_count`] from ordinary threads.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// POSIX signal number for Ctrl-C.
const SIGINT: i32 = 2;

/// Exit status for a SIGINT abort (128 + signal number).
const EXIT_INTERRUPTED: i32 = 130;

static INTERRUPTS: AtomicUsize = AtomicUsize::new(0);
static CANCEL: AtomicBool = AtomicBool::new(false);

extern "C" {
    /// `signal(2)`. The returned previous handler is ignored.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    /// `_exit(2)`: terminate immediately, no atexit handlers, no unwind —
    /// the only exit that is async-signal-safe.
    fn _exit(status: i32) -> !;
}

extern "C" fn on_sigint(_signum: i32) {
    let previous = INTERRUPTS.fetch_add(1, Ordering::SeqCst);
    CANCEL.store(true, Ordering::SeqCst);
    if previous >= 1 {
        // Second Ctrl-C: the user is done waiting.
        unsafe { _exit(EXIT_INTERRUPTED) }
    }
}

/// Installs the two-stage SIGINT handler. Idempotent; call once from
/// `main` before starting long-running work.
pub fn install() {
    let _ = unsafe { signal(SIGINT, on_sigint) };
}

/// The process-wide cancel flag the first Ctrl-C raises. `'static`, so it
/// plugs straight into [`runtime::BatchEngine::cancel_flag`].
pub fn cancel_flag() -> &'static AtomicBool {
    &CANCEL
}

/// How many SIGINTs have arrived so far (0 on an uninterrupted run).
pub fn interrupt_count() -> usize {
    INTERRUPTS.load(Ordering::SeqCst)
}
