//! Parameter fine-tuning — the paper's second future-work direction
//! ("fine-tuning user parameters using dedicated optimization techniques
//! \[19, 30\] is another work in progress", Section 5; also Section 3.3's
//! note that weight selection "is an optimization problem such that
//! parameters should be chosen to maximize disambiguation quality
//! (through some cost function such as f-measure)").
//!
//! [`grid_search`] sweeps the discrete configuration space (sphere radius
//! × process × similarity-weight presets × distance policy) on a *tuning*
//! document split, maximizing f-value, and reports the winner for
//! validation on held-out documents — the train/validate protocol the
//! paper defers to "an upcoming study".

use baselines::XsdfDisambiguator;
use corpus::docgen::AnnotatedDocument;
use semnet::SemanticNetwork;
use serde::Serialize;
use xmltree::NodeId;
use xsdf::{DisambiguationProcess, DistancePolicy, XsdfConfig};

use crate::experiments::score_document;
use crate::metrics::PrfScores;

/// One evaluated configuration with its tuning-split score.
#[derive(Debug, Clone, Serialize)]
pub struct Trial {
    /// Human-readable description of the configuration.
    pub description: String,
    /// Sphere radius.
    pub radius: u32,
    /// Process name.
    pub process: String,
    /// Similarity preset name.
    pub similarity: String,
    /// Distance policy name.
    pub distance: String,
    /// f-value on the tuning split.
    pub f_value: f64,
}

/// The outcome of a grid search.
#[derive(Debug, Clone, Serialize)]
pub struct TuningResult {
    /// Every trial, sorted best-first.
    pub trials: Vec<Trial>,
    /// Index of the winning trial (always 0 after sorting; kept for
    /// serialization clarity).
    pub best: usize,
}

impl TuningResult {
    /// The winning trial.
    pub fn winner(&self) -> &Trial {
        &self.trials[self.best]
    }
}

/// The discrete search grid. `Default` covers the paper's configuration
/// space plus the future-work distance policies.
pub struct Grid {
    /// Radii to try.
    pub radii: Vec<u32>,
    /// Processes to try.
    pub processes: Vec<(&'static str, DisambiguationProcess)>,
    /// Similarity presets to try.
    pub similarities: Vec<(&'static str, semsim::SimilarityWeights)>,
    /// Distance policies to try.
    pub distances: Vec<(&'static str, DistancePolicy)>,
}

impl Default for Grid {
    fn default() -> Self {
        Self {
            radii: vec![1, 2, 3],
            processes: vec![
                ("concept", DisambiguationProcess::ConceptBased),
                ("context", DisambiguationProcess::ContextBased),
                (
                    "combined",
                    DisambiguationProcess::Combined {
                        concept: 0.5,
                        context: 0.5,
                    },
                ),
            ],
            similarities: vec![
                ("equal", semsim::SimilarityWeights::equal()),
                (
                    "gloss-heavy",
                    semsim::SimilarityWeights::new(0.2, 0.2, 0.6).unwrap(),
                ),
            ],
            distances: vec![("edge-count", DistancePolicy::EdgeCount)],
        }
    }
}

impl Grid {
    /// A reduced grid for fast tests: radius × process only.
    pub fn small() -> Self {
        Self {
            radii: vec![1, 3],
            processes: vec![("concept", DisambiguationProcess::ConceptBased)],
            similarities: vec![("equal", semsim::SimilarityWeights::equal())],
            distances: vec![("edge-count", DistancePolicy::EdgeCount)],
        }
    }

    /// Materializes the configurations.
    pub fn configs(&self) -> Vec<(Trial, XsdfConfig)> {
        let mut out = Vec::new();
        for &radius in &self.radii {
            for (pname, process) in &self.processes {
                for (sname, weights) in &self.similarities {
                    for (dname, distance) in &self.distances {
                        let config = XsdfConfig {
                            radius,
                            process: *process,
                            similarity: *weights,
                            distance: *distance,
                            ..XsdfConfig::default()
                        };
                        out.push((
                            Trial {
                                description: format!("d={radius} {pname} sim={sname} dist={dname}"),
                                radius,
                                process: pname.to_string(),
                                similarity: sname.to_string(),
                                distance: dname.to_string(),
                                f_value: 0.0,
                            },
                            config,
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Scores one configuration over a document/target set.
pub fn evaluate_config(
    sn: &SemanticNetwork,
    docs: &[(&AnnotatedDocument, &[NodeId])],
    config: XsdfConfig,
) -> PrfScores {
    let method = XsdfDisambiguator::new(config);
    let mut scores = PrfScores::default();
    for (doc, targets) in docs {
        scores.merge(score_document(sn, &method, doc, targets));
    }
    scores
}

/// Sweeps `grid` over the tuning split, returning all trials best-first.
pub fn grid_search(
    sn: &SemanticNetwork,
    docs: &[(&AnnotatedDocument, &[NodeId])],
    grid: &Grid,
) -> TuningResult {
    let mut trials: Vec<Trial> = grid
        .configs()
        .into_iter()
        .map(|(mut trial, config)| {
            trial.f_value = evaluate_config(sn, docs, config).f_value();
            trial
        })
        .collect();
    trials.sort_by(|a, b| b.f_value.total_cmp(&a.f_value));
    TuningResult { trials, best: 0 }
}

/// Rebuilds the [`XsdfConfig`] a trial described.
pub fn config_of(trial: &Trial) -> XsdfConfig {
    let process = match trial.process.as_str() {
        "context" => DisambiguationProcess::ContextBased,
        "combined" => DisambiguationProcess::Combined {
            concept: 0.5,
            context: 0.5,
        },
        _ => DisambiguationProcess::ConceptBased,
    };
    let similarity = match trial.similarity.as_str() {
        "gloss-heavy" => semsim::SimilarityWeights::new(0.2, 0.2, 0.6).unwrap(),
        _ => semsim::SimilarityWeights::equal(),
    };
    XsdfConfig {
        radius: trial.radius,
        process,
        similarity,
        ..XsdfConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::Corpus;
    use semnet::mini_wordnet;

    fn split(corpus: &Corpus) -> Vec<(&AnnotatedDocument, Vec<NodeId>)> {
        corpus
            .documents()
            .iter()
            .map(|d| {
                let mut nodes: Vec<NodeId> = d.gold.keys().copied().collect();
                nodes.sort_unstable();
                nodes.truncate(6);
                (d, nodes)
            })
            .collect()
    }

    #[test]
    fn grid_enumerates_cross_product() {
        let grid = Grid::default();
        let n = grid.radii.len()
            * grid.processes.len()
            * grid.similarities.len()
            * grid.distances.len();
        assert_eq!(grid.configs().len(), n);
        assert_eq!(Grid::small().configs().len(), 2);
    }

    #[test]
    fn search_sorts_best_first_and_is_deterministic() {
        let sn = mini_wordnet();
        let corpus = Corpus::generate_small(sn, 8, 1);
        let docs = split(&corpus);
        let borrowed: Vec<(&AnnotatedDocument, &[NodeId])> =
            docs.iter().map(|(d, n)| (*d, n.as_slice())).collect();
        let a = grid_search(sn, &borrowed, &Grid::small());
        let b = grid_search(sn, &borrowed, &Grid::small());
        assert_eq!(a.trials.len(), 2);
        assert!(a.trials[0].f_value >= a.trials[1].f_value);
        assert_eq!(a.winner().description, b.winner().description);
    }

    #[test]
    fn trial_round_trips_to_config() {
        let grid = Grid::default();
        for (trial, config) in grid.configs() {
            let rebuilt = config_of(&trial);
            assert_eq!(rebuilt.radius, config.radius);
            assert_eq!(rebuilt.process.weights(), config.process.weights());
        }
    }
}
