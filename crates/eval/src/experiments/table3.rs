//! Table 3 — characteristics of the generated corpus, per dataset: number
//! of documents, average nodes per document, label polysemy, node depth,
//! fan-out, and density (each average and maximum).

use corpus::{Corpus, DatasetId};
use semnet::SemanticNetwork;
use serde::Serialize;

use crate::report::{fmt1, fmt3, Table};
use crate::stats::{aggregate_stats, tree_stats, TreeStats};

/// One dataset row of Table 3.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// 1-based dataset number.
    pub dataset: usize,
    /// Group number.
    pub group: usize,
    /// Source name.
    pub source: String,
    /// Grammar (DTD) name.
    pub grammar: String,
    /// Number of generated documents.
    pub num_docs: usize,
    /// Average nodes per document.
    pub avg_nodes: f64,
    /// Aggregated node statistics.
    pub stats: TreeStats,
}

/// The Table 3 result.
#[derive(Debug, Clone, Serialize)]
pub struct Table3 {
    /// One row per dataset.
    pub rows: Vec<Table3Row>,
}

/// Runs the Table 3 measurement over a generated corpus.
pub fn run(sn: &SemanticNetwork, corpus: &Corpus) -> Table3 {
    let rows = DatasetId::ALL
        .iter()
        .map(|&ds| {
            let per_doc: Vec<TreeStats> = corpus
                .dataset(ds)
                .map(|d| tree_stats(sn, &d.tree))
                .collect();
            let agg = aggregate_stats(&per_doc);
            let spec = ds.spec();
            Table3Row {
                dataset: ds.number(),
                group: spec.group.number(),
                source: spec.source.to_string(),
                grammar: spec.grammar.to_string(),
                num_docs: per_doc.len(),
                avg_nodes: agg.nodes as f64 / per_doc.len().max(1) as f64,
                stats: agg,
            }
        })
        .collect();
    Table3 { rows }
}

impl Table3 {
    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "DS",
            "Grp",
            "Grammar",
            "Docs",
            "Nodes/doc",
            "Poly avg",
            "Poly max",
            "Depth avg",
            "Depth max",
            "Fan avg",
            "Fan max",
            "Dens avg",
            "Dens max",
        ]);
        for r in &self.rows {
            t.row([
                r.dataset.to_string(),
                r.group.to_string(),
                r.grammar.clone(),
                r.num_docs.to_string(),
                fmt1(r.avg_nodes),
                fmt3(r.stats.polysemy_avg),
                r.stats.polysemy_max.to_string(),
                fmt3(r.stats.depth_avg),
                r.stats.depth_max.to_string(),
                fmt3(r.stats.fan_out_avg),
                r.stats.fan_out_max.to_string(),
                fmt3(r.stats.density_avg),
                r.stats.density_max.to_string(),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    #[test]
    fn rows_cover_all_datasets_with_plausible_stats() {
        let sn = mini_wordnet();
        let corpus = Corpus::generate_small(sn, 7, 2);
        let t3 = run(sn, &corpus);
        assert_eq!(t3.rows.len(), 10);
        // Shakespeare is the largest dataset per document.
        let shakespeare = &t3.rows[0];
        assert!(
            shakespeare.avg_nodes > t3.rows[7].avg_nodes,
            "ds1 > ds8 in size"
        );
        // Every dataset shows some polysemy.
        for r in &t3.rows {
            assert!(r.stats.polysemy_avg > 0.5, "dataset {} polysemy", r.dataset);
            assert!(r.stats.depth_max >= 2, "dataset {} depth", r.dataset);
        }
        let text = t3.render();
        assert!(text.contains("shakespeare.dtd"));
    }
}
