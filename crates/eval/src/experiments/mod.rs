//! Experiment drivers, one per table/figure of the paper's Section 4.

pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

use baselines::Disambiguator;
use corpus::docgen::AnnotatedDocument;
use semnet::SemanticNetwork;
use xmltree::NodeId;
use xsdf::SenseChoice;

use crate::metrics::PrfScores;

/// Renders a [`SenseChoice`] as a comparable key (matching
/// [`corpus::GoldSense::key`]).
pub fn choice_key(sn: &SemanticNetwork, choice: SenseChoice) -> String {
    match choice {
        SenseChoice::Single(c) => sn.concept(c).key.clone(),
        SenseChoice::Pair(a, b) => format!("{}+{}", sn.concept(a).key, sn.concept(b).key),
    }
}

/// Scores one method on one document's sampled target nodes against the
/// gold standard.
pub fn score_document(
    sn: &SemanticNetwork,
    method: &dyn Disambiguator,
    doc: &AnnotatedDocument,
    targets: &[NodeId],
) -> PrfScores {
    let assignments = method.disambiguate_targets(sn, &doc.tree, targets);
    let mut scores = PrfScores {
        targets: targets.len(),
        ..PrfScores::default()
    };
    for node in targets {
        let Some(&choice) = assignments.get(node) else {
            continue;
        };
        scores.assigned += 1;
        let gold = doc
            .gold
            .get(node)
            .expect("targets are sampled from gold nodes");
        if choice_key(sn, choice) == gold.key() {
            scores.correct += 1;
        }
    }
    scores
}

/// The corpus seed every experiment binary uses by default, so the
/// numbers in EXPERIMENTS.md are regenerable bit-for-bit.
pub const DEFAULT_SEED: u64 = 2015;

/// The per-document target sample size (the paper's "12-to-13 randomly
/// pre-selected nodes per document"). We use 13.
pub const TARGETS_PER_DOC: usize = 13;

/// XSDF's per-group optimal configuration (re-exported for diagnostics).
pub fn optimal_for(group: corpus::Group) -> xsdf::XsdfConfig {
    crate::experiments::fig9::optimal_config(group)
}

/// Writes an experiment result as JSON under `target/experiments/`, so
/// EXPERIMENTS.md numbers are regenerable and machine-checkable.
pub fn dump_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("target/experiments");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{Rpd, XsdfDisambiguator};
    use corpus::Corpus;
    use semnet::mini_wordnet;
    use xsdf::XsdfConfig;

    #[test]
    fn scoring_counts_are_consistent() {
        let sn = mini_wordnet();
        let corpus = Corpus::generate_small(sn, 1, 1);
        let samples = corpus.sample_targets(8);
        let xsdf = XsdfDisambiguator::new(XsdfConfig::default());
        let rpd = Rpd::new();
        for (doc_idx, targets) in &samples {
            let doc = &corpus.documents()[*doc_idx];
            for method in [&xsdf as &dyn Disambiguator, &rpd as &dyn Disambiguator] {
                let s = score_document(sn, method, doc, targets);
                assert_eq!(s.targets, targets.len());
                assert!(s.correct <= s.assigned);
                assert!(s.assigned <= s.targets);
            }
        }
    }

    #[test]
    fn perfect_oracle_scores_one() {
        // Sanity: scoring against a method that echoes the gold gives 1.0.
        struct Oracle<'a>(&'a AnnotatedDocument);
        impl Disambiguator for Oracle<'_> {
            fn name(&self) -> &'static str {
                "oracle"
            }
            fn disambiguate(
                &self,
                sn: &SemanticNetwork,
                _tree: &xmltree::XmlTree,
            ) -> baselines::Assignments {
                self.0
                    .gold
                    .iter()
                    .filter_map(|(&n, g)| {
                        // Only single golds are representable here.
                        match g {
                            corpus::GoldSense::Single(k) => {
                                sn.by_key(k).map(|c| (n, SenseChoice::Single(c)))
                            }
                            corpus::GoldSense::Pair(a, b) => match (sn.by_key(a), sn.by_key(b)) {
                                (Some(x), Some(y)) => Some((n, SenseChoice::Pair(x, y))),
                                _ => None,
                            },
                        }
                    })
                    .collect()
            }
        }
        let sn = mini_wordnet();
        let corpus = Corpus::generate_small(sn, 2, 1);
        let doc = &corpus.documents()[0];
        let targets: Vec<NodeId> = doc.gold.keys().copied().collect();
        let s = score_document(sn, &Oracle(doc), doc, &targets);
        assert_eq!(s.correct, s.targets);
        assert_eq!(s.f_value(), 1.0);
    }
}
