//! Figure 8 — average f-value per group, sphere radius `d ∈ {1, 2, 3}`,
//! and disambiguation process (concept-based, context-based, combined).

use baselines::XsdfDisambiguator;
use corpus::{Corpus, Group};
use semnet::SemanticNetwork;
use serde::Serialize;

use crate::experiments::score_document;
use crate::metrics::PrfScores;
use crate::report::{fmt3, Table};
use xsdf::{DisambiguationProcess, XsdfConfig};

/// The three processes Figure 8 compares.
pub const PROCESSES: [(&str, DisambiguationProcess); 3] = [
    ("concept", DisambiguationProcess::ConceptBased),
    ("context", DisambiguationProcess::ContextBased),
    (
        "combined",
        DisambiguationProcess::Combined {
            concept: 0.5,
            context: 0.5,
        },
    ),
];

/// One measured cell of Figure 8.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Cell {
    /// Group number (1–4).
    pub group: usize,
    /// Sphere radius `d`.
    pub radius: u32,
    /// Process name (`concept` / `context` / `combined`).
    pub process: String,
    /// Micro-averaged precision over the group.
    pub precision: f64,
    /// Micro-averaged recall.
    pub recall: f64,
    /// F-value (the quantity Figure 8 plots).
    pub f_value: f64,
}

/// The Figure 8 result: 4 groups × 3 radii × 3 processes.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8 {
    /// All measured cells.
    pub cells: Vec<Fig8Cell>,
}

/// Runs the Figure 8 sweep.
pub fn run(sn: &SemanticNetwork, corpus: &Corpus, per_doc: usize) -> Fig8 {
    let samples = corpus.sample_targets(per_doc);
    let mut cells = Vec::new();
    for &group in &Group::ALL {
        for radius in 1..=3u32 {
            for (process_name, process) in PROCESSES {
                let config = XsdfConfig {
                    radius,
                    process,
                    ..XsdfConfig::default()
                };
                let method = XsdfDisambiguator::new(config);
                let mut scores = PrfScores::default();
                for (doc_idx, targets) in &samples {
                    let doc = &corpus.documents()[*doc_idx];
                    if doc.dataset.spec().group != group {
                        continue;
                    }
                    scores.merge(score_document(sn, &method, doc, targets));
                }
                cells.push(Fig8Cell {
                    group: group.number(),
                    radius,
                    process: process_name.to_string(),
                    precision: scores.precision(),
                    recall: scores.recall(),
                    f_value: scores.f_value(),
                });
            }
        }
    }
    Fig8 { cells }
}

impl Fig8 {
    /// Looks up a cell's f-value.
    pub fn f(&self, group: usize, radius: u32, process: &str) -> f64 {
        self.cells
            .iter()
            .find(|c| c.group == group && c.radius == radius && c.process == process)
            .map(|c| c.f_value)
            .unwrap_or(0.0)
    }

    /// The radius at which a group's concept-based f-value peaks.
    pub fn best_radius(&self, group: usize, process: &str) -> u32 {
        (1..=3u32)
            .max_by(|&a, &b| {
                self.f(group, a, process)
                    .total_cmp(&self.f(group, b, process))
            })
            .unwrap()
    }

    /// Renders as a text table (one row per group × radius).
    pub fn render(&self) -> String {
        let mut t = Table::new(["Group", "d", "concept f", "context f", "combined f"]);
        for group in 1..=4usize {
            for radius in 1..=3u32 {
                t.row([
                    format!("Group {group}"),
                    radius.to_string(),
                    fmt3(self.f(group, radius, "concept")),
                    fmt3(self.f(group, radius, "context")),
                    fmt3(self.f(group, radius, "combined")),
                ]);
            }
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    #[test]
    fn sweep_produces_all_cells() {
        let sn = mini_wordnet();
        let corpus = Corpus::generate_small(sn, 3, 1);
        let fig8 = run(sn, &corpus, 6);
        assert_eq!(fig8.cells.len(), 4 * 3 * 3);
        for c in &fig8.cells {
            assert!((0.0..=1.0).contains(&c.f_value));
            assert!((0.0..=1.0).contains(&c.precision));
            assert!((0.0..=1.0).contains(&c.recall));
        }
        let text = fig8.render();
        assert_eq!(text.lines().count(), 2 + 12);
    }
}
