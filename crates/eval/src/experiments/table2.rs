//! Table 2 — Pearson correlation between human ambiguity ratings and the
//! system's `Amb_Deg`, under four weight configurations:
//!
//! * Test #1: all factors (`w_Pol = w_Depth = w_Density = 1`),
//! * Test #2: polysemy only (`1, 0, 0`),
//! * Test #3: depth focus (`0.2, 1, 0`),
//! * Test #4: density focus (`0.2, 0, 1`).
//!
//! The paper reports one row per representative document (Doc 1–10 =
//! datasets 1–10); we correlate over the sampled target nodes of all the
//! dataset's documents.

use corpus::annotators::rate_tree;
use corpus::{Corpus, DatasetId};
use semnet::SemanticNetwork;
use serde::Serialize;

use crate::metrics::pearson;
use crate::report::{fmt3, Table};
use xsdf::ambiguity::ambiguity_degree;
use xsdf::AmbiguityWeights;

/// One dataset row of Table 2.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// 1-based dataset number ("Doc N" in the paper).
    pub dataset: usize,
    /// The dataset's group.
    pub group: usize,
    /// Correlations for Tests #1–#4.
    pub correlations: [f64; 4],
    /// Number of rated node pairs.
    pub pairs: usize,
}

/// The Table 2 result.
#[derive(Debug, Clone, Serialize)]
pub struct Table2 {
    /// One row per dataset.
    pub rows: Vec<Table2Row>,
}

/// The four weight configurations of the paper's Tests #1–#4.
pub fn test_configs() -> [AmbiguityWeights; 4] {
    [
        AmbiguityWeights::equal(),
        AmbiguityWeights::polysemy_only(),
        AmbiguityWeights::depth_focus(),
        AmbiguityWeights::density_focus(),
    ]
}

/// Runs the Table 2 experiment.
pub fn run(sn: &SemanticNetwork, corpus: &Corpus, per_doc: usize) -> Table2 {
    let samples = corpus.sample_targets(per_doc);
    let configs = test_configs();
    let mut rows = Vec::new();
    for &ds in &DatasetId::ALL {
        // Collect (human mean rating, system degree per config) pairs.
        let mut human: Vec<f64> = Vec::new();
        let mut system: [Vec<f64>; 4] = Default::default();
        for (doc_idx, targets) in &samples {
            let doc = &corpus.documents()[*doc_idx];
            if doc.dataset != ds {
                continue;
            }
            let ratings = rate_tree(sn, &doc.tree, corpus.seed() ^ (*doc_idx as u64));
            for &node in targets {
                // Only polysemous nodes are rated: asking a human how
                // ambiguous a one-sense (or unknown) word is yields
                // constant zeros that would swamp the correlation.
                let label = doc.tree.label(node);
                if sn.senses_normalized(label, lingproc::porter_stem).len() < 2 {
                    continue;
                }
                let rating = ratings
                    .iter()
                    .find(|r| r.node == node)
                    .expect("all nodes rated")
                    .mean();
                human.push(rating);
                for (i, &w) in configs.iter().enumerate() {
                    system[i].push(ambiguity_degree(sn, &doc.tree, node, w));
                }
            }
        }
        let correlations = [0, 1, 2, 3].map(|i| pearson(&human, &system[i]));
        rows.push(Table2Row {
            dataset: ds.number(),
            group: ds.spec().group.number(),
            correlations,
            pairs: human.len(),
        });
    }
    Table2 { rows }
}

impl Table2 {
    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "Doc (dataset)",
            "Group",
            "Test #1 all",
            "Test #2 polysemy",
            "Test #3 depth",
            "Test #4 density",
            "pairs",
        ]);
        for row in &self.rows {
            t.row([
                format!("Doc {}", row.dataset),
                row.group.to_string(),
                fmt3(row.correlations[0]),
                fmt3(row.correlations[1]),
                fmt3(row.correlations[2]),
                fmt3(row.correlations[3]),
                row.pairs.to_string(),
            ]);
        }
        t.render()
    }

    /// The paper's headline observation: positive correlation on Group 1,
    /// weaker (near zero or negative) on Group 4.
    pub fn group1_correlation(&self) -> f64 {
        self.rows
            .iter()
            .find(|r| r.group == 1)
            .map(|r| r.correlations[0])
            .unwrap_or(0.0)
    }

    /// Mean Test #1 correlation over Group 4 datasets.
    pub fn group4_mean_correlation(&self) -> f64 {
        let g4: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.group == 4)
            .map(|r| r.correlations[0])
            .collect();
        g4.iter().sum::<f64>() / g4.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    #[test]
    fn correlations_bounded_and_rows_complete() {
        let sn = mini_wordnet();
        let corpus = Corpus::generate_small(sn, 4, 2);
        let t2 = run(sn, &corpus, 10);
        assert_eq!(t2.rows.len(), 10);
        for row in &t2.rows {
            for c in row.correlations {
                assert!((-1.0..=1.0).contains(&c), "correlation {c} out of range");
            }
            assert!(row.pairs > 0);
        }
        let text = t2.render();
        assert!(text.contains("Doc 9"));
    }
}
