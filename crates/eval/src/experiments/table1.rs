//! Table 1 — the four-group organization of the corpus by average node
//! ambiguity (`Amb_Deg`) × structural richness (`Struct_Deg`, Equation 14).

use corpus::{Corpus, Group};
use semnet::SemanticNetwork;
use serde::Serialize;

use crate::report::{fmt3, Table};
use crate::stats::{avg_ambiguity_degree, avg_struct_degree, StructWeights};
use xsdf::AmbiguityWeights;

/// One group's averages.
#[derive(Debug, Clone, Serialize)]
pub struct GroupDegrees {
    /// 1-based group number.
    pub group: usize,
    /// Average `Amb_Deg` over all nodes of the group's documents.
    pub amb_deg: f64,
    /// Average `Struct_Deg` over all nodes of the group's documents.
    pub struct_deg: f64,
}

/// The Table 1 result.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// Per-group degrees, groups 1–4 in order.
    pub groups: Vec<GroupDegrees>,
}

/// Runs the Table 1 measurement.
pub fn run(sn: &SemanticNetwork, corpus: &Corpus) -> Table1 {
    let groups = Group::ALL
        .iter()
        .map(|&group| {
            let docs: Vec<_> = corpus.group(group).collect();
            let n = docs.len() as f64;
            let amb = docs
                .iter()
                .map(|d| avg_ambiguity_degree(sn, &d.tree, AmbiguityWeights::equal()))
                .sum::<f64>()
                / n;
            let st = docs
                .iter()
                .map(|d| avg_struct_degree(&d.tree, StructWeights::default()))
                .sum::<f64>()
                / n;
            GroupDegrees {
                group: group.number(),
                amb_deg: amb,
                struct_deg: st,
            }
        })
        .collect();
    Table1 { groups }
}

impl Table1 {
    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut t = Table::new(["Group", "Amb_Deg", "Struct_Deg", "Classification"]);
        for gd in &self.groups {
            let class = match gd.group {
                1 => "Ambiguity+ / Structure+",
                2 => "Ambiguity+ / Structure-",
                3 => "Ambiguity- / Structure+",
                _ => "Ambiguity- / Structure-",
            };
            t.row([
                format!("Group {}", gd.group),
                fmt3(gd.amb_deg),
                fmt3(gd.struct_deg),
                class.into(),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    #[test]
    fn group_ordering_matches_table1_semantics() {
        let sn = mini_wordnet();
        let corpus = Corpus::generate_small(sn, 7, 2);
        let t1 = run(sn, &corpus);
        assert_eq!(t1.groups.len(), 4);
        let by_group: Vec<&GroupDegrees> = t1.groups.iter().collect();
        // Ambiguity: groups 1 and 2 above groups 3 and 4.
        let high_amb = by_group[0].amb_deg.min(by_group[1].amb_deg);
        let low_amb = by_group[2].amb_deg.max(by_group[3].amb_deg);
        assert!(
            high_amb > low_amb,
            "groups 1/2 must be more ambiguous: {:?}",
            t1.groups
        );
        // Structure: group 1 richer than group 4.
        assert!(
            by_group[0].struct_deg > by_group[3].struct_deg,
            "group 1 must be more structured than group 4: {:?}",
            t1.groups
        );
        let text = t1.render();
        assert!(text.contains("Group 1"));
    }
}
