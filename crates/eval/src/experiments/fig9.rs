//! Figure 9 — comparative evaluation: XSDF (at its per-group optimal
//! parameters, Section 4.3.2) versus the RPD and VSD baselines, reporting
//! precision, recall, and f-value per group.

use baselines::{Disambiguator, Rpd, Vsd, XsdfDisambiguator};
use corpus::{Corpus, Group};
use semnet::SemanticNetwork;
use serde::Serialize;

use crate::experiments::score_document;
use crate::metrics::PrfScores;
use crate::report::{fmt3, Table};
use xsdf::XsdfConfig;

/// One method's scores on one group.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Cell {
    /// Group number.
    pub group: usize,
    /// Method name (`XSDF` / `RPD` / `VSD`).
    pub method: String,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F-value.
    pub f_value: f64,
}

/// The Figure 9 result: 4 groups × 3 methods.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9 {
    /// All cells.
    pub cells: Vec<Fig9Cell>,
}

/// XSDF's optimal configuration for a group (Section 4.3.2: `d = 1` for
/// Group 1, `d = 3` for Groups 2–4, concept-based everywhere).
pub fn optimal_config(group: Group) -> XsdfConfig {
    match group {
        Group::G1 => XsdfConfig::optimal_rich(),
        _ => XsdfConfig::optimal_flat(),
    }
}

/// Runs the Figure 9 comparison.
pub fn run(sn: &SemanticNetwork, corpus: &Corpus, per_doc: usize) -> Fig9 {
    let samples = corpus.sample_targets(per_doc);
    let rpd = Rpd::new();
    let vsd = Vsd::new();
    let mut cells = Vec::new();
    for &group in &Group::ALL {
        let xsdf = XsdfDisambiguator::new(optimal_config(group));
        let methods: [(&str, &dyn Disambiguator); 3] =
            [("XSDF", &xsdf), ("RPD", &rpd), ("VSD", &vsd)];
        for (name, method) in methods {
            let mut scores = PrfScores::default();
            for (doc_idx, targets) in &samples {
                let doc = &corpus.documents()[*doc_idx];
                if doc.dataset.spec().group != group {
                    continue;
                }
                scores.merge(score_document(sn, method, doc, targets));
            }
            cells.push(Fig9Cell {
                group: group.number(),
                method: name.to_string(),
                precision: scores.precision(),
                recall: scores.recall(),
                f_value: scores.f_value(),
            });
        }
    }
    Fig9 { cells }
}

impl Fig9 {
    /// Looks up a cell.
    pub fn cell(&self, group: usize, method: &str) -> Option<&Fig9Cell> {
        self.cells
            .iter()
            .find(|c| c.group == group && c.method == method)
    }

    /// F-value lookup (0 when missing).
    pub fn f(&self, group: usize, method: &str) -> f64 {
        self.cell(group, method).map(|c| c.f_value).unwrap_or(0.0)
    }

    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut t = Table::new(["Group", "Method", "Precision", "Recall", "F-value"]);
        for c in &self.cells {
            t.row([
                format!("Group {}", c.group),
                c.method.clone(),
                fmt3(c.precision),
                fmt3(c.recall),
                fmt3(c.f_value),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    #[test]
    fn comparison_produces_all_cells() {
        let sn = mini_wordnet();
        let corpus = Corpus::generate_small(sn, 9, 1);
        let fig9 = run(sn, &corpus, 6);
        assert_eq!(fig9.cells.len(), 12);
        for c in &fig9.cells {
            assert!((0.0..=1.0).contains(&c.f_value), "{c:?}");
        }
        assert!(fig9.cell(1, "XSDF").is_some());
        let text = fig9.render();
        assert!(text.contains("RPD"));
        assert!(text.contains("VSD"));
    }

    #[test]
    fn optimal_configs_follow_section_432() {
        assert_eq!(optimal_config(Group::G1).radius, 1);
        assert_eq!(optimal_config(Group::G4).radius, 3);
    }
}
