//! Table 4 — the qualitative feature comparison of RPD, VSD, and XSDF.
//!
//! A static checklist in the paper; here each feature claim is tied to the
//! module that implements it, so the table doubles as a feature index of
//! this repository.

use serde::Serialize;

use crate::report::Table;

/// One feature row of Table 4.
#[derive(Debug, Clone, Serialize)]
pub struct Feature {
    /// The feature as phrased by the paper.
    pub feature: &'static str,
    /// Whether RPD (reference 50 of the paper) has it.
    pub rpd: bool,
    /// Whether VSD (reference 29 of the paper) has it.
    pub vsd: bool,
    /// Whether XSDF has it.
    pub xsdf: bool,
    /// Where this repository implements it (for XSDF) or models it.
    pub implemented_in: &'static str,
}

/// The full Table 4.
pub fn rows() -> Vec<Feature> {
    vec![
        Feature {
            feature: "Considers linguistic pre-processing",
            rpd: true,
            vsd: true,
            xsdf: true,
            implemented_in: "xsdf-lingproc (tokenize, stopwords, Porter stem)",
        },
        Feature {
            feature: "Considers tag tokenization (compound terms)",
            rpd: false,
            vsd: true,
            xsdf: true,
            implemented_in: "lingproc::Preprocessor::process_tag_name",
        },
        Feature {
            feature: "Addresses XML node ambiguity",
            rpd: false,
            vsd: false,
            xsdf: true,
            implemented_in: "xsdf::ambiguity (Definition 3)",
        },
        Feature {
            feature: "Integrates an inclusive XML structure context",
            rpd: false,
            vsd: true,
            xsdf: true,
            implemented_in: "xsdf::sphere (Definitions 4-5)",
        },
        Feature {
            feature: "Flexible w.r.t. context size",
            rpd: false,
            vsd: true,
            xsdf: true,
            implemented_in: "XsdfConfig::radius / Vsd::sigma",
        },
        Feature {
            feature: "Adopts relational information approach",
            rpd: false,
            vsd: true,
            xsdf: true,
            implemented_in: "xsdf::sphere context vectors (Definitions 6-7)",
        },
        Feature {
            feature: "Combines the results of various semantic similarity measures",
            rpd: false,
            vsd: false,
            xsdf: true,
            implemented_in: "semsim::CombinedSimilarity (Definition 9)",
        },
        Feature {
            feature: "Straightforward mathematical functions",
            rpd: false,
            vsd: false,
            xsdf: true,
            implemented_in: "closed-form Amb_Deg / context weights",
        },
        Feature {
            feature: "Disambiguates XML structure and content",
            rpd: false,
            vsd: false,
            xsdf: true,
            implemented_in: "ContentMode::StructureAndContent",
        },
    ]
}

/// Renders Table 4 as text.
pub fn render() -> String {
    let mut t = Table::new(["Feature", "RPD [50]", "VSD [29]", "XSDF", "Implemented in"]);
    let mark = |b: bool| if b { "V" } else { "x" };
    for f in rows() {
        t.row([
            f.feature,
            mark(f.rpd),
            mark(f.vsd),
            mark(f.xsdf),
            f.implemented_in,
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_papers_table4_pattern() {
        let rows = rows();
        assert_eq!(rows.len(), 9);
        // XSDF checks every box; RPD only the first; VSD five of nine.
        assert!(rows.iter().all(|f| f.xsdf));
        assert_eq!(rows.iter().filter(|f| f.rpd).count(), 1);
        assert_eq!(rows.iter().filter(|f| f.vsd).count(), 5);
    }

    #[test]
    fn renders_marks() {
        let text = render();
        assert!(text.contains("Addresses XML node ambiguity"));
        assert!(text.contains('V'));
        assert!(text.contains('x'));
    }
}
