//! Minimal fixed-width text-table rendering for the experiment binaries.

/// A simple text table with a header row.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                out.extend(std::iter::repeat_n(
                    ' ',
                    widths[i].saturating_sub(cell.len()),
                ));
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

/// Formats a float with three decimals (the paper's table precision).
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with one decimal.
pub fn fmt1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "2"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Value column aligned to the same offset in both rows.
        let off2 = lines[2].find('1').unwrap();
        let off3 = lines[3].find('2').unwrap();
        assert_eq!(off2.max(off3) - off2.min(off3), 0);
    }

    #[test]
    fn rows_padded_to_header_width() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        assert_eq!(t.len(), 1);
        let text = t.render();
        assert!(text.contains("only-one"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(0.39444), "0.394");
        assert_eq!(fmt1(192.054), "192.1");
    }
}
