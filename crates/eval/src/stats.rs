//! Corpus statistics: the structure degree of Equation 14 and the
//! per-dataset node characteristics of Table 3.

use semnet::SemanticNetwork;
use serde::Serialize;
use xmltree::{NodeId, XmlTree};
use xsdf::ambiguity::ambiguity_degree;
use xsdf::AmbiguityWeights;

/// Weights of Equation 14 (`w_Depth + w_Fan-out + w_Density = 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructWeights {
    /// Weight of the normalized depth factor.
    pub depth: f64,
    /// Weight of the normalized fan-out factor.
    pub fan_out: f64,
    /// Weight of the normalized density factor.
    pub density: f64,
}

impl Default for StructWeights {
    fn default() -> Self {
        // The paper's experimental setting: equal thirds (Section 4.1).
        Self {
            depth: 1.0 / 3.0,
            fan_out: 1.0 / 3.0,
            density: 1.0 / 3.0,
        }
    }
}

/// `Struct_Deg(x, T)` of Equation 14: the structural richness of a node as
/// the weighted sum of its normalized depth, fan-out, and density.
pub fn struct_degree(tree: &XmlTree, node: NodeId, w: StructWeights) -> f64 {
    let depth = if tree.max_depth() == 0 {
        0.0
    } else {
        tree.depth(node) as f64 / tree.max_depth() as f64
    };
    let fan_out = if tree.max_fan_out() == 0 {
        0.0
    } else {
        tree.fan_out(node) as f64 / tree.max_fan_out() as f64
    };
    let density = if tree.max_density() == 0 {
        0.0
    } else {
        tree.density(node) as f64 / tree.max_density() as f64
    };
    w.depth * depth + w.fan_out * fan_out + w.density * density
}

/// Average `Struct_Deg` over all nodes of a tree.
pub fn avg_struct_degree(tree: &XmlTree, w: StructWeights) -> f64 {
    let sum: f64 = tree.preorder().map(|n| struct_degree(tree, n, w)).sum();
    sum / tree.len() as f64
}

/// Average `Amb_Deg` over all nodes of a tree.
pub fn avg_ambiguity_degree(sn: &SemanticNetwork, tree: &XmlTree, w: AmbiguityWeights) -> f64 {
    let sum: f64 = tree
        .preorder()
        .map(|n| ambiguity_degree(sn, tree, n, w))
        .sum();
    sum / tree.len() as f64
}

/// Per-document node statistics (the measurement columns of Table 3).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct TreeStats {
    /// Node count.
    pub nodes: usize,
    /// Average / maximum label polysemy.
    pub polysemy_avg: f64,
    /// Maximum label polysemy.
    pub polysemy_max: usize,
    /// Average node depth.
    pub depth_avg: f64,
    /// Maximum node depth.
    pub depth_max: u32,
    /// Average fan-out.
    pub fan_out_avg: f64,
    /// Maximum fan-out.
    pub fan_out_max: usize,
    /// Average density (children with distinct labels).
    pub density_avg: f64,
    /// Maximum density.
    pub density_max: usize,
}

/// Computes the Table 3 statistics of one tree.
pub fn tree_stats(sn: &SemanticNetwork, tree: &XmlTree) -> TreeStats {
    let n = tree.len() as f64;
    let mut stats = TreeStats {
        nodes: tree.len(),
        ..TreeStats::default()
    };
    for node in tree.preorder() {
        let poly = sn
            .senses_normalized(tree.label(node), lingproc::porter_stem)
            .len();
        stats.polysemy_avg += poly as f64;
        stats.polysemy_max = stats.polysemy_max.max(poly);
        stats.depth_avg += tree.depth(node) as f64;
        stats.depth_max = stats.depth_max.max(tree.depth(node));
        stats.fan_out_avg += tree.fan_out(node) as f64;
        stats.fan_out_max = stats.fan_out_max.max(tree.fan_out(node));
        let density = tree.density(node);
        stats.density_avg += density as f64;
        stats.density_max = stats.density_max.max(density);
    }
    stats.polysemy_avg /= n;
    stats.depth_avg /= n;
    stats.fan_out_avg /= n;
    stats.density_avg /= n;
    stats
}

/// Averages a set of per-document statistics (maxima take the max).
pub fn aggregate_stats(all: &[TreeStats]) -> TreeStats {
    let n = all.len() as f64;
    let mut out = TreeStats::default();
    for s in all {
        out.nodes += s.nodes;
        out.polysemy_avg += s.polysemy_avg;
        out.polysemy_max = out.polysemy_max.max(s.polysemy_max);
        out.depth_avg += s.depth_avg;
        out.depth_max = out.depth_max.max(s.depth_max);
        out.fan_out_avg += s.fan_out_avg;
        out.fan_out_max = out.fan_out_max.max(s.fan_out_max);
        out.density_avg += s.density_avg;
        out.density_max = out.density_max.max(s.density_max);
    }
    out.polysemy_avg /= n;
    out.depth_avg /= n;
    out.fan_out_avg /= n;
    out.density_avg /= n;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;
    use xmltree::tree::TreeBuilder;
    use xsdf::LingTokenizer;

    fn tree(xml: &str) -> XmlTree {
        let doc = xmltree::parse(xml).unwrap();
        TreeBuilder::with_tokenizer(LingTokenizer::new(mini_wordnet()))
            .build(&doc)
            .unwrap()
            .tree
    }

    #[test]
    fn struct_degree_bounds() {
        let t = tree("<films><picture><cast><star/><star/></cast><plot/></picture></films>");
        for node in t.preorder() {
            let d = struct_degree(&t, node, StructWeights::default());
            assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn deep_rich_trees_score_higher_than_flat_ones() {
        let rich = tree("<a><b><c><d/><e/></c><f><g/><h/></f></b><i><j><k/><l/></j></i></a>");
        let flat = tree("<a><b/><b/><b/></a>");
        let w = StructWeights::default();
        assert!(avg_struct_degree(&rich, w) > avg_struct_degree(&flat, w));
    }

    #[test]
    fn tree_stats_basics() {
        let sn = mini_wordnet();
        let t = tree("<cast><star>Kelly</star><star>Stewart</star></cast>");
        let s = tree_stats(sn, &t);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.depth_max, 2);
        assert_eq!(s.fan_out_max, 2);
        assert_eq!(s.density_max, 1); // two children share the label "star"
        assert!(s.polysemy_max >= 5); // "star"
        assert!(s.polysemy_avg > 1.0);
    }

    #[test]
    fn aggregate_averages_and_maxes() {
        let a = TreeStats {
            nodes: 10,
            polysemy_avg: 2.0,
            polysemy_max: 5,
            ..Default::default()
        };
        let b = TreeStats {
            nodes: 20,
            polysemy_avg: 4.0,
            polysemy_max: 3,
            ..Default::default()
        };
        let agg = aggregate_stats(&[a, b]);
        assert_eq!(agg.nodes, 30);
        assert!((agg.polysemy_avg - 3.0).abs() < 1e-12);
        assert_eq!(agg.polysemy_max, 5);
    }

    #[test]
    fn ambiguity_average_in_unit_interval() {
        let sn = mini_wordnet();
        let t = tree("<films><picture><cast><star>Kelly</star></cast></picture></films>");
        let avg = avg_ambiguity_degree(sn, &t, AmbiguityWeights::equal());
        assert!((0.0..=1.0).contains(&avg));
        assert!(avg > 0.0);
    }
}
