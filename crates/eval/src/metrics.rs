//! Precision / recall / f-value and Pearson correlation (Section 4's
//! quality criteria).

use serde::Serialize;

/// Aggregated counts and derived precision/recall/f-value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct PrfScores {
    /// Target nodes the method assigned a sense to.
    pub assigned: usize,
    /// Assigned nodes whose sense matches the gold standard.
    pub correct: usize,
    /// Total evaluated target nodes.
    pub targets: usize,
}

impl PrfScores {
    /// Accumulates another batch of counts.
    pub fn merge(&mut self, other: PrfScores) {
        self.assigned += other.assigned;
        self.correct += other.correct;
        self.targets += other.targets;
    }

    /// Precision = correct / assigned (1 when nothing was assigned and
    /// nothing was expected, 0 when assigned is 0 but targets exist —
    /// consistent with the f-value being 0 then).
    pub fn precision(&self) -> f64 {
        if self.assigned == 0 {
            return if self.targets == 0 { 1.0 } else { 0.0 };
        }
        self.correct as f64 / self.assigned as f64
    }

    /// Recall = correct / targets.
    pub fn recall(&self) -> f64 {
        if self.targets == 0 {
            return 1.0;
        }
        self.correct as f64 / self.targets as f64
    }

    /// The harmonic mean of precision and recall.
    pub fn f_value(&self) -> f64 {
        f_value(self.precision(), self.recall())
    }
}

/// Harmonic mean of precision and recall; 0 when both are 0.
pub fn f_value(precision: f64, recall: f64) -> f64 {
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// Pearson's correlation coefficient between two paired samples, the
/// measure of Section 4.2. Returns 0 for degenerate inputs (fewer than two
/// pairs, or zero variance on either side).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples must have equal length");
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prf_arithmetic() {
        let s = PrfScores {
            assigned: 8,
            correct: 6,
            targets: 10,
        };
        assert!((s.precision() - 0.75).abs() < 1e-12);
        assert!((s.recall() - 0.6).abs() < 1e-12);
        let f = s.f_value();
        assert!((f - 2.0 * 0.75 * 0.6 / 1.35).abs() < 1e-12);
    }

    #[test]
    fn prf_degenerate_cases() {
        let empty = PrfScores::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        let abstained = PrfScores {
            assigned: 0,
            correct: 0,
            targets: 5,
        };
        assert_eq!(abstained.precision(), 0.0);
        assert_eq!(abstained.recall(), 0.0);
        assert_eq!(abstained.f_value(), 0.0);
    }

    #[test]
    fn prf_merge_accumulates() {
        let mut a = PrfScores {
            assigned: 3,
            correct: 2,
            targets: 4,
        };
        a.merge(PrfScores {
            assigned: 5,
            correct: 4,
            targets: 6,
        });
        assert_eq!(
            a,
            PrfScores {
                assigned: 8,
                correct: 6,
                targets: 10
            }
        );
    }

    #[test]
    fn f_value_bounds() {
        assert_eq!(f_value(0.0, 0.0), 0.0);
        assert_eq!(f_value(1.0, 1.0), 1.0);
        assert!(f_value(0.9, 0.1) < 0.5); // harmonic punishes imbalance
    }

    #[test]
    fn pearson_perfect() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_and_degenerate() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&xs, &ys).abs() < 0.7);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn pearson_length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }
}
