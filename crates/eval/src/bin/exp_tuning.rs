//! Future-work experiment: automatic parameter fine-tuning (Section 5 /
//! Section 3.3 of the paper). Grid-searches the configuration space per
//! group on a tuning split (even-indexed documents), then validates the
//! winner on the held-out split (odd-indexed documents).

use corpus::{Corpus, Group};
use xmltree::NodeId;
use xsdf_eval::experiments::{DEFAULT_SEED, TARGETS_PER_DOC};
use xsdf_eval::report::{fmt3, Table};
use xsdf_eval::tuning::{config_of, evaluate_config, grid_search, Grid};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let sn = semnet::mini_wordnet();
    let corpus = Corpus::generate(sn, seed);
    let samples = corpus.sample_targets(TARGETS_PER_DOC);

    println!("Parameter tuning by grid search (seed {seed})\n");
    let mut t = Table::new([
        "Group",
        "Best configuration (tuning split)",
        "f tuning",
        "f held-out",
    ]);
    for &group in &Group::ALL {
        let mut tuning: Vec<(&corpus::AnnotatedDocument, &[NodeId])> = Vec::new();
        let mut heldout: Vec<(&corpus::AnnotatedDocument, &[NodeId])> = Vec::new();
        for (i, (doc_idx, targets)) in samples.iter().enumerate() {
            let doc = &corpus.documents()[*doc_idx];
            if doc.dataset.spec().group != group {
                continue;
            }
            if i % 2 == 0 {
                tuning.push((doc, targets));
            } else {
                heldout.push((doc, targets));
            }
        }
        let result = grid_search(sn, &tuning, &Grid::default());
        let winner = result.winner();
        let validated = evaluate_config(sn, &heldout, config_of(winner));
        t.row([
            format!("Group {}", group.number()),
            winner.description.clone(),
            fmt3(winner.f_value),
            fmt3(validated.f_value()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(paper reference optima: d=1 concept-based for Group 1, d=3 concept-based for Groups 2-4)"
    );
}
