//! Future-work experiment: alternative tree node distance functions
//! (Section 5 of the paper — "we are currently investigating different XML
//! tree node distance functions (including edge weights, density,
//! direction)"). Compares corpus-wide quality of the edge-count distance
//! against directional and density-scaled policies.

use baselines::XsdfDisambiguator;
use corpus::{Corpus, Group};
use xsdf::{DistancePolicy, XsdfConfig};
use xsdf_eval::experiments::{score_document, DEFAULT_SEED, TARGETS_PER_DOC};
use xsdf_eval::metrics::PrfScores;
use xsdf_eval::report::{fmt3, Table};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let sn = semnet::mini_wordnet();
    let corpus = Corpus::generate(sn, seed);
    let samples = corpus.sample_targets(TARGETS_PER_DOC);

    let policies: [(&str, DistancePolicy); 4] = [
        ("edge count (paper)", DistancePolicy::EdgeCount),
        (
            "directional up-cheap",
            DistancePolicy::Directional { up: 0.5, down: 1.0 },
        ),
        (
            "directional down-cheap",
            DistancePolicy::Directional { up: 1.0, down: 0.5 },
        ),
        (
            "density-scaled a=1",
            DistancePolicy::DensityScaled { alpha: 1.0 },
        ),
    ];

    println!("Distance-function experiment (seed {seed}) — f-value per group\n");
    let mut t = Table::new([
        "Policy", "Group 1", "Group 2", "Group 3", "Group 4", "overall",
    ]);
    for (name, policy) in policies {
        let mut per_group = [PrfScores::default(); 4];
        let mut overall = PrfScores::default();
        for (doc_idx, targets) in &samples {
            let doc = &corpus.documents()[*doc_idx];
            let group = doc.dataset.spec().group;
            let config = XsdfConfig {
                distance: policy,
                ..XsdfConfig::default()
            };
            let method = XsdfDisambiguator::new(config);
            let s = score_document(sn, &method, doc, targets);
            per_group[group.number() - 1].merge(s);
            overall.merge(s);
        }
        t.row([
            name.to_string(),
            fmt3(per_group[0].f_value()),
            fmt3(per_group[1].f_value()),
            fmt3(per_group[2].f_value()),
            fmt3(per_group[3].f_value()),
            fmt3(overall.f_value()),
        ]);
    }
    println!("{}", t.render());
    let _ = Group::ALL; // imported for readers; groups enumerated above
}
