//! Regenerates Figure 8: f-value per group × radius × process.

use xsdf_eval::experiments::{fig8, DEFAULT_SEED, TARGETS_PER_DOC};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let sn = semnet::mini_wordnet();
    let corpus = corpus::Corpus::generate(sn, seed);
    let result = fig8::run(sn, &corpus, TARGETS_PER_DOC);
    println!("Figure 8 — f-value by group, sphere radius d, and process (seed {seed})\n");
    println!("{}", result.render());
    for group in 1..=4 {
        println!(
            "Group {group}: best radius (concept-based) = {}",
            result.best_radius(group, "concept")
        );
    }
    xsdf_eval::experiments::dump_json("fig8", &result);
}
