//! Regenerates Table 2: human-vs-system ambiguity correlation.

use xsdf_eval::experiments::{table2, DEFAULT_SEED, TARGETS_PER_DOC};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let sn = semnet::mini_wordnet();
    let corpus = corpus::Corpus::generate(sn, seed);
    let result = table2::run(sn, &corpus, TARGETS_PER_DOC);
    println!("Table 2 — Pearson correlation: simulated human panel vs Amb_Deg (seed {seed})\n");
    println!("{}", result.render());
    println!("Group 1 (Test #1): {:+.3}", result.group1_correlation());
    println!(
        "Group 4 mean (Test #1): {:+.3}",
        result.group4_mean_correlation()
    );
    xsdf_eval::experiments::dump_json("table2", &result);
}
