//! Diagnostic: per-candidate concept-score breakdown for one label in a
//! generated document. Usage: `diag_probe <dataset-number> <label> [radius]`

use corpus::{Corpus, DatasetId};
use semsim::CombinedSimilarity;
use xsdf::concept_based::ConceptContext;
use xsdf::senses::{disambiguation_candidates, SenseCandidates};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ds_no: usize = args[1].parse().unwrap();
    let label = &args[2];
    let radius: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(3);
    let ds = DatasetId::ALL[ds_no - 1];
    let sn = semnet::mini_wordnet();
    let corpus = Corpus::generate_small(sn, 2015, 2);
    let doc = corpus.dataset(ds).next().unwrap();
    let t = &doc.tree;
    let node = t
        .preorder()
        .find(|&n| t.label(n) == *label)
        .expect("label present");
    println!("dataset {ds}, node {label:?}, radius {radius}");
    println!("sphere context labels:");
    for (n, d) in xsdf::sphere::xml_sphere(t, node, radius) {
        println!(
            "  d={d} {:?} ({} senses)",
            t.label(n),
            sn.polysemy(t.label(n))
        );
    }
    let ctx = ConceptContext::build(sn, t, node, radius);
    let sim = CombinedSimilarity::default();
    match disambiguation_candidates(sn, label, t.node(node).kind) {
        SenseCandidates::Single(senses) => {
            for s in senses {
                println!(
                    "{}: {:.4}",
                    sn.concept(s).key,
                    ctx.score_single(sn, &sim, s)
                );
            }
        }
        other => println!("{other:?}"),
    }
    // Pairwise detail against each distinct context label's best sense.
    let mut labels: Vec<String> = xsdf::sphere::xml_sphere(t, node, radius)
        .into_iter()
        .map(|(n, _)| t.label(n).to_string())
        .collect();
    labels.sort();
    labels.dedup();
    if let SenseCandidates::Single(senses) = disambiguation_candidates(sn, label, t.node(node).kind)
    {
        for s in senses.iter().take(4) {
            println!("--- {}", sn.concept(*s).key);
            for l in &labels {
                if let SenseCandidates::Single(cands) =
                    disambiguation_candidates(sn, l, xmltree::NodeKind::Element)
                {
                    let (best, bk) = cands
                        .iter()
                        .map(|&c| (sim.similarity(sn, *s, c), sn.concept(c).key.clone()))
                        .max_by(|a, b| a.0.total_cmp(&b.0))
                        .unwrap();
                    println!(
                        "   vs {l:12} best {bk:24} {best:.3} (wp {:.3} lin {:.3} gl {:.3})",
                        semsim::wu_palmer(sn, *s, sn.by_key(&bk).unwrap()),
                        semsim::lin(sn, *s, sn.by_key(&bk).unwrap()),
                        semsim::extended_gloss_overlap(sn, *s, sn.by_key(&bk).unwrap())
                    );
                }
            }
        }
    }
}
