//! Regenerates Table 1: the corpus groups by ambiguity × structure.

use xsdf_eval::experiments::{table1, DEFAULT_SEED};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let sn = semnet::mini_wordnet();
    let corpus = corpus::Corpus::generate(sn, seed);
    let result = table1::run(sn, &corpus);
    println!("Table 1 — groups by avg node ambiguity x structure (seed {seed})\n");
    println!("{}", result.render());
    xsdf_eval::experiments::dump_json("table1", &result);
}
