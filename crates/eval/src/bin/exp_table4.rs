//! Regenerates Table 4: qualitative comparison of RPD, VSD, and XSDF.

use xsdf_eval::experiments::table4;

fn main() {
    println!("Table 4 — qualitative feature comparison\n");
    println!("{}", table4::render());
    xsdf_eval::experiments::dump_json("table4", &table4::rows());
}
