//! Regenerates Figure 9: XSDF vs RPD vs VSD per group.

use xsdf_eval::experiments::{fig9, DEFAULT_SEED, TARGETS_PER_DOC};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let sn = semnet::mini_wordnet();
    let corpus = corpus::Corpus::generate(sn, seed);
    let result = fig9::run(sn, &corpus, TARGETS_PER_DOC);
    println!("Figure 9 — XSDF (optimal params) vs RPD vs VSD (seed {seed})\n");
    println!("{}", result.render());
    for group in 1..=4 {
        let x = result.f(group, "XSDF");
        let r = result.f(group, "RPD");
        let v = result.f(group, "VSD");
        let best_baseline = r.max(v);
        let delta = if best_baseline > 0.0 {
            100.0 * (x - best_baseline) / best_baseline
        } else {
            0.0
        };
        println!("Group {group}: XSDF vs best baseline: {delta:+.1}%");
    }
    xsdf_eval::experiments::dump_json("fig9", &result);
}
