//! Quality-side ablations of XSDF's design choices (the time-side ablations
//! live in `crates/bench/benches/ablations.rs`):
//!
//! * similarity measures: each single measure of Definition 9 vs the
//!   combination;
//! * target selection: f-value and workload at increasing ambiguity
//!   thresholds (Motivation 1's accuracy/effort trade-off).

use baselines::XsdfDisambiguator;
use corpus::Corpus;
use xsdf::{ThresholdPolicy, XsdfConfig};
use xsdf_eval::experiments::{score_document, DEFAULT_SEED, TARGETS_PER_DOC};
use xsdf_eval::metrics::PrfScores;
use xsdf_eval::report::{fmt3, Table};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let sn = semnet::mini_wordnet();
    let corpus = Corpus::generate(sn, seed);
    let samples = corpus.sample_targets(TARGETS_PER_DOC);

    let run = |config: XsdfConfig| -> PrfScores {
        let method = XsdfDisambiguator::new(config);
        let mut scores = PrfScores::default();
        for (doc_idx, targets) in &samples {
            let doc = &corpus.documents()[*doc_idx];
            scores.merge(score_document(sn, &method, doc, targets));
        }
        scores
    };

    println!("Ablation A — semantic similarity measures (corpus-wide, seed {seed})\n");
    let mut t = Table::new(["Measure", "Precision", "Recall", "F-value"]);
    for (name, weights) in [
        (
            "edge only (Wu-Palmer)",
            semsim::SimilarityWeights::edge_only(),
        ),
        ("node only (Lin)", semsim::SimilarityWeights::node_only()),
        (
            "gloss only (ext. overlap)",
            semsim::SimilarityWeights::gloss_only(),
        ),
        (
            "combined (Definition 9)",
            semsim::SimilarityWeights::equal(),
        ),
    ] {
        let s = run(XsdfConfig {
            similarity: weights,
            ..XsdfConfig::default()
        });
        t.row([
            name.to_string(),
            fmt3(s.precision()),
            fmt3(s.recall()),
            fmt3(s.f_value()),
        ]);
    }
    println!("{}", t.render());

    println!("Ablation B — ambiguity-threshold selection (Motivation 1)\n");
    let mut t = Table::new([
        "Thresh_Amb",
        "Targets processed",
        "Precision",
        "Recall vs sample",
        "F",
    ]);
    for thresh in [0.0, 0.02, 0.05, 0.1] {
        let s = run(XsdfConfig {
            threshold: ThresholdPolicy::Fixed(thresh),
            ..XsdfConfig::default()
        });
        t.row([
            format!("{thresh:.2}"),
            s.assigned.to_string(),
            fmt3(s.precision()),
            fmt3(s.recall()),
            fmt3(s.f_value()),
        ]);
    }
    // The automatic threshold.
    let s = run(XsdfConfig {
        threshold: ThresholdPolicy::Auto,
        ..XsdfConfig::default()
    });
    t.row([
        "auto (mean)".to_string(),
        s.assigned.to_string(),
        fmt3(s.precision()),
        fmt3(s.recall()),
        fmt3(s.f_value()),
    ]);
    println!("{}", t.render());
}
