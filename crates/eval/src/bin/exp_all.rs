//! Runs every experiment in sequence (the full paper reproduction).

use xsdf_eval::experiments::{
    fig8, fig9, table1, table2, table3, table4, DEFAULT_SEED, TARGETS_PER_DOC,
};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let sn = semnet::mini_wordnet();
    let corpus = corpus::Corpus::generate(sn, seed);
    println!(
        "XSDF full reproduction (seed {seed}, {} documents, {} gold nodes)\n",
        corpus.documents().len(),
        corpus.total_gold()
    );

    println!("== Table 1 ==\n{}", table1::run(sn, &corpus).render());
    println!(
        "== Table 2 ==\n{}",
        table2::run(sn, &corpus, TARGETS_PER_DOC).render()
    );
    println!("== Table 3 ==\n{}", table3::run(sn, &corpus).render());
    println!("== Table 4 ==\n{}", table4::render());
    println!(
        "== Figure 8 ==\n{}",
        fig8::run(sn, &corpus, TARGETS_PER_DOC).render()
    );
    println!(
        "== Figure 9 ==\n{}",
        fig9::run(sn, &corpus, TARGETS_PER_DOC).render()
    );
    println!("(future-work experiments: run exp_distance, exp_tuning, exp_ablation)");
}
