//! Diagnostic: (label, senses, human rating, Amb_Deg) pairs for one dataset.

use corpus::annotators::{perceived_ambiguity, rate_tree};
use corpus::{Corpus, DatasetId};
use xsdf::ambiguity::ambiguity_degree;
use xsdf::AmbiguityWeights;

fn main() {
    let ds_no: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let ds = DatasetId::ALL[ds_no - 1];
    let sn = semnet::mini_wordnet();
    let corpus = Corpus::generate(sn, 2015);
    let samples = corpus.sample_targets(13);
    let mut rows = Vec::new();
    for (doc_idx, targets) in samples.iter() {
        let doc = &corpus.documents()[*doc_idx];
        if doc.dataset != ds {
            continue;
        }
        let ratings = rate_tree(sn, &doc.tree, corpus.seed() ^ (*doc_idx as u64));
        for &node in targets {
            let label = doc.tree.label(node).to_string();
            let senses = sn.senses_normalized(&label, lingproc::porter_stem).len();
            if senses < 2 {
                continue;
            }
            let rating = ratings.iter().find(|r| r.node == node).unwrap().mean();
            let amb = ambiguity_degree(sn, &doc.tree, node, AmbiguityWeights::equal());
            let perc = perceived_ambiguity(sn, &doc.tree, node);
            rows.push((label, senses, rating, amb, perc));
        }
    }
    rows.sort_by(|a, b| b.3.total_cmp(&a.3));
    for (label, senses, rating, amb, perc) in rows.iter().take(40) {
        println!("{label:12} senses={senses:2} human={rating:.2} perc={perc:.2} amb={amb:.3}");
    }
}
