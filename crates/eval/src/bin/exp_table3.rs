//! Regenerates Table 3: characteristics of the generated corpus.

use xsdf_eval::experiments::{table3, DEFAULT_SEED};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let sn = semnet::mini_wordnet();
    let corpus = corpus::Corpus::generate(sn, seed);
    let result = table3::run(sn, &corpus);
    println!("Table 3 — corpus characteristics (seed {seed})\n");
    println!("{}", result.render());
    xsdf_eval::experiments::dump_json("table3", &result);
}
