//! Writes the generated evaluation corpus to disk as pretty-printed XML
//! (plus a gold-standard sidecar per document), so the synthetic datasets
//! can be inspected, diffed across seeds, or consumed by external tools.
//!
//! Usage: `corpus_dump [seed] [output-dir]` (defaults: 2015,
//! `target/corpus`).

use corpus::Corpus;
use xsdf_eval::experiments::DEFAULT_SEED;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let out_dir = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "target/corpus".to_string());
    let sn = semnet::mini_wordnet();
    let corpus = Corpus::generate(sn, seed);
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let mut per_dataset = std::collections::HashMap::new();
    for doc in corpus.documents() {
        let idx = per_dataset
            .entry(doc.dataset)
            .and_modify(|i| *i += 1)
            .or_insert(0usize);
        let stem = format!(
            "{}-{:02}",
            doc.dataset.spec().grammar.replace(".dtd", ""),
            idx
        );
        let xml_path = format!("{out_dir}/{stem}.xml");
        std::fs::write(&xml_path, xmltree::serialize::to_string_pretty(&doc.doc))
            .expect("write XML");
        // Gold sidecar: node preorder index, label, concept key.
        let mut gold: Vec<(usize, String, String)> = doc
            .gold
            .iter()
            .map(|(n, g)| (n.index(), doc.tree.label(*n).to_string(), g.key()))
            .collect();
        gold.sort();
        let sidecar: String = gold
            .iter()
            .map(|(i, label, key)| format!("{i}\t{label}\t{key}\n"))
            .collect();
        std::fs::write(format!("{out_dir}/{stem}.gold.tsv"), sidecar).expect("write gold");
    }
    eprintln!(
        "wrote {} documents ({} gold annotations) to {out_dir}/ (seed {seed})",
        corpus.documents().len(),
        corpus.total_gold()
    );
}
