//! Diagnostic: per-dataset error listing for XSDF vs RPD.

use baselines::{Disambiguator, Rpd, XsdfDisambiguator};
use corpus::{Corpus, DatasetId};
use xsdf_eval::experiments::{choice_key, optimal_for};

fn main() {
    let sn = semnet::mini_wordnet();
    let corpus = Corpus::generate(sn, 2015);
    let samples = corpus.sample_targets(13);
    let rpd = Rpd::new();
    for &ds in &DatasetId::ALL {
        let mut xsdf_wrong = Vec::new();
        let mut rpd_wrong = Vec::new();
        let mut total = 0;
        for (doc_idx, targets) in &samples {
            let doc = &corpus.documents()[*doc_idx];
            if doc.dataset != ds {
                continue;
            }
            let xsdf = XsdfDisambiguator::new(optimal_for(ds.spec().group));
            let xa = xsdf.disambiguate_targets(sn, &doc.tree, targets);
            let ra = rpd.disambiguate_targets(sn, &doc.tree, targets);
            for &n in targets {
                total += 1;
                let gold = doc.gold[&n].key();
                let label = doc.tree.label(n);
                match xa.get(&n) {
                    Some(&c) if choice_key(sn, c) == gold => {}
                    Some(&c) => {
                        xsdf_wrong.push(format!("{label}: {} (gold {gold})", choice_key(sn, c)))
                    }
                    None => xsdf_wrong.push(format!("{label}: ABSTAIN (gold {gold})")),
                }
                match ra.get(&n) {
                    Some(&c) if choice_key(sn, c) == gold => {}
                    Some(&c) => {
                        rpd_wrong.push(format!("{label}: {} (gold {gold})", choice_key(sn, c)))
                    }
                    None => rpd_wrong.push(format!("{label}: ABSTAIN (gold {gold})")),
                }
            }
        }
        println!(
            "=== {ds} ({total} targets): XSDF {} wrong, RPD {} wrong",
            xsdf_wrong.len(),
            rpd_wrong.len()
        );
        let mut counts = std::collections::HashMap::new();
        for e in &xsdf_wrong {
            *counts.entry(e.clone()).or_insert(0) += 1;
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        for (e, c) in v.iter().take(8) {
            println!("  X {c}x {e}");
        }
        let mut counts = std::collections::HashMap::new();
        for e in &rpd_wrong {
            *counts.entry(e.clone()).or_insert(0) += 1;
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        for (e, c) in v.iter().take(5) {
            println!("  R {c}x {e}");
        }
    }
}
