//! # xsdf-eval
//!
//! The evaluation harness reproducing **every table and figure** of
//! *Resolving XML Semantic Ambiguity* (EDBT 2015, Section 4):
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table 1 (groups by ambiguity × structure) | [`experiments::table1`] | `exp_table1` |
//! | Table 2 (human/system ambiguity correlation) | [`experiments::table2`] | `exp_table2` |
//! | Table 3 (corpus characteristics) | [`experiments::table3`] | `exp_table3` |
//! | Table 4 (qualitative comparison) | [`experiments::table4`] | `exp_table4` |
//! | Figure 8 (f-value by configuration) | [`experiments::fig8`] | `exp_fig8` |
//! | Figure 9 (XSDF vs RPD vs VSD) | [`experiments::fig9`] | `exp_fig9` |
//!
//! Each experiment returns a serde-serializable result that the binaries
//! render as fixed-width text tables (and dump as JSON next to the
//! output), so paper-vs-measured comparisons in `EXPERIMENTS.md` are
//! regenerable with one command per artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod report;
pub mod stats;
pub mod tuning;

pub use metrics::{f_value, pearson, PrfScores};
pub use stats::{struct_degree, StructWeights};
