//! Property-based tests for the similarity measures over MiniWordNet:
//! bounds, symmetry, identity, and measure-specific monotonicity.

use proptest::prelude::*;
use semnet::{mini_wordnet, ConceptId};
use xsdf_semsim::{
    extended_gloss_overlap, lin, wu_palmer, CombinedSimilarity, SimilarityWeights, SparseVector,
};

fn arb_concept() -> impl Strategy<Value = ConceptId> {
    let n = mini_wordnet().len() as u32;
    (0..n).prop_map(ConceptId)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every measure is bounded, symmetric, and 1 on identity.
    #[test]
    fn measures_bounded_symmetric(a in arb_concept(), b in arb_concept()) {
        let sn = mini_wordnet();
        for (name, f) in [
            ("wp", wu_palmer as fn(_, _, _) -> f64),
            ("lin", lin as fn(_, _, _) -> f64),
            ("gloss", extended_gloss_overlap as fn(_, _, _) -> f64),
        ] {
            let ab = f(sn, a, b);
            let ba = f(sn, b, a);
            prop_assert!((0.0..=1.0).contains(&ab), "{name}: {ab}");
            prop_assert!((ab - ba).abs() < 1e-9, "{name} asymmetric: {ab} vs {ba}");
            prop_assert!((f(sn, a, a) - 1.0).abs() < 1e-9, "{name} identity");
        }
    }

    /// The combined measure stays within the convex hull of its parts.
    #[test]
    fn combined_is_convex(a in arb_concept(), b in arb_concept()) {
        let sn = mini_wordnet();
        let parts = [wu_palmer(sn, a, b), lin(sn, a, b), extended_gloss_overlap(sn, a, b)];
        let lo = parts.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = parts.iter().copied().fold(0.0f64, f64::max);
        let combined = CombinedSimilarity::default().similarity(sn, a, b);
        prop_assert!(combined >= lo - 1e-9 && combined <= hi + 1e-9);
    }

    /// Weight normalization: scaled weight triples give identical scores.
    #[test]
    fn weights_scale_invariant(a in arb_concept(), b in arb_concept(), k in 1.0f64..10.0) {
        let sn = mini_wordnet();
        let w1 = SimilarityWeights::new(1.0, 2.0, 3.0).unwrap();
        let w2 = SimilarityWeights::new(k, 2.0 * k, 3.0 * k).unwrap();
        let s1 = CombinedSimilarity::new(w1).similarity(sn, a, b);
        let s2 = CombinedSimilarity::new(w2).similarity(sn, a, b);
        prop_assert!((s1 - s2).abs() < 1e-9);
    }

    /// Sparse-vector cosine: bounded, symmetric, scale-invariant.
    #[test]
    fn cosine_properties(
        pairs in proptest::collection::vec(("[a-e]", 0.1f64..5.0), 1..8),
        scale in 0.5f64..20.0,
    ) {
        let a = SparseVector::from_pairs(pairs.iter().map(|(l, w)| (l.clone(), *w)));
        let b = SparseVector::from_pairs(pairs.iter().map(|(l, w)| (l.clone(), *w * scale)));
        prop_assert!((a.cosine(&b) - 1.0).abs() < 1e-9, "scaled copies have cosine 1");
        let c = SparseVector::from_pairs([("zzz", 1.0)]);
        prop_assert_eq!(a.cosine(&c), 0.0);
        prop_assert!((a.jaccard(&a) - 1.0).abs() < 1e-9);
    }

    /// Jaccard is bounded and symmetric for non-negative vectors.
    #[test]
    fn jaccard_bounded_symmetric(
        xs in proptest::collection::vec(("[a-f]", 0.0f64..3.0), 0..8),
        ys in proptest::collection::vec(("[a-f]", 0.0f64..3.0), 0..8),
    ) {
        let a = SparseVector::from_pairs(xs);
        let b = SparseVector::from_pairs(ys);
        let ab = a.jaccard(&b);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - b.jaccard(&a)).abs() < 1e-9);
    }

    /// Cosine is bounded and symmetric for arbitrary non-negative vectors
    /// (not just scaled copies).
    #[test]
    fn cosine_bounded_symmetric(
        xs in proptest::collection::vec(("[a-f]", 0.0f64..3.0), 0..8),
        ys in proptest::collection::vec(("[a-f]", 0.0f64..3.0), 0..8),
    ) {
        let a = SparseVector::from_pairs(xs);
        let b = SparseVector::from_pairs(ys);
        let ab = a.cosine(&b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ab), "cosine out of range: {ab}");
        prop_assert!((ab - b.cosine(&a)).abs() < 1e-9);
    }

    /// Pearson is in [-1, 1], symmetric, and its affine rescale
    /// `(r + 1) / 2` (the footnote-10 variant) lands in [0, 1].
    #[test]
    fn pearson_bounded_symmetric_and_rescales(
        xs in proptest::collection::vec(("[a-f]", 0.0f64..3.0), 0..8),
        ys in proptest::collection::vec(("[a-f]", 0.0f64..3.0), 0..8),
    ) {
        let a = SparseVector::from_pairs(xs);
        let b = SparseVector::from_pairs(ys);
        let r = a.pearson(&b);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r), "pearson out of range: {r}");
        prop_assert!((r - b.pearson(&a)).abs() < 1e-9, "pearson asymmetric");
        let rescaled = (r + 1.0) / 2.0;
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&rescaled), "rescale out of range: {rescaled}");
    }
}
