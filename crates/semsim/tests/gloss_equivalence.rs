//! Bit-for-bit equivalence of the id-based gloss kernel against the
//! original string-based implementation.
//!
//! The `reference_*` functions below are a vendored copy of the
//! pre-precomputation `Sim_Gloss` pipeline (tokenize → stop-filter → stem
//! on every call, `Option<&str>` erasure in the DP). The production kernel
//! now runs over interned `u32` token ids pulled from
//! [`semnet::GlossArtifacts`]; this test pins the refactor's contract: the
//! raw overlap is an integer-valued sum of squared phrase lengths and the
//! final score a single division, so equal inputs must give *exactly*
//! equal `f64` outputs — `assert_eq!`, not an epsilon.

use std::collections::HashSet;

use lingproc::{is_stop_word, porter_stem, tokenize_text};
use semnet::{mini_wordnet, ConceptId, SemanticNetwork};
use xsdf_semsim::extended_gloss_overlap;
use xsdf_semsim::gloss::{glosses_share_any_word, GLOSS_SATURATION};

fn reference_extended_gloss_tokens(
    sn: &SemanticNetwork,
    c: ConceptId,
    exclude: &HashSet<ConceptId>,
) -> Vec<String> {
    let mut tokens = Vec::new();
    let concept = sn.concept(c);
    for lemma in &concept.lemmas {
        tokens.extend(tokenize_text(lemma));
    }
    tokens.extend(tokenize_text(&concept.gloss));
    for &(_, neighbor) in sn.edges(c) {
        if !exclude.contains(&neighbor) {
            tokens.extend(tokenize_text(&sn.concept(neighbor).gloss));
        }
    }
    tokens.retain(|t| !is_stop_word(t));
    tokens.iter_mut().for_each(|t| *t = porter_stem(t));
    tokens
}

fn reference_shared_neighbors(
    sn: &SemanticNetwork,
    a: ConceptId,
    b: ConceptId,
) -> HashSet<ConceptId> {
    let na: HashSet<ConceptId> = sn.edges(a).iter().map(|&(_, c)| c).collect();
    sn.edges(b)
        .iter()
        .map(|&(_, c)| c)
        .filter(|c| na.contains(c) && *c != a && *c != b)
        .collect()
}

fn reference_overlap_score(a: &[String], b: &[String]) -> f64 {
    let mut a: Vec<Option<&str>> = a.iter().map(|s| Some(s.as_str())).collect();
    let mut b: Vec<Option<&str>> = b.iter().map(|s| Some(s.as_str())).collect();
    let mut score = 0.0;
    loop {
        let (len, ai, bi) = reference_longest_common_run(&a, &b);
        if len == 0 {
            return score;
        }
        score += (len * len) as f64;
        for k in 0..len {
            a[ai + k] = None;
            b[bi + k] = None;
        }
    }
}

fn reference_longest_common_run(a: &[Option<&str>], b: &[Option<&str>]) -> (usize, usize, usize) {
    let mut best = (0usize, 0usize, 0usize);
    let mut prev = vec![0usize; b.len() + 1];
    for (i, ta) in a.iter().enumerate() {
        let mut cur = vec![0usize; b.len() + 1];
        if ta.is_some() {
            for (j, tb) in b.iter().enumerate() {
                if tb.is_some() && ta == tb {
                    cur[j + 1] = prev[j] + 1;
                    if cur[j + 1] > best.0 {
                        best = (cur[j + 1], i + 1 - cur[j + 1], j + 1 - cur[j + 1]);
                    }
                }
            }
        }
        prev = cur;
    }
    best
}

fn reference_extended_gloss_overlap(sn: &SemanticNetwork, a: ConceptId, b: ConceptId) -> f64 {
    if a == b {
        return 1.0;
    }
    let shared = reference_shared_neighbors(sn, a, b);
    let ga = reference_extended_gloss_tokens(sn, a, &shared);
    let gb = reference_extended_gloss_tokens(sn, b, &shared);
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let cross = reference_overlap_score(&ga, &gb);
    cross / (cross + GLOSS_SATURATION)
}

/// A deterministic covering sample: every anchor sense the unit tests
/// exercise plus a uniform stride over the full concept table, so both
/// dense movie-domain neighborhoods (shared hypernyms, overlapping
/// glosses) and arbitrary cross-domain pairs are represented.
fn sample_concepts(sn: &SemanticNetwork) -> Vec<ConceptId> {
    let mut sample: Vec<ConceptId> = [
        "head.chief",
        "head.body_part",
        "state.government",
        "state.condition",
        "star.performer",
        "star.celestial",
        "cast.actors",
        "cast.mold",
        "picture.image",
        "play.drama",
        "kelly.grace",
        "stewart.james",
        "film.movie",
        "waffle.food",
    ]
    .iter()
    .filter_map(|k| sn.by_key(k))
    .collect();
    let n = sn.len() as u32;
    sample.extend((0..n).step_by(8).map(ConceptId));
    sample.sort_unstable();
    sample.dedup();
    sample
}

#[test]
fn id_kernel_reproduces_string_kernel_bit_for_bit() {
    let sn = mini_wordnet();
    let sample = sample_concepts(sn);
    assert!(sample.len() >= 100, "sample too small: {}", sample.len());
    let mut nonzero = 0usize;
    for (i, &a) in sample.iter().enumerate() {
        for &b in &sample[i..] {
            let expected = reference_extended_gloss_overlap(sn, a, b);
            let actual = extended_gloss_overlap(sn, a, b);
            assert_eq!(expected, actual, "gloss({a:?}, {b:?}) diverged");
            // Symmetry must also survive the precomputation.
            assert_eq!(actual, extended_gloss_overlap(sn, b, a));
            if actual > 0.0 {
                nonzero += 1;
            }
        }
    }
    // The sample must actually exercise the kernel, not just the
    // disjoint-token fast path.
    assert!(nonzero > sample.len(), "only {nonzero} non-zero pairs");
}

#[test]
fn precheck_false_implies_zero_overlap_on_sample() {
    let sn = mini_wordnet();
    let sample = sample_concepts(sn);
    for (i, &a) in sample.iter().enumerate() {
        for &b in &sample[i..] {
            if !glosses_share_any_word(sn, a, b) {
                assert_eq!(
                    extended_gloss_overlap(sn, a, b),
                    0.0,
                    "precheck false but overlap non-zero for ({a:?}, {b:?})"
                );
            }
        }
    }
}
