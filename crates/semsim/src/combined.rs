//! The combined similarity measure of Definition 9:
//!
//! ```text
//! Sim(c1, c2, S̄N) = w_Edge·Sim_Edge + w_Node·Sim_Node + w_Gloss·Sim_Gloss
//! ```
//!
//! with `w_Edge + w_Node + w_Gloss = 1` and all weights non-negative. The
//! paper's experiments use equal weights (1/3 each, footnote 12).

use std::cell::Cell;

use semnet::{ConceptId, SemanticNetwork};

use crate::cache::{LocalCache, SimilarityCache, WeightsFingerprint};
use crate::edge::wu_palmer;
use crate::gloss::extended_gloss_overlap;
use crate::node::lin;

/// Weights of the three constituent measures. Constructed through
/// [`SimilarityWeights::new`], which normalizes to sum 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityWeights {
    /// Weight of the edge-based (Wu–Palmer) measure.
    pub edge: f64,
    /// Weight of the node-based (Lin) measure.
    pub node: f64,
    /// Weight of the gloss-based (extended gloss overlap) measure.
    pub gloss: f64,
}

impl SimilarityWeights {
    /// Creates a weight triple, normalizing so the weights sum to 1.
    ///
    /// Returns `None` if any weight is negative, non-finite, or all are 0.
    pub fn new(edge: f64, node: f64, gloss: f64) -> Option<Self> {
        if !(edge.is_finite() && node.is_finite() && gloss.is_finite()) {
            return None;
        }
        if edge < 0.0 || node < 0.0 || gloss < 0.0 {
            return None;
        }
        let sum = edge + node + gloss;
        if sum <= 0.0 {
            return None;
        }
        Some(Self {
            edge: edge / sum,
            node: node / sum,
            gloss: gloss / sum,
        })
    }

    /// The paper's experimental setting: equal thirds (footnote 12).
    pub fn equal() -> Self {
        Self {
            edge: 1.0 / 3.0,
            node: 1.0 / 3.0,
            gloss: 1.0 / 3.0,
        }
    }

    /// Only the edge-based measure (an RPD/VSD-style configuration).
    pub fn edge_only() -> Self {
        Self {
            edge: 1.0,
            node: 0.0,
            gloss: 0.0,
        }
    }

    /// Only the node-based measure.
    pub fn node_only() -> Self {
        Self {
            edge: 0.0,
            node: 1.0,
            gloss: 0.0,
        }
    }

    /// Only the gloss-based measure.
    pub fn gloss_only() -> Self {
        Self {
            edge: 0.0,
            node: 0.0,
            gloss: 1.0,
        }
    }

    /// A stable fingerprint of this weight configuration, embedded in every
    /// similarity cache key (see [`crate::cache::PairKey`]). FNV-1a over
    /// the IEEE-754 bit patterns of the (normalized) weights: two
    /// configurations fingerprint equal exactly when their weight triples
    /// are bitwise identical, so differently weighted measures sharing one
    /// cache can never cross-read each other's scores.
    pub fn fingerprint(&self) -> WeightsFingerprint {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for w in [self.edge, self.node, self.gloss] {
            for byte in w.to_bits().to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        }
        WeightsFingerprint(hash)
    }
}

impl Default for SimilarityWeights {
    fn default() -> Self {
        Self::equal()
    }
}

/// The combined, weighted semantic similarity of Definition 9, with a
/// per-pair memo cache (sense-pair similarities are re-queried many times
/// during disambiguation of a document).
///
/// The cache is pluggable through [`SimilarityCache`]: the default
/// [`LocalCache`] is a plain unsynchronized map for serial callers, while
/// concurrent batch engines pass a shared thread-safe cache (e.g. behind an
/// [`Arc`](std::sync::Arc)) via [`CombinedSimilarity::with_cache`] so all
/// workers reuse each other's scores.
#[derive(Debug, Clone)]
pub struct CombinedSimilarity<C: SimilarityCache = LocalCache> {
    weights: SimilarityWeights,
    /// Cached `weights.fingerprint()` — computed once at construction,
    /// copied into every cache key on the hot path.
    fingerprint: WeightsFingerprint,
    cache: C,
    /// How many pairs the gloss kernel actually scored through this measure
    /// (cache misses with a positive gloss weight) — the per-kernel metric
    /// the batch runtime aggregates.
    gloss_pairs: Cell<u64>,
}

impl CombinedSimilarity {
    /// A combined measure with the given weights and a fresh single-threaded
    /// cache.
    pub fn new(weights: SimilarityWeights) -> Self {
        Self::with_cache(weights, LocalCache::new())
    }
}

impl<C: SimilarityCache> CombinedSimilarity<C> {
    /// A combined measure scoring through the given cache. The cache may be
    /// shared: `&C` and `Arc<C>` implement [`SimilarityCache`] whenever `C`
    /// does, so several measures can memoize into one table.
    pub fn with_cache(weights: SimilarityWeights, cache: C) -> Self {
        Self {
            weights,
            fingerprint: weights.fingerprint(),
            cache,
            gloss_pairs: Cell::new(0),
        }
    }

    /// The configured weights.
    pub fn weights(&self) -> SimilarityWeights {
        self.weights
    }

    /// The underlying cache.
    pub fn cache(&self) -> &C {
        &self.cache
    }

    /// `Sim(c1, c2, S̄N) ∈ \[0, 1\]`.
    pub fn similarity(&self, sn: &SemanticNetwork, a: ConceptId, b: ConceptId) -> f64 {
        let key = if a <= b {
            (self.fingerprint, a, b)
        } else {
            (self.fingerprint, b, a)
        };
        if let Some(v) = self.cache.lookup(key) {
            return v;
        }
        let w = self.weights;
        let mut score = 0.0;
        if w.edge > 0.0 {
            score += w.edge * wu_palmer(sn, a, b);
        }
        if w.node > 0.0 {
            score += w.node * lin(sn, a, b);
        }
        if w.gloss > 0.0 {
            score += w.gloss * extended_gloss_overlap(sn, a, b);
            self.gloss_pairs.set(self.gloss_pairs.get() + 1);
        }
        let score = score.clamp(0.0, 1.0);
        self.cache.store(key, score);
        score
    }

    /// Number of cached pair similarities (diagnostics).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// How many pairs the gloss kernel scored through this measure (cache
    /// misses with `weights.gloss > 0`; hits served from the cache don't
    /// count).
    pub fn gloss_pairs_scored(&self) -> u64 {
        self.gloss_pairs.get()
    }
}

impl Default for CombinedSimilarity {
    fn default() -> Self {
        Self::new(SimilarityWeights::equal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    fn id(key: &str) -> ConceptId {
        mini_wordnet().by_key(key).unwrap()
    }

    #[test]
    fn weights_normalize() {
        let w = SimilarityWeights::new(2.0, 1.0, 1.0).unwrap();
        assert!((w.edge - 0.5).abs() < 1e-12);
        assert!((w.edge + w.node + w.gloss - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_weights_rejected() {
        assert!(SimilarityWeights::new(-1.0, 1.0, 1.0).is_none());
        assert!(SimilarityWeights::new(0.0, 0.0, 0.0).is_none());
        assert!(SimilarityWeights::new(f64::NAN, 1.0, 1.0).is_none());
        assert!(SimilarityWeights::new(f64::INFINITY, 1.0, 1.0).is_none());
    }

    #[test]
    fn equal_weights_sum_to_one() {
        let w = SimilarityWeights::equal();
        assert!((w.edge + w.node + w.gloss - 1.0).abs() < 1e-12);
    }

    #[test]
    fn combined_is_convex_combination() {
        let sn = mini_wordnet();
        let (a, b) = (id("cast.actors"), id("star.performer"));
        let e = wu_palmer(sn, a, b);
        let n = crate::node::lin(sn, a, b);
        let g = crate::gloss::extended_gloss_overlap(sn, a, b);
        let sim = CombinedSimilarity::default().similarity(sn, a, b);
        let lo = e.min(n).min(g);
        let hi = e.max(n).max(g);
        assert!(
            sim >= lo - 1e-9 && sim <= hi + 1e-9,
            "{sim} not within [{lo}, {hi}]"
        );
    }

    #[test]
    fn single_measure_configs_match_measures() {
        let sn = mini_wordnet();
        let (a, b) = (id("kelly.grace"), id("stewart.james"));
        let edge_only = CombinedSimilarity::new(SimilarityWeights::edge_only());
        assert!((edge_only.similarity(sn, a, b) - wu_palmer(sn, a, b)).abs() < 1e-12);
        let node_only = CombinedSimilarity::new(SimilarityWeights::node_only());
        assert!((node_only.similarity(sn, a, b) - crate::node::lin(sn, a, b)).abs() < 1e-12);
    }

    #[test]
    fn cache_hit_returns_same_value() {
        let sn = mini_wordnet();
        let sim = CombinedSimilarity::default();
        let (a, b) = (id("cast.actors"), id("film.movie"));
        let v1 = sim.similarity(sn, a, b);
        let v2 = sim.similarity(sn, b, a); // symmetric key
        assert_eq!(v1, v2);
        assert_eq!(sim.cache_len(), 1);
    }

    #[test]
    fn identity_is_one() {
        let sn = mini_wordnet();
        let sim = CombinedSimilarity::default();
        assert!((sim.similarity(sn, id("actor.n"), id("actor.n")) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fingerprints_distinguish_weight_configs() {
        let configs = [
            SimilarityWeights::equal(),
            SimilarityWeights::edge_only(),
            SimilarityWeights::node_only(),
            SimilarityWeights::gloss_only(),
            SimilarityWeights::new(2.0, 1.0, 1.0).unwrap(),
        ];
        for (i, wa) in configs.iter().enumerate() {
            for (j, wb) in configs.iter().enumerate() {
                assert_eq!(
                    wa.fingerprint() == wb.fingerprint(),
                    i == j,
                    "fingerprint collision or instability between {wa:?} and {wb:?}"
                );
            }
        }
        // Construction route must not matter, only the normalized triple.
        assert_eq!(
            SimilarityWeights::new(1.0, 1.0, 1.0).unwrap().fingerprint(),
            SimilarityWeights::equal().fingerprint()
        );
    }

    #[test]
    fn shared_cache_with_different_weights_never_cross_reads() {
        // Regression test for the cache-poisoning bug: two measures with
        // different weights writing through ONE shared cache must produce
        // exactly the scores they'd produce with fresh private caches.
        let sn = mini_wordnet();
        let shared = LocalCache::new();
        let mixed_a = CombinedSimilarity::with_cache(SimilarityWeights::equal(), &shared);
        let mixed_b = CombinedSimilarity::with_cache(SimilarityWeights::gloss_only(), &shared);
        let fresh_a = CombinedSimilarity::new(SimilarityWeights::equal());
        let fresh_b = CombinedSimilarity::new(SimilarityWeights::gloss_only());
        let pairs = [
            (id("cast.actors"), id("star.performer")),
            (id("film.movie"), id("cast.actors")),
            (id("kelly.grace"), id("stewart.james")),
        ];
        for &(a, b) in &pairs {
            // Interleave so each config's entry is already present when the
            // other scores the same pair.
            assert_eq!(mixed_a.similarity(sn, a, b), fresh_a.similarity(sn, a, b));
            assert_eq!(mixed_b.similarity(sn, a, b), fresh_b.similarity(sn, a, b));
            assert_eq!(mixed_a.similarity(sn, a, b), fresh_a.similarity(sn, a, b));
        }
        // One entry per (weights, pair), not per pair.
        assert_eq!(shared.len(), 2 * pairs.len());
    }

    #[test]
    fn gloss_pairs_counter_counts_misses_only() {
        let sn = mini_wordnet();
        let sim = CombinedSimilarity::default();
        let (a, b) = (id("cast.actors"), id("film.movie"));
        assert_eq!(sim.gloss_pairs_scored(), 0);
        sim.similarity(sn, a, b);
        assert_eq!(sim.gloss_pairs_scored(), 1);
        sim.similarity(sn, b, a); // cache hit — kernel not re-run
        assert_eq!(sim.gloss_pairs_scored(), 1);
        let edge_only = CombinedSimilarity::new(SimilarityWeights::edge_only());
        edge_only.similarity(sn, a, b);
        assert_eq!(edge_only.gloss_pairs_scored(), 0);
    }
}
