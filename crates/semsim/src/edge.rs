//! Edge-based similarity: Wu & Palmer (1994), the paper's `Sim_Edge`.

use semnet::graph::{ancestors_with_distance, lowest_common_subsumer};
use semnet::{ConceptId, SemanticNetwork};

/// Wu–Palmer similarity:
///
/// ```text
/// sim(c1, c2) = 2·depth(lcs) / (len(c1, lcs) + len(c2, lcs) + 2·depth(lcs))
/// ```
///
/// where `lcs` is the lowest common subsumer and `len` counts is-a edges.
/// Ranges over `(0, 1]`, with 1 for identical concepts, and 0 when the
/// concepts share no taxonomy root.
pub fn wu_palmer(sn: &SemanticNetwork, a: ConceptId, b: ConceptId) -> f64 {
    if a == b {
        return 1.0;
    }
    let Some(lcs) = lowest_common_subsumer(sn, a, b) else {
        return 0.0;
    };
    let depth_lcs = sn.depth(lcs);
    if depth_lcs == u32::MAX {
        return 0.0;
    }
    let anc_a = ancestors_with_distance(sn, a);
    let anc_b = ancestors_with_distance(sn, b);
    let la = anc_a.get(&lcs).copied().unwrap_or(0) as f64;
    let lb = anc_b.get(&lcs).copied().unwrap_or(0) as f64;
    let d = depth_lcs as f64;
    if la + lb + 2.0 * d == 0.0 {
        // Both concepts *are* the root.
        return 1.0;
    }
    (2.0 * d) / (la + lb + 2.0 * d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    fn id(key: &str) -> ConceptId {
        mini_wordnet().by_key(key).unwrap()
    }

    #[test]
    fn identity_is_one() {
        let sn = mini_wordnet();
        assert_eq!(wu_palmer(sn, id("actor.n"), id("actor.n")), 1.0);
    }

    #[test]
    fn symmetric() {
        let sn = mini_wordnet();
        let (a, b) = (id("star.performer"), id("king.monarch"));
        assert_eq!(wu_palmer(sn, a, b), wu_palmer(sn, b, a));
    }

    #[test]
    fn range_is_unit_interval() {
        let sn = mini_wordnet();
        let keys = [
            "star.performer",
            "star.celestial",
            "cast.actors",
            "entity.n",
            "waffle.food",
        ];
        for ka in keys {
            for kb in keys {
                let s = wu_palmer(sn, id(ka), id(kb));
                assert!((0.0..=1.0).contains(&s), "wp({ka},{kb}) = {s}");
            }
        }
    }

    #[test]
    fn close_concepts_beat_distant_ones() {
        let sn = mini_wordnet();
        // star-the-performer is closer to actor than to star-the-celestial-body.
        let performer_actor = wu_palmer(sn, id("star.performer"), id("actor.n"));
        let performer_celestial = wu_palmer(sn, id("star.performer"), id("star.celestial"));
        assert!(
            performer_actor > performer_celestial,
            "{performer_actor} <= {performer_celestial}"
        );
    }

    #[test]
    fn siblings_score_higher_than_cousins() {
        let sn = mini_wordnet();
        let kelly_stewart = wu_palmer(sn, id("kelly.grace"), id("stewart.james"));
        let kelly_waffle = wu_palmer(sn, id("kelly.grace"), id("waffle.food"));
        assert!(kelly_stewart > kelly_waffle);
    }

    #[test]
    fn movie_domain_coherence() {
        // Within Figure 1's intended senses: Grace Kelly and a star (the
        // performer) share the deep "actor" subsumer, while cast-the-mold
        // and star-the-celestial-body only meet near the taxonomy root.
        // (cast.actors vs star.performer crosses the group/person branch
        // split, which Wu–Palmer alone scores low — exactly why Definition 9
        // combines it with gloss- and node-based evidence.)
        let sn = mini_wordnet();
        let coherent = wu_palmer(sn, id("kelly.grace"), id("star.performer"));
        let incoherent = wu_palmer(sn, id("cast.mold"), id("star.celestial"));
        assert!(coherent > incoherent, "{coherent} <= {incoherent}");
    }

    #[test]
    fn root_with_itself() {
        let sn = mini_wordnet();
        assert_eq!(wu_palmer(sn, id("entity.n"), id("entity.n")), 1.0);
    }
}
