//! Gloss-based similarity: a normalized extension of Banerjee & Pedersen's
//! *extended gloss overlaps* (2003), the paper's `Sim_Gloss`.
//!
//! The extended gloss of a concept is its own gloss plus the glosses of its
//! directly related concepts (hypernyms, hyponyms, meronyms, …). The score
//! accumulates squared lengths of maximal common word phrases between the
//! two extended glosses (so an n-word shared phrase counts n², rewarding
//! longer overlaps), then normalizes by the score each gloss achieves
//! against itself, yielding `\[0, 1\]`.

use std::collections::HashSet;

use lingproc::{is_stop_word, tokenize_text};
use semnet::{ConceptId, SemanticNetwork};

/// Builds the extended-gloss token sequence of a concept: its gloss, its
/// lemmas, and the glosses of direct neighbors, tokenized with stop words
/// removed. Neighbors in `exclude` contribute nothing — see
/// [`extended_gloss_overlap`] for why shared neighbors are dropped.
fn extended_gloss_tokens(
    sn: &SemanticNetwork,
    c: ConceptId,
    exclude: &HashSet<ConceptId>,
) -> Vec<String> {
    let mut tokens = Vec::new();
    let concept = sn.concept(c);
    for lemma in &concept.lemmas {
        tokens.extend(tokenize_text(lemma));
    }
    tokens.extend(tokenize_text(&concept.gloss));
    for &(_, neighbor) in sn.edges(c) {
        if !exclude.contains(&neighbor) {
            tokens.extend(tokenize_text(&sn.concept(neighbor).gloss));
        }
    }
    tokens.retain(|t| !is_stop_word(t));
    // Stemming makes "actors"/"actor" and "plays"/"play" overlap, exactly
    // the morphology-blindness fix the linguistic pre-processing stage
    // applies everywhere else in the pipeline.
    tokens
        .iter_mut()
        .for_each(|t| *t = lingproc::porter_stem(t));
    tokens
}

/// The neighbors shared by both concepts (excluding the concepts
/// themselves). Two sibling senses share their hypernym: comparing the
/// parent's gloss against itself would score `|gloss|²` for *any* sibling
/// pair, drowning the lexical signal. That common-ancestry evidence is
/// already what the edge- and node-based measures quantify, so the gloss
/// measure drops it and stays purely lexical.
fn shared_neighbors(sn: &SemanticNetwork, a: ConceptId, b: ConceptId) -> HashSet<ConceptId> {
    let na: HashSet<ConceptId> = sn.edges(a).iter().map(|&(_, c)| c).collect();
    sn.edges(b)
        .iter()
        .map(|&(_, c)| c)
        .filter(|c| na.contains(c) && *c != a && *c != b)
        .collect()
}

/// Greedy phrase-overlap score of Banerjee–Pedersen: repeatedly find the
/// longest common contiguous word sequence, add its squared length, remove
/// it from both sides, until no overlap of length ≥ 1 remains.
fn overlap_score(a: &[String], b: &[String]) -> f64 {
    // Dynamic programming for the longest common substring (of words).
    // Repeating until exhaustion is O(n³)-ish in the worst case but glosses
    // are short (tens of tokens), so this stays cheap.
    let mut a: Vec<Option<&str>> = a.iter().map(|s| Some(s.as_str())).collect();
    let mut b: Vec<Option<&str>> = b.iter().map(|s| Some(s.as_str())).collect();
    let mut score = 0.0;
    loop {
        let (len, ai, bi) = longest_common_run(&a, &b);
        if len == 0 {
            return score;
        }
        score += (len * len) as f64;
        for k in 0..len {
            a[ai + k] = None;
            b[bi + k] = None;
        }
    }
}

/// Longest common contiguous run of non-erased tokens; returns
/// `(length, start_a, start_b)`.
fn longest_common_run(a: &[Option<&str>], b: &[Option<&str>]) -> (usize, usize, usize) {
    let mut best = (0usize, 0usize, 0usize);
    let mut prev = vec![0usize; b.len() + 1];
    for (i, ta) in a.iter().enumerate() {
        let mut cur = vec![0usize; b.len() + 1];
        if ta.is_some() {
            for (j, tb) in b.iter().enumerate() {
                if tb.is_some() && ta == tb {
                    cur[j + 1] = prev[j] + 1;
                    if cur[j + 1] > best.0 {
                        best = (cur[j + 1], i + 1 - cur[j + 1], j + 1 - cur[j + 1]);
                    }
                }
            }
        }
        prev = cur;
    }
    best
}

/// Saturation constant of the gloss-overlap normalization: a raw
/// Banerjee–Pedersen overlap equal to `GLOSS_SATURATION` maps to 0.5.
/// Sixteen corresponds to one shared 4-word phrase — strong lexical
/// evidence — while a single accidental shared word (raw score 1) maps to
/// ≈ 0.06.
pub const GLOSS_SATURATION: f64 = 16.0;

/// Normalized extended gloss overlap similarity in `\[0, 1\]`:
///
/// ```text
/// sim(c1, c2) = overlap(g1, g2) / (overlap(g1, g2) + K)
/// ```
///
/// where `g` is the extended gloss and `K` is [`GLOSS_SATURATION`]. The
/// raw Banerjee–Pedersen overlap is an unbounded sum of squared phrase
/// lengths; this saturating map is the "normalized extension" the paper
/// applies for Definition 9 — it is strictly monotone in the raw score
/// (preserving every ordering the original measure produces) and
/// asymptotically reaches 1.
pub fn extended_gloss_overlap(sn: &SemanticNetwork, a: ConceptId, b: ConceptId) -> f64 {
    if a == b {
        return 1.0;
    }
    let shared = shared_neighbors(sn, a, b);
    let ga = extended_gloss_tokens(sn, a, &shared);
    let gb = extended_gloss_tokens(sn, b, &shared);
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let cross = overlap_score(&ga, &gb);
    cross / (cross + GLOSS_SATURATION)
}

/// Fast pre-check used by callers that want to skip the quadratic phrase
/// matching when the glosses share no content word at all.
pub fn glosses_share_any_word(sn: &SemanticNetwork, a: ConceptId, b: ConceptId) -> bool {
    let shared = shared_neighbors(sn, a, b);
    let ga: HashSet<String> = extended_gloss_tokens(sn, a, &shared).into_iter().collect();
    extended_gloss_tokens(sn, b, &shared)
        .iter()
        .any(|t| ga.contains(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    fn id(key: &str) -> ConceptId {
        mini_wordnet().by_key(key).unwrap()
    }

    fn s(x: &str) -> String {
        x.to_string()
    }

    #[test]
    fn overlap_counts_squared_phrases() {
        let a = vec![s("motion"), s("picture"), s("shown"), s("theater")];
        let b = vec![s("motion"), s("picture"), s("industry")];
        // "motion picture" is a 2-word phrase → 4.
        assert_eq!(overlap_score(&a, &b), 4.0);
    }

    #[test]
    fn overlap_greedy_removes_used_tokens() {
        let a = vec![s("star"), s("star")];
        let b = vec![s("star")];
        // Single "star" matches once only.
        assert_eq!(overlap_score(&a, &b), 1.0);
    }

    #[test]
    fn longer_phrases_beat_scattered_words() {
        let a = vec![s("a"), s("b"), s("c")];
        let b_phrase = vec![s("a"), s("b"), s("c")];
        let b_scattered = vec![s("a"), s("x"), s("b"), s("y"), s("c")];
        assert!(overlap_score(&a, &b_phrase) > overlap_score(&a, &b_scattered));
    }

    #[test]
    fn identity_is_one() {
        let sn = mini_wordnet();
        assert_eq!(
            extended_gloss_overlap(sn, id("cast.actors"), id("cast.actors")),
            1.0
        );
    }

    #[test]
    fn bounded_and_symmetric() {
        let sn = mini_wordnet();
        let keys = ["cast.actors", "star.performer", "film.movie", "waffle.food"];
        for ka in keys {
            for kb in keys {
                let v = extended_gloss_overlap(sn, id(ka), id(kb));
                assert!((0.0..=1.0).contains(&v), "gloss({ka},{kb}) = {v}");
                let r = extended_gloss_overlap(sn, id(kb), id(ka));
                assert!((v - r).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn movie_glosses_overlap_more_than_cross_domain() {
        let sn = mini_wordnet();
        // "cast of a motion picture" vs "actor in a motion picture":
        // the shared phrase "motion picture" should dominate.
        let coherent = extended_gloss_overlap(sn, id("cast.actors"), id("star.performer"));
        let incoherent = extended_gloss_overlap(sn, id("cast.mold"), id("waffle.food"));
        assert!(coherent > incoherent, "{coherent} <= {incoherent}");
    }

    #[test]
    fn share_any_word_precheck_consistent() {
        let sn = mini_wordnet();
        let (a, b) = (id("cast.actors"), id("star.performer"));
        if extended_gloss_overlap(sn, a, b) > 0.0 {
            assert!(glosses_share_any_word(sn, a, b));
        }
    }

    #[test]
    fn empty_vs_anything_is_zero() {
        let a: Vec<String> = vec![];
        let b = vec![s("x")];
        assert_eq!(overlap_score(&a, &b), 0.0);
    }
}
