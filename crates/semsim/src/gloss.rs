//! Gloss-based similarity: a normalized extension of Banerjee & Pedersen's
//! *extended gloss overlaps* (2003), the paper's `Sim_Gloss`.
//!
//! The extended gloss of a concept is its own gloss plus the glosses of its
//! directly related concepts (hypernyms, hyponyms, meronyms, …). The score
//! accumulates squared lengths of maximal common word phrases between the
//! two extended glosses (so an n-word shared phrase counts n², rewarding
//! longer overlaps), then normalizes by a saturation constant, yielding
//! `\[0, 1\]`.
//!
//! The kernel runs entirely over interned `u32` token ids from
//! [`semnet::GlossArtifacts`]: tokenization, stop filtering and stemming
//! happen once per network, not once per scored pair, and the quadratic
//! phrase matching compares machine words instead of strings. Interning is
//! injective (distinct tokens get distinct ids), so id equality coincides
//! with string equality and the id-space scores are bit-for-bit identical
//! to the historical string-space implementation (the
//! `gloss_equivalence` integration test pins this down pair by pair).

use semnet::{ConceptId, SemanticNetwork};

/// Sentinel marking an erased (already consumed) token position inside
/// [`overlap_score`]. Real token ids are dense indices into the artifact
/// vocabulary, which never plausibly reaches `u32::MAX` entries.
const ERASED: u32 = u32::MAX;

/// Greedy phrase-overlap score of Banerjee–Pedersen: repeatedly find the
/// longest common contiguous token-id sequence, add its squared length,
/// erase it from both sides, until no overlap of length ≥ 1 remains.
fn overlap_score(a: &[u32], b: &[u32]) -> f64 {
    // Repeating until exhaustion is O(n³)-ish in the worst case but glosses
    // are short (tens of tokens), so this stays cheap — and after the id
    // rewrite each DP cell is one integer compare.
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    let mut score = 0.0;
    loop {
        let (len, ai, bi) = longest_common_run(&a, &b, &mut prev, &mut cur);
        if len == 0 {
            return score;
        }
        score += (len * len) as f64;
        for k in 0..len {
            a[ai + k] = ERASED;
            b[bi + k] = ERASED;
        }
    }
}

/// Longest common contiguous run of non-erased token ids; returns
/// `(length, start_a, start_b)`. `prev`/`cur` are caller scratch rows of
/// length `b.len() + 1` (reused across the greedy iterations to avoid
/// re-allocating per round).
fn longest_common_run(
    a: &[u32],
    b: &[u32],
    prev: &mut Vec<usize>,
    cur: &mut Vec<usize>,
) -> (usize, usize, usize) {
    let mut best = (0usize, 0usize, 0usize);
    prev.fill(0);
    for (i, &ta) in a.iter().enumerate() {
        cur.fill(0);
        if ta != ERASED {
            for (j, &tb) in b.iter().enumerate() {
                // `ta != ERASED` above means a matching `tb` cannot be the
                // sentinel either, so erased positions never pair up.
                if ta == tb {
                    cur[j + 1] = prev[j] + 1;
                    if cur[j + 1] > best.0 {
                        best = (cur[j + 1], i + 1 - cur[j + 1], j + 1 - cur[j + 1]);
                    }
                }
            }
        }
        std::mem::swap(prev, cur);
    }
    best
}

/// Saturation constant of the gloss-overlap normalization: a raw
/// Banerjee–Pedersen overlap equal to `GLOSS_SATURATION` maps to 0.5.
/// Sixteen corresponds to one shared 4-word phrase — strong lexical
/// evidence — while a single accidental shared word (raw score 1) maps to
/// ≈ 0.06.
pub const GLOSS_SATURATION: f64 = 16.0;

/// Normalized extended gloss overlap similarity in `\[0, 1\]`:
///
/// ```text
/// sim(c1, c2) = overlap(g1, g2) / (overlap(g1, g2) + K)
/// ```
///
/// where `g` is the extended gloss and `K` is [`GLOSS_SATURATION`]. The
/// raw Banerjee–Pedersen overlap is an unbounded sum of squared phrase
/// lengths; this saturating map is the "normalized extension" the paper
/// applies for Definition 9 — it is strictly monotone in the raw score
/// (preserving every ordering the original measure produces) and
/// asymptotically reaches 1.
///
/// Neighbors shared by both concepts contribute to neither extended gloss.
/// Two sibling senses share their hypernym: comparing the parent's gloss
/// against itself would score `|gloss|²` for *any* sibling pair, drowning
/// the lexical signal. That common-ancestry evidence is already what the
/// edge- and node-based measures quantify, so the gloss measure drops it
/// and stays purely lexical.
pub fn extended_gloss_overlap(sn: &SemanticNetwork, a: ConceptId, b: ConceptId) -> f64 {
    if a == b {
        return 1.0;
    }
    let art = sn.gloss_artifacts();
    // Disjoint token *sets* (supersets of every exclusion-filtered
    // sequence) guarantee a zero raw overlap, which maps to exactly 0.0 —
    // the same value the full kernel would produce. This also covers the
    // empty-gloss case.
    if !art.token_sets_intersect(a, b) {
        return 0.0;
    }
    let shared = art.shared_neighbors(a, b);
    let cross = if shared.is_empty() {
        overlap_score(art.extended_gloss(a), art.extended_gloss(b))
    } else {
        let mut ga = Vec::new();
        let mut gb = Vec::new();
        art.extended_gloss_excluding(sn, a, &shared, &mut ga);
        art.extended_gloss_excluding(sn, b, &shared, &mut gb);
        if ga.is_empty() || gb.is_empty() {
            return 0.0;
        }
        overlap_score(&ga, &gb)
    };
    cross / (cross + GLOSS_SATURATION)
}

/// Fast pre-check used by callers that want to skip the quadratic phrase
/// matching: `false` guarantees [`extended_gloss_overlap`] returns 0.
///
/// Runs a merge walk over the two precomputed sorted token-id sets — no
/// tokenization, no allocation. The check is deliberately conservative: it
/// ignores the shared-neighbor exclusion (the sets are supersets of the
/// sequences actually scored), so it may return `true` for a pair whose
/// exclusion-filtered overlap is still 0, but never the reverse.
pub fn glosses_share_any_word(sn: &SemanticNetwork, a: ConceptId, b: ConceptId) -> bool {
    sn.gloss_artifacts().token_sets_intersect(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    fn id(key: &str) -> ConceptId {
        mini_wordnet().by_key(key).unwrap()
    }

    /// Interns two string token lists into a shared id space, mirroring
    /// what [`semnet::GlossArtifacts`] does for real glosses — lets the
    /// unit tests keep exercising the kernel with readable inputs.
    fn intern2(a: &[&str], b: &[&str]) -> (Vec<u32>, Vec<u32>) {
        let mut table: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
        let mut intern = |tokens: &[&str]| -> Vec<u32> {
            tokens
                .iter()
                .map(|t| {
                    let next = table.len() as u32;
                    *table.entry(t.to_string()).or_insert(next)
                })
                .collect()
        };
        let ia = intern(a);
        let ib = intern(b);
        (ia, ib)
    }

    fn score(a: &[&str], b: &[&str]) -> f64 {
        let (ia, ib) = intern2(a, b);
        overlap_score(&ia, &ib)
    }

    #[test]
    fn overlap_counts_squared_phrases() {
        // "motion picture" is a 2-word phrase → 4.
        assert_eq!(
            score(
                &["motion", "picture", "shown", "theater"],
                &["motion", "picture", "industry"]
            ),
            4.0
        );
    }

    #[test]
    fn overlap_greedy_removes_used_tokens() {
        // Single "star" matches once only.
        assert_eq!(score(&["star", "star"], &["star"]), 1.0);
    }

    #[test]
    fn longer_phrases_beat_scattered_words() {
        let phrase = score(&["a", "b", "c"], &["a", "b", "c"]);
        let scattered = score(&["a", "b", "c"], &["a", "x", "b", "y", "c"]);
        assert!(phrase > scattered);
    }

    #[test]
    fn erased_positions_never_match_each_other() {
        // Both sides contain a repeated pair; after "a b" is consumed the
        // erased holes must not line up as a phantom run.
        assert_eq!(score(&["a", "b", "a", "b"], &["a", "b"]), 4.0);
    }

    #[test]
    fn identity_is_one() {
        let sn = mini_wordnet();
        assert_eq!(
            extended_gloss_overlap(sn, id("cast.actors"), id("cast.actors")),
            1.0
        );
    }

    #[test]
    fn bounded_and_symmetric() {
        let sn = mini_wordnet();
        let keys = ["cast.actors", "star.performer", "film.movie", "waffle.food"];
        for ka in keys {
            for kb in keys {
                let v = extended_gloss_overlap(sn, id(ka), id(kb));
                assert!((0.0..=1.0).contains(&v), "gloss({ka},{kb}) = {v}");
                let r = extended_gloss_overlap(sn, id(kb), id(ka));
                assert!((v - r).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn movie_glosses_overlap_more_than_cross_domain() {
        let sn = mini_wordnet();
        // "cast of a motion picture" vs "actor in a motion picture":
        // the shared phrase "motion picture" should dominate.
        let coherent = extended_gloss_overlap(sn, id("cast.actors"), id("star.performer"));
        let incoherent = extended_gloss_overlap(sn, id("cast.mold"), id("waffle.food"));
        assert!(coherent > incoherent, "{coherent} <= {incoherent}");
    }

    #[test]
    fn share_any_word_precheck_consistent() {
        let sn = mini_wordnet();
        // false ⇒ overlap must be exactly 0 — over every pair drawn from a
        // cross-domain anchor set.
        let keys = [
            "cast.actors",
            "cast.mold",
            "star.performer",
            "star.celestial",
            "film.movie",
            "waffle.food",
            "kelly.grace",
        ];
        for ka in keys {
            for kb in keys {
                let (a, b) = (id(ka), id(kb));
                if !glosses_share_any_word(sn, a, b) {
                    assert_eq!(
                        extended_gloss_overlap(sn, a, b),
                        0.0,
                        "precheck false but overlap > 0 for ({ka}, {kb})"
                    );
                }
                if a != b && extended_gloss_overlap(sn, a, b) > 0.0 {
                    assert!(glosses_share_any_word(sn, a, b));
                }
            }
        }
    }

    #[test]
    fn empty_vs_anything_is_zero() {
        assert_eq!(score(&[], &["x"]), 0.0);
    }
}
