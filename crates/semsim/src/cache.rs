//! Pluggable memo caches for pairwise similarity scores.
//!
//! [`CombinedSimilarity`](crate::CombinedSimilarity) re-queries the same
//! concept pairs many times while disambiguating a document, so it memoizes
//! scores behind the [`SimilarityCache`] trait. Serial callers get the
//! zero-synchronization [`LocalCache`] by default; concurrent batch engines
//! (the `xsdf-runtime` crate) plug in a shared, thread-safe implementation
//! so sense pairs computed for one document are reused across all workers.

use semnet::ConceptId;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// A symmetric concept-pair key: callers normalize `(a, b)` so that
/// `a <= b` before lookup, making `sim(a, b)` and `sim(b, a)` one entry.
pub type PairKey = (ConceptId, ConceptId);

/// A memo table for pairwise similarity scores.
///
/// Methods take `&self` so implementations choose their own interior
/// mutability: [`LocalCache`] uses a [`RefCell`], shared implementations use
/// locks or atomics. Implementations may drop entries (e.g. under memory
/// pressure) — the contract is only that [`lookup`](Self::lookup) returns a
/// value previously passed to [`store`](Self::store) for that key, or `None`.
pub trait SimilarityCache {
    /// The cached score for `key`, if present.
    fn lookup(&self, key: PairKey) -> Option<f64>;

    /// Records the score for `key`.
    fn store(&self, key: PairKey, value: f64);

    /// Number of cached pairs (diagnostics).
    fn len(&self) -> usize;

    /// Whether the cache holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The default single-threaded cache: an unsynchronized hash map.
#[derive(Debug, Clone, Default)]
pub struct LocalCache {
    map: RefCell<HashMap<PairKey, f64>>,
}

impl LocalCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SimilarityCache for LocalCache {
    fn lookup(&self, key: PairKey) -> Option<f64> {
        self.map.borrow().get(&key).copied()
    }

    fn store(&self, key: PairKey, value: f64) {
        self.map.borrow_mut().insert(key, value);
    }

    fn len(&self) -> usize {
        self.map.borrow().len()
    }
}

impl<C: SimilarityCache + ?Sized> SimilarityCache for &C {
    fn lookup(&self, key: PairKey) -> Option<f64> {
        (**self).lookup(key)
    }

    fn store(&self, key: PairKey, value: f64) {
        (**self).store(key, value)
    }

    fn len(&self) -> usize {
        (**self).len()
    }
}

impl<C: SimilarityCache + ?Sized> SimilarityCache for Arc<C> {
    fn lookup(&self, key: PairKey) -> Option<f64> {
        (**self).lookup(key)
    }

    fn store(&self, key: PairKey, value: f64) {
        (**self).store(key, value)
    }

    fn len(&self) -> usize {
        (**self).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    fn key(a: &str, b: &str) -> PairKey {
        let sn = mini_wordnet();
        let (a, b) = (sn.by_key(a).unwrap(), sn.by_key(b).unwrap());
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    #[test]
    fn local_cache_round_trips() {
        let cache = LocalCache::new();
        let k = key("cast.actors", "star.performer");
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(k), None);
        cache.store(k, 0.75);
        assert_eq!(cache.lookup(k), Some(0.75));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn reference_and_arc_forward() {
        let cache = LocalCache::new();
        let k = key("film.movie", "cast.actors");
        {
            let by_ref: &LocalCache = &cache;
            by_ref.store(k, 0.5);
        }
        assert_eq!(cache.lookup(k), Some(0.5));
        let shared = Arc::new(LocalCache::new());
        shared.store(k, 0.25);
        assert_eq!(shared.len(), 1);
    }
}
