//! Pluggable memo caches for pairwise similarity scores and concept
//! context vectors.
//!
//! [`CombinedSimilarity`](crate::CombinedSimilarity) re-queries the same
//! concept pairs many times while disambiguating a document, so it memoizes
//! scores behind the [`SimilarityCache`] trait. Serial callers get the
//! zero-synchronization [`LocalCache`] by default; concurrent batch engines
//! (the `xsdf-runtime` crate) plug in a shared, thread-safe implementation
//! so sense pairs computed for one document are reused across all workers.
//!
//! ## Key discipline
//!
//! A cached value must be a pure function of its key. Pair scores depend on
//! the *weight configuration* as well as the concept pair, so [`PairKey`]
//! carries a [`WeightsFingerprint`] — without it, two measures with
//! different weights sharing one cache (the pattern `combined.rs`
//! explicitly advertises) would silently serve each other's scores.
//! Concept context vectors depend on the sphere radius and relation filter,
//! so [`VectorKey`] is `(concept, radius, filter fingerprint)`.

use semnet::ConceptId;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use crate::vector::SparseVector;

/// An order-independent fingerprint of a
/// [`SimilarityWeights`](crate::SimilarityWeights) configuration, produced
/// by [`SimilarityWeights::fingerprint`](crate::SimilarityWeights::fingerprint)
/// and embedded in every [`PairKey`] so caches shared between differently
/// weighted measures cannot cross-read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct WeightsFingerprint(pub u64);

/// A similarity-score cache key: the weight-configuration fingerprint plus
/// the symmetric concept pair (callers normalize `(a, b)` so that `a <= b`
/// before lookup, making `sim(a, b)` and `sim(b, a)` one entry).
pub type PairKey = (WeightsFingerprint, ConceptId, ConceptId);

/// A concept-context-vector cache key: `(concept, sphere radius, relation
/// filter fingerprint)` — see
/// [`RelationFilter::fingerprint`](semnet::graph::RelationFilter::fingerprint).
/// The vector of a concept is a pure function of these three inputs (plus
/// the immutable network), so cached vectors are shareable across workers
/// and runs.
pub type VectorKey = (ConceptId, u32, u64);

/// A memo table for pairwise similarity scores, with an optional second
/// table for concept context vectors.
///
/// Methods take `&self` so implementations choose their own interior
/// mutability: [`LocalCache`] uses a [`RefCell`], shared implementations use
/// locks or atomics. Implementations may drop entries (e.g. under memory
/// pressure) — the contract is only that [`lookup`](Self::lookup) returns a
/// value previously passed to [`store`](Self::store) for that key, or `None`.
///
/// The vector methods default to a no-op table (every lookup misses, every
/// store is dropped), so implementations that only memoize pair scores
/// remain valid — callers always fall back to computing the vector.
pub trait SimilarityCache {
    /// The cached score for `key`, if present.
    fn lookup(&self, key: PairKey) -> Option<f64>;

    /// Records the score for `key`.
    fn store(&self, key: PairKey, value: f64);

    /// Number of cached pairs (diagnostics).
    fn len(&self) -> usize;

    /// Whether the cache holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached context vector for `key`, if present. Defaults to a
    /// permanent miss.
    fn lookup_vector(&self, _key: VectorKey) -> Option<Arc<SparseVector>> {
        None
    }

    /// Records a context vector for `key`. Defaults to dropping the value.
    fn store_vector(&self, _key: VectorKey, _value: Arc<SparseVector>) {}

    /// Number of cached context vectors (diagnostics).
    fn vectors_len(&self) -> usize {
        0
    }
}

/// The default single-threaded cache: unsynchronized hash maps for pair
/// scores and context vectors.
#[derive(Debug, Clone, Default)]
pub struct LocalCache {
    map: RefCell<HashMap<PairKey, f64>>,
    vectors: RefCell<HashMap<VectorKey, Arc<SparseVector>>>,
}

impl LocalCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SimilarityCache for LocalCache {
    fn lookup(&self, key: PairKey) -> Option<f64> {
        self.map.borrow().get(&key).copied()
    }

    fn store(&self, key: PairKey, value: f64) {
        self.map.borrow_mut().insert(key, value);
    }

    fn len(&self) -> usize {
        self.map.borrow().len()
    }

    fn lookup_vector(&self, key: VectorKey) -> Option<Arc<SparseVector>> {
        self.vectors.borrow().get(&key).cloned()
    }

    fn store_vector(&self, key: VectorKey, value: Arc<SparseVector>) {
        self.vectors.borrow_mut().insert(key, value);
    }

    fn vectors_len(&self) -> usize {
        self.vectors.borrow().len()
    }
}

// The forwarding impls must forward the vector methods explicitly: the
// trait's no-op defaults would otherwise shadow the underlying cache's
// vector table and silently disable vector memoization behind `&C`/`Arc<C>`.

impl<C: SimilarityCache + ?Sized> SimilarityCache for &C {
    fn lookup(&self, key: PairKey) -> Option<f64> {
        (**self).lookup(key)
    }

    fn store(&self, key: PairKey, value: f64) {
        (**self).store(key, value)
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn lookup_vector(&self, key: VectorKey) -> Option<Arc<SparseVector>> {
        (**self).lookup_vector(key)
    }

    fn store_vector(&self, key: VectorKey, value: Arc<SparseVector>) {
        (**self).store_vector(key, value)
    }

    fn vectors_len(&self) -> usize {
        (**self).vectors_len()
    }
}

impl<C: SimilarityCache + ?Sized> SimilarityCache for Arc<C> {
    fn lookup(&self, key: PairKey) -> Option<f64> {
        (**self).lookup(key)
    }

    fn store(&self, key: PairKey, value: f64) {
        (**self).store(key, value)
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn lookup_vector(&self, key: VectorKey) -> Option<Arc<SparseVector>> {
        (**self).lookup_vector(key)
    }

    fn store_vector(&self, key: VectorKey, value: Arc<SparseVector>) {
        (**self).store_vector(key, value)
    }

    fn vectors_len(&self) -> usize {
        (**self).vectors_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimilarityWeights;
    use semnet::mini_wordnet;

    fn key(a: &str, b: &str) -> PairKey {
        let sn = mini_wordnet();
        let (a, b) = (sn.by_key(a).unwrap(), sn.by_key(b).unwrap());
        let fp = SimilarityWeights::equal().fingerprint();
        if a <= b {
            (fp, a, b)
        } else {
            (fp, b, a)
        }
    }

    #[test]
    fn local_cache_round_trips() {
        let cache = LocalCache::new();
        let k = key("cast.actors", "star.performer");
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(k), None);
        cache.store(k, 0.75);
        assert_eq!(cache.lookup(k), Some(0.75));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_fingerprints_are_distinct_entries() {
        let cache = LocalCache::new();
        let (fp_equal, a, b) = key("cast.actors", "star.performer");
        let fp_gloss = SimilarityWeights::gloss_only().fingerprint();
        assert_ne!(fp_equal, fp_gloss);
        cache.store((fp_equal, a, b), 0.4);
        cache.store((fp_gloss, a, b), 0.9);
        assert_eq!(cache.lookup((fp_equal, a, b)), Some(0.4));
        assert_eq!(cache.lookup((fp_gloss, a, b)), Some(0.9));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn vector_table_round_trips() {
        let cache = LocalCache::new();
        let sn = mini_wordnet();
        let c = sn.by_key("cast.actors").unwrap();
        let k: VectorKey = (c, 2, 0xabcd);
        assert!(cache.lookup_vector(k).is_none());
        assert_eq!(cache.vectors_len(), 0);
        let mut v = SparseVector::new();
        v.add("cast".to_string(), 1.0);
        cache.store_vector(k, Arc::new(v));
        let got = cache.lookup_vector(k).expect("stored vector");
        assert_eq!(got.get("cast"), 1.0);
        assert_eq!(cache.vectors_len(), 1);
        // Different radius / filter fingerprint are different entries.
        assert!(cache.lookup_vector((c, 3, 0xabcd)).is_none());
        assert!(cache.lookup_vector((c, 2, 0xabce)).is_none());
    }

    // The Arc-of-LocalCache below is deliberately single-threaded: the
    // point is the forwarding impl, not sharing.
    #[allow(clippy::arc_with_non_send_sync)]
    #[test]
    fn reference_and_arc_forward() {
        let cache = LocalCache::new();
        let k = key("film.movie", "cast.actors");
        {
            let by_ref: &LocalCache = &cache;
            by_ref.store(k, 0.5);
        }
        assert_eq!(cache.lookup(k), Some(0.5));
        let shared = Arc::new(LocalCache::new());
        shared.store(k, 0.25);
        assert_eq!(shared.len(), 1);
    }

    #[allow(clippy::arc_with_non_send_sync)]
    #[test]
    fn reference_and_arc_forward_vectors() {
        // Regression guard: the blanket impls must not fall back to the
        // trait's no-op vector defaults.
        let sn = mini_wordnet();
        let c = sn.by_key("film.movie").unwrap();
        let k: VectorKey = (c, 1, 7);
        let shared = Arc::new(LocalCache::new());
        shared.store_vector(k, Arc::new(SparseVector::new()));
        assert_eq!(shared.vectors_len(), 1);
        assert!(shared.lookup_vector(k).is_some());
        let inner = LocalCache::new();
        let by_ref: &LocalCache = &inner;
        by_ref.store_vector(k, Arc::new(SparseVector::new()));
        assert!(inner.lookup_vector(k).is_some());
        assert_eq!(by_ref.vectors_len(), 1);
    }
}
