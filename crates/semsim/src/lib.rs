//! # xsdf-semsim
//!
//! Semantic similarity measures over a semantic network, as catalogued in
//! Section 2.1 of *Resolving XML Semantic Ambiguity* (EDBT 2015) and
//! combined by its Definition 9:
//!
//! * **edge-based** ([`edge::wu_palmer`]): Wu & Palmer's path measure
//!   (reference \[59\] of the paper),
//! * **node-based** ([`node::lin`]): Lin's information-content measure over
//!   the weighted network `S̄N` (reference \[27\]),
//! * **gloss-based** ([`gloss::extended_gloss_overlap`]): a normalized
//!   extension of Banerjee & Pedersen's extended gloss overlaps
//!   (reference \[6\]),
//! * the weighted **combination** ([`combined::CombinedSimilarity`],
//!   Definition 9), with user-tunable weights `w_Edge + w_Node + w_Gloss = 1`,
//! * **vector similarities** ([`vector`]) — cosine (used by Definition 10),
//!   Jaccard, and Pearson — over sparse labeled vectors.
//!
//! Pair scores are memoized through the pluggable [`cache::SimilarityCache`]
//! trait: serial callers use the default [`cache::LocalCache`]; concurrent
//! batch engines share one thread-safe cache across workers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod combined;
pub mod edge;
pub mod gloss;
pub mod node;
pub mod vector;

pub use cache::{LocalCache, PairKey, SimilarityCache, VectorKey, WeightsFingerprint};
pub use combined::{CombinedSimilarity, SimilarityWeights};
pub use edge::wu_palmer;
pub use gloss::extended_gloss_overlap;
pub use node::lin;
pub use vector::SparseVector;
