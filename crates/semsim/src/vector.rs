//! Sparse labeled vectors and vector similarity measures.
//!
//! Context-based disambiguation (Definition 10) compares the XML sphere
//! context vector with each candidate sense's semantic-network context
//! vector using *cosine* similarity; Jaccard and Pearson are provided as
//! the alternatives the paper's footnote 10 mentions.
//!
//! ## Degenerate inputs
//!
//! Every measure here returns exactly **0.0** when either vector is empty
//! or all-zero (no dimensions, or only zero coordinates): a vector without
//! evidence is similar to nothing. Callers that post-process raw scores —
//! notably `xsdf`'s `VectorSimilarity::apply`, whose Pearson rescale
//! `(r + 1)/2` would turn a degenerate `r = 0` into 0.5 — must preserve
//! this contract by guarding degenerate inputs before remapping.

use std::collections::BTreeMap;

/// A sparse vector with `String` dimension labels (node labels in the
/// paper's Definition 6) and `f64` coordinates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVector {
    coords: BTreeMap<String, f64>,
}

impl SparseVector {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vector from `(label, weight)` pairs; repeated labels sum.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        let mut v = Self::new();
        for (label, w) in pairs {
            v.add(label, w);
        }
        v
    }

    /// Adds `weight` to the coordinate of `label`.
    pub fn add(&mut self, label: impl Into<String>, weight: f64) {
        *self.coords.entry(label.into()).or_insert(0.0) += weight;
    }

    /// Sets the coordinate of `label`.
    pub fn set(&mut self, label: impl Into<String>, weight: f64) {
        self.coords.insert(label.into(), weight);
    }

    /// The coordinate of `label` (0 when absent).
    pub fn get(&self, label: &str) -> f64 {
        self.coords.get(label).copied().unwrap_or(0.0)
    }

    /// Number of non-zero dimensions.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// `true` when no dimension is set.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Estimated heap footprint of this vector in bytes, for byte-budgeted
    /// caches. Counts each coordinate's label buffer plus a flat
    /// per-entry allowance for the `String` header, the weight, and the
    /// amortized B-tree node overhead. An estimate, not an allocator
    /// query: the point is a stable, monotone measure a cache can budget
    /// against, not byte-exact RSS attribution.
    pub fn heap_bytes(&self) -> usize {
        // String header (ptr/len/cap) + f64 value + ~amortized share of a
        // BTreeMap node (keys/values arrays, edges, header).
        const ENTRY_OVERHEAD: usize =
            std::mem::size_of::<String>() + std::mem::size_of::<f64>() + 24;
        self.coords
            .keys()
            .map(|label| label.capacity() + ENTRY_OVERHEAD)
            .sum()
    }

    /// Iterates over `(label, weight)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.coords.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.coords.values().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Dot product with another sparse vector.
    pub fn dot(&self, other: &Self) -> f64 {
        // Iterate over the smaller map.
        let (small, big) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.iter().map(|(label, w)| w * big.get(label)).sum()
    }

    /// Cosine similarity in `\[0, 1\]` for non-negative vectors (Definition
    /// 10's measure). Returns 0 when either vector is empty or zero.
    pub fn cosine(&self, other: &Self) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0)
    }

    /// Weighted Jaccard similarity: `Σ min / Σ max` over the union of
    /// dimensions, in `\[0, 1\]`.
    pub fn jaccard(&self, other: &Self) -> f64 {
        let mut min_sum = 0.0;
        let mut max_sum = 0.0;
        for (label, w) in self.iter() {
            let o = other.get(label);
            min_sum += w.min(o);
            max_sum += w.max(o);
        }
        for (label, w) in other.iter() {
            if self.get(label) == 0.0 {
                max_sum += w;
            }
        }
        if max_sum == 0.0 {
            0.0
        } else {
            min_sum / max_sum
        }
    }

    /// Pearson correlation of the two vectors over the union of their
    /// dimensions, in `[-1, 1]`. Returns 0 for degenerate inputs.
    pub fn pearson(&self, other: &Self) -> f64 {
        let labels: std::collections::BTreeSet<&str> = self
            .iter()
            .map(|(l, _)| l)
            .chain(other.iter().map(|(l, _)| l))
            .collect();
        let n = labels.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        let xs: Vec<f64> = labels.iter().map(|l| self.get(l)).collect();
        let ys: Vec<f64> = labels.iter().map(|l| other.get(l)).collect();
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (x, y) in xs.iter().zip(&ys) {
            cov += (x - mx) * (y - my);
            vx += (x - mx) * (x - mx);
            vy += (y - my) * (y - my);
        }
        if vx == 0.0 || vy == 0.0 {
            return 0.0;
        }
        (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
    }
}

impl<S: Into<String>> FromIterator<(S, f64)> for SparseVector {
    fn from_iter<I: IntoIterator<Item = (S, f64)>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(&str, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(l, w)| (l, w)))
    }

    #[test]
    fn cosine_identical_is_one() {
        let a = v(&[("cast", 0.4), ("picture", 0.2), ("star", 0.4)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        let a = v(&[("cast", 1.0)]);
        let b = v(&[("star", 1.0)]);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn cosine_scale_invariant() {
        let a = v(&[("x", 1.0), ("y", 2.0)]);
        let b = v(&[("x", 10.0), ("y", 20.0)]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_empty_is_zero() {
        let a = v(&[("x", 1.0)]);
        assert_eq!(a.cosine(&SparseVector::new()), 0.0);
        assert_eq!(SparseVector::new().cosine(&SparseVector::new()), 0.0);
    }

    #[test]
    fn repeated_labels_sum() {
        let mut a = SparseVector::new();
        a.add("star", 0.2);
        a.add("star", 0.2);
        assert!((a.get("star") - 0.4).abs() < 1e-12);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn dot_is_symmetric() {
        let a = v(&[("x", 1.0), ("y", 3.0)]);
        let b = v(&[("y", 2.0), ("z", 5.0)]);
        assert_eq!(a.dot(&b), b.dot(&a));
        assert_eq!(a.dot(&b), 6.0);
    }

    #[test]
    fn jaccard_bounds_and_identity() {
        let a = v(&[("x", 1.0), ("y", 2.0)]);
        let b = v(&[("x", 2.0), ("z", 1.0)]);
        let j = a.jaccard(&b);
        assert!((0.0..=1.0).contains(&j));
        assert!((a.jaccard(&a) - 1.0).abs() < 1e-12);
        // min(1,2)/ (max(1,2)+max(2,0)+max(0,1)) = 1/5.
        assert!((j - 0.2).abs() < 1e-12);
    }

    #[test]
    fn jaccard_disjoint_is_zero() {
        let a = v(&[("x", 1.0)]);
        let b = v(&[("y", 1.0)]);
        assert_eq!(a.jaccard(&b), 0.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = v(&[("x", 1.0), ("y", 2.0), ("z", 3.0)]);
        let b = v(&[("x", 2.0), ("y", 4.0), ("z", 6.0)]);
        assert!((a.pearson(&b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_anticorrelation() {
        let a = v(&[("x", 1.0), ("y", 2.0), ("z", 3.0)]);
        let b = v(&[("x", 3.0), ("y", 2.0), ("z", 1.0)]);
        assert!((a.pearson(&b) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        let a = v(&[("x", 1.0)]);
        let b = v(&[("x", 5.0)]);
        assert_eq!(a.pearson(&b), 0.0);
        let c = v(&[("x", 2.0), ("y", 2.0)]);
        let d = v(&[("x", 1.0), ("y", 3.0)]);
        assert_eq!(c.pearson(&d), 0.0); // c has zero variance
    }

    #[test]
    fn all_measures_return_zero_for_zero_or_empty_vectors() {
        // The documented degenerate-input contract: no evidence ⇒ 0.0,
        // for empty vectors and for vectors whose coordinates are all 0.
        let empty = SparseVector::new();
        let zero = v(&[("x", 0.0), ("y", 0.0)]);
        let real = v(&[("x", 1.0), ("y", 2.0)]);
        for degenerate in [&empty, &zero] {
            assert_eq!(degenerate.cosine(&real), 0.0);
            assert_eq!(real.cosine(degenerate), 0.0);
            assert_eq!(degenerate.jaccard(&real), 0.0);
            assert_eq!(real.jaccard(degenerate), 0.0);
            assert_eq!(degenerate.pearson(&real), 0.0);
            assert_eq!(real.pearson(degenerate), 0.0);
            assert_eq!(degenerate.norm(), 0.0);
        }
    }

    #[test]
    fn from_iterator_collects() {
        let a: SparseVector = vec![("x", 1.0), ("y", 2.0)].into_iter().collect();
        assert_eq!(a.len(), 2);
        assert_eq!(a.get("y"), 2.0);
    }

    #[test]
    fn paper_figure7_vector_shape() {
        // V_1(T[2]) from Figure 7: Cast 0.4, Picture 0.2, Star 0.4.
        let v1 = v(&[("cast", 0.4), ("picture", 0.2), ("star", 0.4)]);
        assert_eq!(v1.len(), 3);
        assert!((v1.norm() - (0.16f64 + 0.04 + 0.16).sqrt()).abs() < 1e-12);
    }
}
