//! Node-based similarity: Lin (1998), the paper's `Sim_Node`, computed from
//! the statistical distribution of concept frequencies in the weighted
//! network `S̄N` (Figure 2 of the paper).

use semnet::graph::lowest_common_subsumer;
use semnet::{ConceptId, SemanticNetwork};

/// Lin similarity:
///
/// ```text
/// sim(c1, c2) = 2·IC(lcs(c1, c2)) / (IC(c1) + IC(c2))
/// ```
///
/// where `IC(c) = −ln p(c)` with `p` estimated from cumulative concept
/// frequencies. Ranges over `\[0, 1\]`; 1 for identical concepts; 0 when the
/// concepts share no subsumer or the subsumer carries no information.
pub fn lin(sn: &SemanticNetwork, a: ConceptId, b: ConceptId) -> f64 {
    if a == b {
        return 1.0;
    }
    let Some(lcs) = lowest_common_subsumer(sn, a, b) else {
        return 0.0;
    };
    let ic_lcs = sn.information_content(lcs);
    let denom = sn.information_content(a) + sn.information_content(b);
    if denom <= 0.0 || ic_lcs <= 0.0 {
        return 0.0;
    }
    (2.0 * ic_lcs / denom).clamp(0.0, 1.0)
}

/// Resnik similarity (the raw information content of the LCS), exposed for
/// ablation benchmarks; normalized to `\[0, 1\]` by the maximum IC in the
/// network (the IC of a frequency-0 leaf).
pub fn resnik_normalized(sn: &SemanticNetwork, a: ConceptId, b: ConceptId) -> f64 {
    let Some(lcs) = lowest_common_subsumer(sn, a, b) else {
        return 0.0;
    };
    let max_ic = -(1.0 / (sn.total_frequency() as f64 + sn.len() as f64)).ln();
    if max_ic <= 0.0 {
        return 0.0;
    }
    (sn.information_content(lcs) / max_ic).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    fn id(key: &str) -> ConceptId {
        mini_wordnet().by_key(key).unwrap()
    }

    #[test]
    fn identity_is_one() {
        let sn = mini_wordnet();
        assert_eq!(lin(sn, id("actor.n"), id("actor.n")), 1.0);
    }

    #[test]
    fn symmetric_and_bounded() {
        let sn = mini_wordnet();
        let keys = [
            "kelly.grace",
            "stewart.james",
            "cast.actors",
            "state.province",
            "entity.n",
        ];
        for ka in keys {
            for kb in keys {
                let s = lin(sn, id(ka), id(kb));
                assert!((0.0..=1.0).contains(&s), "lin({ka},{kb}) = {s}");
                assert!((s - lin(sn, id(kb), id(ka))).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn informative_lcs_beats_generic_lcs() {
        let sn = mini_wordnet();
        // Two actresses share the specific concept "actress" (high IC);
        // an actress and a waffle share only a near-root concept (low IC).
        let actresses = lin(sn, id("kelly.grace"), id("bergman.ingrid"));
        let mixed = lin(sn, id("kelly.grace"), id("waffle.food"));
        assert!(actresses > mixed, "{actresses} <= {mixed}");
    }

    #[test]
    fn lin_tracks_taxonomic_closeness() {
        let sn = mini_wordnet();
        let close = lin(sn, id("star.performer"), id("actor.n"));
        let far = lin(sn, id("star.performer"), id("soil.ground"));
        assert!(close > far);
    }

    #[test]
    fn resnik_bounded_and_monotone_with_lcs_depth() {
        let sn = mini_wordnet();
        let close = resnik_normalized(sn, id("kelly.grace"), id("bergman.ingrid"));
        let far = resnik_normalized(sn, id("kelly.grace"), id("zone.climate"));
        assert!((0.0..=1.0).contains(&close));
        assert!(close > far);
    }

    #[test]
    fn disconnected_concepts_score_zero() {
        // Adjectives have no taxonomy parent → no LCS with nouns.
        let sn = mini_wordnet();
        assert_eq!(lin(sn, id("hardy.a"), id("actor.n")), 0.0);
    }
}
