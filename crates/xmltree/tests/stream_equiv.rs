//! Streaming-vs-buffered parser equivalence.
//!
//! The streaming pull parser must be *indistinguishable* from the
//! buffered recursive-descent parser on every input: the same
//! [`Document`] on valid documents, the same typed [`ParseError`] (kind,
//! line, column) on invalid ones — no matter how the input is split into
//! chunks. Split-independence is checked exhaustively (every byte offset
//! of a fixture set) and probabilistically (random documents, random
//! junk, random chunkings).

use proptest::prelude::*;
use xsdf_xmltree::stream::{parse_chunks, StreamLimits};
use xsdf_xmltree::{parse, Document, ParseError};

/// Buffered reference result.
fn buffered(input: &str) -> Result<Document, ParseError> {
    parse(input)
}

/// Streaming result over the given chunking of `input`.
fn streamed(chunks: &[&[u8]]) -> Result<Document, ParseError> {
    parse_chunks(chunks.iter().copied(), StreamLimits::default())
}

/// Small documents exercising every grammar production, valid and
/// invalid, ASCII and multi-byte.
const FIXTURES: &[&str] = &[
    // Valid.
    "<a/>",
    "<r><a/><b/><c/></r>",
    "<m year=\"1954\" title='Rear Window'/>",
    "<t>Tom &amp; Jerry &lt;3 &#65;&#x42;</t>",
    "<t v=\"a&amp;b\"/>",
    "<t><![CDATA[<not-a-tag> & raw]]></t>",
    "<t><!-- hello --></t>",
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE films [<!ELEMENT films (p*)>]>\n<films/>",
    "<!DOCTYPE x SYSTEM \"a>b\"><x/>",
    "<!DOCTYPE x PUBLIC '-//a>b//[c]//EN' \"u>r[l]\"><x/>",
    "<?xml-stylesheet href=\"s.css\"?><r/>",
    "<r>\n  <a/>\n  <b/>\n</r>",
    "<t attr=\"héllo\">çafé ☕</t>",
    "\u{FEFF}<bom/>",
    "<r><inner><deep attr='v'>text</deep></inner><?pi data ?></r>",
    "<r><a/>tail<!--c-->more<b/></r>",
    "<e a1='x' a2=\"y\" a3='&#x20;'/>",
    // Invalid: structure.
    "<a></b>",
    "<a><b>",
    "<a/><b/>",
    "   ",
    "",
    "text<a/>",
    "<a/>junk",
    // Invalid: names, entities, attributes.
    "<1bad/>",
    "<a>&nope;</a>",
    "<a>&unterminated",
    "<a x='1' x='2'/>",
    "<a x=1/>",
    "<a x/>",
    // Invalid: forbidden character references (and valid boundaries).
    "<t>&#0;</t>",
    "<t>&#8;</t>",
    "<t>&#x1F;</t>",
    "<t>&#x9;&#xA;&#xD;</t>",
    // Invalid: unterminated constructs.
    "<t><!-- unterminated",
    "<t><![CDATA[ unterminated",
    "<?xml version='1.0'",
    "<!DOCTYPE x SYSTEM \"a>b><x/>",
    // Error positions on later lines.
    "<a>\n\n</b>",
    "<a>\n  <b x='1'\n     x='2'/>\n</a>",
];

/// Every 2-way split of every fixture produces the buffered result.
#[test]
fn exhaustive_two_way_splits_match_buffered() {
    for input in FIXTURES {
        let want = buffered(input);
        let bytes = input.as_bytes();
        for i in 0..=bytes.len() {
            let got = streamed(&[&bytes[..i], &bytes[i..]]);
            assert_eq!(got, want, "input {input:?} split at {i}");
        }
    }
}

/// Every 3-way split of a few feature-dense fixtures.
#[test]
fn exhaustive_three_way_splits_match_buffered() {
    for input in [
        "<t>Tom &amp; J &#x42;</t>",
        "<!DOCTYPE x SYSTEM \"a>b\"><x y='&lt;'/>",
        "<t attr=\"hé\">☕</t>",
        "<a>\n</b>",
    ] {
        let want = buffered(input);
        let bytes = input.as_bytes();
        for i in 0..=bytes.len() {
            for j in i..=bytes.len() {
                let got = streamed(&[&bytes[..i], &bytes[i..j], &bytes[j..]]);
                assert_eq!(got, want, "input {input:?} split at {i},{j}");
            }
        }
    }
}

/// Byte-at-a-time feeding (the worst-case chunking) matches buffered.
#[test]
fn byte_at_a_time_matches_buffered() {
    for input in FIXTURES {
        let want = buffered(input);
        let chunks: Vec<&[u8]> = input.as_bytes().chunks(1).collect();
        assert_eq!(streamed(&chunks), want, "input {input:?} fed byte-wise");
    }
}

/// Depth-bounded documents fail identically in both parsers.
#[test]
fn deep_nesting_matches_buffered() {
    let deep = "<n>".repeat(300) + &"</n>".repeat(300);
    let want = buffered(&deep);
    assert!(want.is_err());
    for size in [1usize, 7, 64, 1000] {
        let chunks: Vec<&[u8]> = deep.as_bytes().chunks(size).collect();
        assert_eq!(streamed(&chunks), want, "chunk size {size}");
    }
}

/// Splits a byte string into chunks at the given (sorted) cut offsets.
fn cut<'a>(bytes: &'a [u8], cuts: &[usize]) -> Vec<&'a [u8]> {
    let mut chunks = Vec::new();
    let mut prev = 0;
    for &c in cuts {
        let c = c.min(bytes.len());
        if c > prev {
            chunks.push(&bytes[prev..c]);
            prev = c;
        }
    }
    chunks.push(&bytes[prev..]);
    chunks
}

/// A generator of random well-formed-ish XML text: serialized random
/// documents (always valid), so the Document-equality path is exercised,
/// not just error equality.
fn arb_xml() -> impl Strategy<Value = String> {
    proptest::collection::vec((0usize..40, 0u8..3, 0usize..8), 0..30).prop_map(|ops| {
        let mut doc = Document::new();
        let root = doc.add_element(None, "root");
        let mut elems = vec![root];
        let names = [
            "movie", "title", "actor", "cast", "year", "genre", "price", "track",
        ];
        let mut attr_counter = 0usize;
        for (p, kind, seed) in ops {
            let parent = elems[p % elems.len()];
            match kind {
                0 => elems.push(doc.add_element(Some(parent), names[seed])),
                1 => {
                    doc.add_text(parent, format!("value {seed} & <escaped> é☕"));
                }
                _ => {
                    attr_counter += 1;
                    let _ = doc.add_attribute(
                        parent,
                        format!("a{attr_counter}"),
                        format!("v&{seed}<'\">"),
                    );
                }
            }
        }
        xsdf_xmltree::serialize::to_string_pretty(&doc)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random valid documents parse to identical `Document`s under random
    /// chunkings.
    #[test]
    fn random_documents_random_chunks(xml in arb_xml(), cuts in proptest::collection::vec(0usize..4096, 0..6)) {
        let want = buffered(&xml);
        prop_assert!(want.is_ok());
        let mut cuts = cuts;
        cuts.sort_unstable();
        let chunks = cut(xml.as_bytes(), &cuts);
        prop_assert_eq!(streamed(&chunks), want);
    }

    /// Arbitrary junk produces identical results (valid or typed error)
    /// under random chunkings — and neither parser panics.
    #[test]
    fn random_junk_random_chunks(input in "[<>a-z0-9&;#x/\"'= \\n!\\[\\]?-]{0,120}", cuts in proptest::collection::vec(0usize..120, 0..4)) {
        let want = buffered(&input);
        let mut cuts = cuts;
        cuts.sort_unstable();
        let chunks = cut(input.as_bytes(), &cuts);
        prop_assert_eq!(streamed(&chunks), want);
    }

    /// Arbitrary unicode text (multi-byte codepoints split across chunk
    /// boundaries) produces identical results.
    #[test]
    fn random_unicode_random_chunks(input in "\\PC{0,80}", cuts in proptest::collection::vec(0usize..300, 0..4)) {
        let want = buffered(&input);
        let mut cuts = cuts;
        cuts.sort_unstable();
        // Byte-level cuts may split codepoints: exactly the point.
        let chunks = cut(input.as_bytes(), &cuts);
        prop_assert_eq!(streamed(&chunks), want);
    }
}
