//! Property-based tests for the XML parser, serializer, and tree model.

use proptest::prelude::*;
use xsdf_xmltree::distance::{node_distance, sphere};
use xsdf_xmltree::serialize::{to_string_compact, to_string_pretty};
use xsdf_xmltree::tree::TreeBuilder;
use xsdf_xmltree::{parse, Document};

/// A recursive strategy generating random XML documents.
fn arb_document() -> impl Strategy<Value = Document> {
    // Generate a shape: a vector of (parent index, kind, name/text seed).
    // Kind: 0 = element, 1 = text, 2 = attribute.
    proptest::collection::vec((0usize..100, 0u8..3, 0usize..12), 0..40).prop_map(|ops| {
        let mut doc = Document::new();
        let root = doc.add_element(None, "root");
        let mut elems = vec![root];
        let names = [
            "movie", "title", "actor", "cast", "play", "state", "address", "year", "name", "genre",
            "price", "track",
        ];
        let mut attr_counter = 0usize;
        for (p, kind, seed) in ops {
            let parent = elems[p % elems.len()];
            match kind {
                0 => {
                    let e = doc.add_element(Some(parent), names[seed]);
                    elems.push(e);
                }
                1 => {
                    doc.add_text(parent, format!("value {seed} & <escaped>"));
                }
                _ => {
                    attr_counter += 1;
                    // Unique attribute names avoid duplicate-attribute errors.
                    let _ =
                        doc.add_attribute(parent, format!("a{attr_counter}"), format!("v{seed}"));
                }
            }
        }
        doc
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// serialize → parse preserves element count and total text.
    #[test]
    fn roundtrip_compact(doc in arb_document()) {
        let text = to_string_compact(&doc);
        let doc2 = parse(&text).unwrap();
        prop_assert_eq!(doc.element_count(), doc2.element_count());
        let root1 = doc.root_element().unwrap();
        let root2 = doc2.root_element().unwrap();
        prop_assert_eq!(doc.text_content(root1), doc2.text_content(root2));
    }

    /// Pretty serialization parses back to the same element structure.
    #[test]
    fn roundtrip_pretty_elements(doc in arb_document()) {
        let text = to_string_pretty(&doc);
        let doc2 = parse(&text).unwrap();
        prop_assert_eq!(doc.element_count(), doc2.element_count());
    }

    /// Trees built from arbitrary documents satisfy the structural invariants.
    #[test]
    fn built_trees_are_consistent(doc in arb_document()) {
        let tree = TreeBuilder::new().build(&doc).unwrap().tree;
        prop_assert!(tree.check_consistency().is_ok());
        // Depth of every node equals the length of its ancestor chain.
        for id in tree.preorder() {
            let chain = xsdf_xmltree::navigate::ancestors(&tree, id).count() as u32;
            prop_assert_eq!(tree.depth(id), chain);
        }
    }

    /// Node distance is a metric (symmetry + identity) and sphere distances
    /// agree with pairwise distances.
    #[test]
    fn distance_metric_properties(doc in arb_document()) {
        let tree = TreeBuilder::new().build(&doc).unwrap().tree;
        let nodes: Vec<_> = tree.preorder().collect();
        for &a in nodes.iter().take(8) {
            prop_assert_eq!(node_distance(&tree, a, a), 0);
            for &b in nodes.iter().take(8) {
                prop_assert_eq!(node_distance(&tree, a, b), node_distance(&tree, b, a));
            }
        }
        let center = nodes[nodes.len() / 2];
        for (n, d) in sphere(&tree, center, 3) {
            prop_assert_eq!(node_distance(&tree, center, n), d);
        }
    }

    /// Spheres grow monotonically with the radius and never contain the center.
    #[test]
    fn sphere_monotone(doc in arb_document(), r in 1u32..5) {
        let tree = TreeBuilder::new().build(&doc).unwrap().tree;
        let center = tree.root();
        let small = sphere(&tree, center, r).len();
        let big = sphere(&tree, center, r + 1).len();
        prop_assert!(big >= small);
        prop_assert!(sphere(&tree, center, r).iter().all(|&(n, _)| n != center));
    }

    /// Parsing arbitrary junk never panics (errors are fine).
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = parse(&input);
    }

    /// Parsing XML-ish junk never panics.
    #[test]
    fn parser_never_panics_xmlish(input in "[<>a-z&;/\"= ]{0,100}") {
        let _ = parse(&input);
    }
}
