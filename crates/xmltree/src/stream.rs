//! Streaming (pull) XML parsing over byte chunks.
//!
//! [`StreamParser`] accepts input incrementally via [`StreamParser::feed`]
//! and hands back [`XmlEvent`]s via [`StreamParser::next_event`] — the
//! same grammar as the buffered [`crate::parser::Parser`], implemented as
//! a non-recursive state machine so only the *unconsumed tail* of the
//! input is ever held in memory. That makes three things possible that the
//! buffered parser cannot do:
//!
//! * **bounded ingest** — [`StreamLimits::max_bytes`] is enforced as bytes
//!   arrive, so an oversized input is rejected *before* it is buffered
//!   (peak memory stays near the limit, not near the input size);
//! * **in-scan node/depth limits** — [`StreamLimits::max_nodes`] and
//!   [`StreamLimits::max_depth`] fail as soon as one node or nesting level
//!   too many is scanned, instead of after the whole tree is built;
//! * **incremental sources** — sockets, pipes, and files parse through
//!   [`parse_reader`] without a `read_to_string` staging buffer.
//!
//! ## Result identity
//!
//! The event stream is defined as *exactly* the sequence of
//! [`Document`] mutations the buffered parser would perform: building a
//! document from the events ([`parse_chunks`], [`parse_reader`]) yields a
//! `Document` equal to `Parser::new(input).parse_document()`, and invalid
//! inputs fail with the same [`ParseError`] (kind, line, and column) —
//! property-tested across chunk splits at every byte offset in
//! `tests/stream_equiv.rs`. The two stream-only limits are the exception:
//! `max_bytes`/`max_nodes` violations raise
//! [`ParseErrorKind::BytesExceeded`]/[`ParseErrorKind::NodesExceeded`],
//! which the buffered parser (whose callers bound bytes and nodes outside
//! the parse) never produces.
//!
//! ## Memory bounds
//!
//! The internal window holds one in-flight construct (a tag, a comment, a
//! text run, …): it is drained every time a construct completes. A
//! document with pathologically large single constructs (one giant text
//! node) therefore still buffers that construct — bounded by `max_bytes`
//! when set. [`StreamParser::buffered_high_watermark`] reports the largest
//! window ever held, which the bounded-ingest tests assert stays far below
//! the total input size.

use std::collections::VecDeque;
use std::fmt;
use std::io::Read;

use crate::document::{Attribute, DocNodeId, Document};
use crate::error::{ParseError, ParseErrorKind};
use crate::parser::{is_name_char, is_name_start, resolve_entity};

/// Resource bounds enforced *while* scanning. `None` means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamLimits {
    /// Maximum total input size in bytes. Exceeding bytes are rejected at
    /// [`StreamParser::feed`] time, before they are buffered.
    pub max_bytes: Option<usize>,
    /// Maximum element nesting depth (same default and semantics as
    /// [`crate::parser::Parser::max_depth`]).
    pub max_depth: u32,
    /// Maximum number of document nodes (elements, text runs, CDATA
    /// sections, comments, processing instructions — the nodes a built
    /// [`Document`] would hold). Checked as each node is scanned.
    pub max_nodes: Option<usize>,
    /// When `true` (default), whitespace-only text between elements is
    /// dropped, matching [`crate::parser::Parser::skip_whitespace_text`].
    pub skip_whitespace_text: bool,
}

impl Default for StreamLimits {
    fn default() -> Self {
        Self {
            max_bytes: None,
            max_depth: 256,
            max_nodes: None,
            skip_whitespace_text: true,
        }
    }
}

impl StreamLimits {
    /// Sets the total input-size ceiling.
    pub fn max_bytes(mut self, max: usize) -> Self {
        self.max_bytes = Some(max);
        self
    }

    /// Sets the nesting-depth ceiling.
    pub fn max_depth(mut self, max: u32) -> Self {
        self.max_depth = max;
        self
    }

    /// Sets the document-node ceiling.
    pub fn max_nodes(mut self, max: usize) -> Self {
        self.max_nodes = Some(max);
        self
    }
}

/// One parse event — one [`Document`] mutation the buffered parser would
/// perform at the same point of the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// An element open tag (or the open half of a self-closing tag),
    /// with its attributes fully parsed and duplicate-checked.
    StartElement {
        /// Tag name.
        name: String,
        /// Attributes in document order, entities resolved.
        attributes: Vec<Attribute>,
    },
    /// An element close tag (emitted immediately after `StartElement`
    /// for self-closing tags).
    EndElement {
        /// Tag name (always matches the open tag).
        name: String,
    },
    /// A run of character data, entities resolved. Whitespace-only runs
    /// are suppressed unless [`StreamLimits::skip_whitespace_text`] is
    /// disabled.
    Text(String),
    /// A CDATA section's literal content.
    CData(String),
    /// A comment (document-level when no element is open).
    Comment(String),
    /// A processing instruction (document-level when no element is open).
    ProcessingInstruction {
        /// The PI target.
        target: String,
        /// The PI data, trailing whitespace trimmed.
        data: String,
    },
}

/// What [`StreamParser::next_event`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pulled {
    /// A parse event.
    Event(XmlEvent),
    /// The window is exhausted mid-construct: [`StreamParser::feed`] more
    /// bytes (or [`StreamParser::finish`]) and pull again. Never returned
    /// after `finish`.
    NeedInput,
    /// The document is complete and well-formed.
    Done,
}

/// Internal control flow: a primitive either needs more input (retry the
/// whole construct once more bytes arrive) or failed terminally.
enum Interrupt {
    Need,
    Fail(ParseError),
}

type PResult<T> = Result<T, Interrupt>;

/// A saved scan position for rolling back an incomplete construct.
#[derive(Clone, Copy)]
struct Mark {
    pos: usize,
    line: u32,
    column: u32,
}

/// An incremental pull parser over fed byte chunks.
///
/// ```
/// use xsdf_xmltree::stream::{Pulled, StreamLimits, StreamParser, XmlEvent};
///
/// let mut p = StreamParser::new(StreamLimits::default());
/// p.feed(b"<r><a x='1'/>").unwrap();
/// assert!(matches!(p.next_event().unwrap(), Pulled::Event(XmlEvent::StartElement { .. })));
/// p.feed(b"</r>").unwrap();
/// p.finish();
/// let mut events = 0;
/// while let Pulled::Event(_) = p.next_event().unwrap() {
///     events += 1;
/// }
/// assert_eq!(events, 3); // a-start, a-end, r-end
/// ```
pub struct StreamParser {
    /// Unconsumed window: bytes `base..base + buf.len()` of the input.
    buf: Vec<u8>,
    /// Absolute input offset of `buf[0]`.
    base: usize,
    /// Absolute scan cursor (`>= base`).
    pos: usize,
    line: u32,
    column: u32,
    finished: bool,
    limits: StreamLimits,
    bytes_fed: usize,
    nodes: usize,
    high_watermark: usize,
    /// Names of currently open elements.
    stack: Vec<String>,
    saw_root: bool,
    did_preamble: bool,
    pending: VecDeque<XmlEvent>,
    done: bool,
    failed: Option<ParseError>,
}

impl StreamParser {
    /// Creates a parser with the given limits.
    pub fn new(limits: StreamLimits) -> Self {
        Self {
            buf: Vec::new(),
            base: 0,
            pos: 0,
            line: 1,
            column: 1,
            finished: false,
            limits,
            bytes_fed: 0,
            nodes: 0,
            high_watermark: 0,
            stack: Vec::new(),
            saw_root: false,
            did_preamble: false,
            pending: VecDeque::new(),
            done: false,
            failed: None,
        }
    }

    /// Appends a chunk of input. Fails (without buffering the chunk) when
    /// the total fed size would exceed [`StreamLimits::max_bytes`].
    ///
    /// # Panics
    ///
    /// Panics if called after [`StreamParser::finish`].
    pub fn feed(&mut self, chunk: &[u8]) -> Result<(), ParseError> {
        assert!(!self.finished, "feed after finish");
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if let Some(max) = self.limits.max_bytes {
            if self.bytes_fed.saturating_add(chunk.len()) > max {
                let e = ParseError::new(
                    ParseErrorKind::BytesExceeded { limit: max },
                    self.line,
                    self.column,
                );
                self.failed = Some(e.clone());
                return Err(e);
            }
        }
        self.bytes_fed += chunk.len();
        self.buf.extend_from_slice(chunk);
        self.high_watermark = self.high_watermark.max(self.buf.len());
        Ok(())
    }

    /// Declares the input complete: no more chunks will be fed, so an
    /// exhausted window now means end of input instead of `NeedInput`.
    pub fn finish(&mut self) {
        self.finished = true;
    }

    /// Total bytes fed so far.
    pub fn bytes_fed(&self) -> usize {
        self.bytes_fed
    }

    /// Bytes currently buffered (the unconsumed window).
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// The largest window ever buffered — the parser's peak memory
    /// footprint for input bytes. Stays near the largest single construct
    /// of the document, not near the document size.
    pub fn buffered_high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Pulls the next event. Errors are terminal and repeat on re-pull.
    pub fn next_event(&mut self) -> Result<Pulled, ParseError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if let Some(ev) = self.pending.pop_front() {
            return Ok(Pulled::Event(ev));
        }
        if self.done {
            return Ok(Pulled::Done);
        }
        loop {
            let mark = self.mark();
            let step = if self.stack.is_empty() {
                self.top_level_step()
            } else {
                self.content_step()
            };
            match step {
                Ok(Some(ev)) => {
                    self.drain();
                    return Ok(Pulled::Event(ev));
                }
                Ok(None) => {
                    self.drain();
                    if self.done {
                        return Ok(Pulled::Done);
                    }
                    // No event produced (preamble, DOCTYPE, dropped
                    // whitespace text): keep stepping.
                }
                Err(Interrupt::Need) => {
                    self.restore(mark);
                    return Ok(Pulled::NeedInput);
                }
                Err(Interrupt::Fail(e)) => {
                    self.failed = Some(e.clone());
                    return Err(e);
                }
            }
        }
    }

    // ---- window primitives -------------------------------------------

    fn mark(&self) -> Mark {
        Mark {
            pos: self.pos,
            line: self.line,
            column: self.column,
        }
    }

    fn restore(&mut self, mark: Mark) {
        self.pos = mark.pos;
        self.line = mark.line;
        self.column = mark.column;
    }

    /// Drops the consumed window prefix after a construct completed.
    fn drain(&mut self) {
        let consumed = self.pos - self.base;
        if consumed > 0 {
            self.buf.drain(..consumed);
            self.base = self.pos;
        }
    }

    fn err(&self, kind: ParseErrorKind) -> Interrupt {
        Interrupt::Fail(ParseError::new(kind, self.line, self.column))
    }

    fn end_abs(&self) -> usize {
        self.base + self.buf.len()
    }

    fn window(&self, from: usize) -> &[u8] {
        &self.buf[from - self.base..self.pos - self.base]
    }

    fn peek(&self) -> PResult<Option<u8>> {
        if self.pos < self.end_abs() {
            Ok(Some(self.buf[self.pos - self.base]))
        } else if self.finished {
            Ok(None)
        } else {
            Err(Interrupt::Need)
        }
    }

    fn peek_at(&self, offset: usize) -> PResult<Option<u8>> {
        if self.pos + offset < self.end_abs() {
            Ok(Some(self.buf[self.pos + offset - self.base]))
        } else if self.finished {
            Ok(None)
        } else {
            Err(Interrupt::Need)
        }
    }

    fn bump(&mut self) -> PResult<Option<u8>> {
        match self.peek()? {
            Some(b) => {
                self.pos += 1;
                if b == b'\n' {
                    self.line += 1;
                    self.column = 1;
                } else {
                    self.column += 1;
                }
                Ok(Some(b))
            }
            None => Ok(None),
        }
    }

    fn starts_with(&self, s: &str) -> PResult<bool> {
        let pattern = s.as_bytes();
        let window = &self.buf[self.pos - self.base..];
        if window.len() >= pattern.len() {
            Ok(&window[..pattern.len()] == pattern)
        } else if pattern.starts_with(window) && !self.finished {
            // The window is a strict prefix of the pattern: more input
            // could still complete the match.
            Err(Interrupt::Need)
        } else {
            Ok(false)
        }
    }

    fn consume(&mut self, s: &str) -> PResult<bool> {
        if self.starts_with(s)? {
            for _ in 0..s.len() {
                self.bump()?;
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect(&mut self, s: &str) -> PResult<()> {
        if self.consume(s)? {
            Ok(())
        } else {
            match self.peek()? {
                Some(b) => Err(self.err(ParseErrorKind::UnexpectedChar(b as char))),
                None => Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn skip_ws(&mut self) -> PResult<()> {
        while matches!(self.peek()?, Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump()?;
        }
        Ok(())
    }

    fn take_until(&mut self, delim: &str, what: &str) -> PResult<String> {
        let start = self.pos;
        loop {
            if self.starts_with(delim)? {
                let content = std::str::from_utf8(self.window(start))
                    .map_err(|_| {
                        self.err(ParseErrorKind::Malformed(format!(
                            "invalid UTF-8 in {what}"
                        )))
                    })?
                    .to_string();
                self.consume(delim)?;
                return Ok(content);
            }
            match self.bump()? {
                Some(_) => {}
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_name(&mut self) -> PResult<String> {
        let start = self.pos;
        match self.peek()? {
            Some(b) if is_name_start(b) => {
                self.bump()?;
            }
            Some(b) => return Err(self.err(ParseErrorKind::InvalidName((b as char).to_string()))),
            None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
        }
        while matches!(self.peek()?, Some(b) if is_name_char(b)) {
            self.bump()?;
        }
        Ok(std::str::from_utf8(self.window(start))
            .map_err(|_| self.err(ParseErrorKind::InvalidName("<non-utf8>".into())))?
            .to_string())
    }

    fn parse_entity(&mut self) -> PResult<char> {
        // Caller consumed '&'. Mirrors the buffered scanner: at most ~10
        // name bytes before giving up.
        let start = self.pos;
        loop {
            match self.peek()? {
                Some(b';') | None => break,
                Some(_) => {
                    if self.pos - start > 10 {
                        break;
                    }
                    self.bump()?;
                }
            }
        }
        let name = std::str::from_utf8(self.window(start))
            .unwrap_or("")
            .to_string();
        if self.peek()? != Some(b';') {
            return Err(self.err(ParseErrorKind::InvalidEntity(name)));
        }
        self.bump()?; // ';'
        match resolve_entity(&name) {
            Some(c) => Ok(c),
            None => Err(self.err(ParseErrorKind::InvalidEntity(name))),
        }
    }

    fn parse_attr_value(&mut self) -> PResult<String> {
        let quote = match self.peek()? {
            Some(q @ (b'"' | b'\'')) => {
                self.bump()?;
                q
            }
            Some(b) => return Err(self.err(ParseErrorKind::UnexpectedChar(b as char))),
            None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
        };
        let mut value = String::new();
        loop {
            match self.peek()? {
                Some(b) if b == quote => {
                    self.bump()?;
                    return Ok(value);
                }
                Some(b'&') => {
                    self.bump()?;
                    value.push(self.parse_entity()?);
                }
                Some(b'<') => return Err(self.err(ParseErrorKind::UnexpectedChar('<'))),
                Some(_) => {
                    // Collect a full UTF-8 codepoint (continuation bytes
                    // may still be in flight: `peek` interrupts for them).
                    let start = self.pos;
                    self.bump()?;
                    while matches!(self.peek()?, Some(b) if (b & 0xC0) == 0x80) {
                        self.bump()?;
                    }
                    value.push_str(std::str::from_utf8(self.window(start)).map_err(|_| {
                        self.err(ParseErrorKind::Malformed("invalid UTF-8".into()))
                    })?);
                }
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_text(&mut self) -> PResult<String> {
        let mut text = String::new();
        loop {
            match self.peek()? {
                Some(b'<') | None => return Ok(text),
                Some(b'&') => {
                    self.bump()?;
                    text.push(self.parse_entity()?);
                }
                Some(_) => {
                    let start = self.pos;
                    loop {
                        match self.peek()? {
                            Some(b'<' | b'&') | None => break,
                            Some(_) => {
                                self.bump()?;
                            }
                        }
                    }
                    text.push_str(std::str::from_utf8(self.window(start)).map_err(|_| {
                        self.err(ParseErrorKind::Malformed("invalid UTF-8".into()))
                    })?);
                }
            }
        }
    }

    fn skip_doctype(&mut self) -> PResult<()> {
        // Caller consumed "<!DOCTYPE". Same quote- and bracket-aware skip
        // as the buffered parser.
        let mut depth = 0usize;
        let mut quote: Option<u8> = None;
        loop {
            match self.bump()? {
                Some(b) if quote == Some(b) => quote = None,
                Some(_) if quote.is_some() => {}
                Some(q @ (b'"' | b'\'')) => quote = Some(q),
                Some(b'[') => depth += 1,
                Some(b']') => depth = depth.saturating_sub(1),
                Some(b'>') if depth == 0 => return Ok(()),
                Some(_) => {}
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    // ---- state-machine steps -----------------------------------------

    /// Accounts one scanned document node against the node ceiling. Only
    /// called once a construct has fully parsed, so an interrupted
    /// construct never double-counts.
    fn count_node(&mut self) -> PResult<()> {
        self.nodes += 1;
        if let Some(max) = self.limits.max_nodes {
            if self.nodes > max {
                return Err(self.err(ParseErrorKind::NodesExceeded { limit: max }));
            }
        }
        Ok(())
    }

    /// One prolog/epilog construct (mirrors the buffered
    /// `parse_document` loop body).
    fn top_level_step(&mut self) -> PResult<Option<XmlEvent>> {
        if !self.did_preamble {
            self.consume("\u{FEFF}")?;
            self.skip_ws()?;
            let is_decl = self.starts_with("<?xml")?
                && matches!(self.peek_at(5)?, Some(b' ' | b'\t' | b'\r' | b'\n' | b'?'));
            if is_decl {
                self.consume("<?xml")?;
                self.take_until("?>", "XML declaration")?;
            }
            self.did_preamble = true;
            return Ok(None);
        }
        self.skip_ws()?;
        if self.peek()?.is_none() {
            if !self.saw_root {
                return Err(self.err(ParseErrorKind::InvalidStructure("no root element".into())));
            }
            self.done = true;
            return Ok(None);
        }
        if self.starts_with("<!--")? {
            self.consume("<!--")?;
            let comment = self.take_until("-->", "comment")?;
            self.count_node()?;
            return Ok(Some(XmlEvent::Comment(comment)));
        }
        if self.starts_with("<!DOCTYPE")? {
            self.consume("<!DOCTYPE")?;
            self.skip_doctype()?;
            return Ok(None);
        }
        if self.starts_with("<?")? {
            self.consume("<?")?;
            let target = self.parse_name()?;
            self.skip_ws()?;
            let data = self.take_until("?>", "processing instruction")?;
            self.count_node()?;
            return Ok(Some(XmlEvent::ProcessingInstruction {
                target,
                data: data.trim_end().to_string(),
            }));
        }
        if self.starts_with("<")? {
            if self.saw_root {
                return Err(self.err(ParseErrorKind::InvalidStructure(
                    "multiple root elements".into(),
                )));
            }
            self.bump()?;
            let ev = self.open_tag()?;
            self.saw_root = true;
            return Ok(Some(ev));
        }
        Err(self.err(ParseErrorKind::InvalidStructure(
            "text content outside the root element".into(),
        )))
    }

    /// An element open tag, `<` already consumed (mirrors the buffered
    /// `parse_element` up to the end of the tag).
    fn open_tag(&mut self) -> PResult<XmlEvent> {
        if (self.stack.len() as u32).saturating_add(1) > self.limits.max_depth {
            return Err(self.err(ParseErrorKind::DepthExceeded {
                limit: self.limits.max_depth,
            }));
        }
        let name = self.parse_name()?;
        let mut attributes: Vec<Attribute> = Vec::new();
        loop {
            self.skip_ws()?;
            match self.peek()? {
                Some(b'/') => {
                    self.bump()?;
                    self.expect(">")?;
                    self.count_node()?;
                    self.pending
                        .push_back(XmlEvent::EndElement { name: name.clone() });
                    return Ok(XmlEvent::StartElement { name, attributes });
                }
                Some(b'>') => {
                    self.bump()?;
                    self.count_node()?;
                    self.stack.push(name.clone());
                    return Ok(XmlEvent::StartElement { name, attributes });
                }
                Some(b) if is_name_start(b) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws()?;
                    self.expect("=")?;
                    self.skip_ws()?;
                    let value = self.parse_attr_value()?;
                    if attributes.iter().any(|a| a.name == attr_name) {
                        return Err(self.err(ParseErrorKind::DuplicateAttribute(attr_name)));
                    }
                    attributes.push(Attribute {
                        name: attr_name,
                        value,
                    });
                }
                Some(b) => return Err(self.err(ParseErrorKind::UnexpectedChar(b as char))),
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    /// One element-content construct (mirrors the buffered
    /// `parse_element` content loop body).
    fn content_step(&mut self) -> PResult<Option<XmlEvent>> {
        if self.starts_with("</")? {
            self.consume("</")?;
            let close = self.parse_name()?;
            let open = self.stack.last().expect("content implies an open element");
            if close != *open {
                return Err(self.err(ParseErrorKind::MismatchedTag {
                    expected: open.clone(),
                    found: close,
                }));
            }
            self.skip_ws()?;
            self.expect(">")?;
            self.stack.pop();
            return Ok(Some(XmlEvent::EndElement { name: close }));
        }
        if self.starts_with("<!--")? {
            self.consume("<!--")?;
            let comment = self.take_until("-->", "comment")?;
            self.count_node()?;
            return Ok(Some(XmlEvent::Comment(comment)));
        }
        if self.starts_with("<![CDATA[")? {
            self.consume("<![CDATA[")?;
            let cdata = self.take_until("]]>", "CDATA section")?;
            self.count_node()?;
            return Ok(Some(XmlEvent::CData(cdata)));
        }
        if self.starts_with("<?")? {
            self.consume("<?")?;
            let target = self.parse_name()?;
            self.skip_ws()?;
            let data = self.take_until("?>", "processing instruction")?;
            self.count_node()?;
            return Ok(Some(XmlEvent::ProcessingInstruction {
                target,
                data: data.trim_end().to_string(),
            }));
        }
        if self.starts_with("<")? {
            self.bump()?;
            return self.open_tag().map(Some);
        }
        if self.peek()?.is_none() {
            return Err(self.err(ParseErrorKind::UnexpectedEof));
        }
        let text = self.parse_text()?;
        let keep = !self.limits.skip_whitespace_text || !text.chars().all(char::is_whitespace);
        if keep && !text.is_empty() {
            self.count_node()?;
            return Ok(Some(XmlEvent::Text(text)));
        }
        Ok(None)
    }
}

/// Builds a [`Document`] by replaying parse events — the same `add_*`
/// calls the buffered parser performs, in the same order.
#[derive(Default)]
struct DocBuilder {
    doc: Document,
    stack: Vec<DocNodeId>,
}

impl DocBuilder {
    fn apply(&mut self, event: XmlEvent) -> Result<(), ParseError> {
        match event {
            XmlEvent::StartElement { name, attributes } => {
                let id = self.doc.add_element(self.stack.last().copied(), name);
                for a in attributes {
                    // The parser already rejected duplicates.
                    self.doc.add_attribute(id, a.name, a.value)?;
                }
                self.stack.push(id);
            }
            XmlEvent::EndElement { .. } => {
                self.stack.pop();
            }
            XmlEvent::Text(t) => {
                let parent = *self.stack.last().expect("text only inside an element");
                self.doc.add_text(parent, t);
            }
            XmlEvent::CData(t) => {
                let parent = *self.stack.last().expect("CDATA only inside an element");
                self.doc.add_cdata(parent, t);
            }
            XmlEvent::Comment(c) => {
                self.doc.add_comment(self.stack.last().copied(), c);
            }
            XmlEvent::ProcessingInstruction { target, data } => {
                self.doc.add_pi(self.stack.last().copied(), target, data);
            }
        }
        Ok(())
    }
}

/// Pulls events until the parser needs input or completes.
fn pump(parser: &mut StreamParser, builder: &mut DocBuilder) -> Result<bool, ParseError> {
    loop {
        match parser.next_event()? {
            Pulled::Event(ev) => builder.apply(ev)?,
            Pulled::NeedInput => return Ok(false),
            Pulled::Done => return Ok(true),
        }
    }
}

/// Parses a complete document from an iterator of byte chunks, holding
/// only the in-flight construct in memory. Produces the same
/// [`Document`] (or the same [`ParseError`]) as the buffered parser over
/// the concatenated input.
pub fn parse_chunks<I, C>(chunks: I, limits: StreamLimits) -> Result<Document, ParseError>
where
    I: IntoIterator<Item = C>,
    C: AsRef<[u8]>,
{
    let mut parser = StreamParser::new(limits);
    let mut builder = DocBuilder::default();
    for chunk in chunks {
        parser.feed(chunk.as_ref())?;
        pump(&mut parser, &mut builder)?;
    }
    parser.finish();
    pump(&mut parser, &mut builder)?;
    Ok(builder.doc)
}

/// Error from [`parse_reader`]: the source failed, or the document did.
#[derive(Debug)]
pub enum ReaderError {
    /// The underlying reader returned an I/O error.
    Io(std::io::Error),
    /// The document failed to parse or violated a streaming limit.
    Parse(ParseError),
}

impl fmt::Display for ReaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "read error: {e}"),
            Self::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReaderError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Parse(e) => Some(e),
        }
    }
}

/// Parses a complete document from a [`Read`] source in 64 KiB chunks,
/// without staging the whole input in memory first.
pub fn parse_reader<R: Read>(mut reader: R, limits: StreamLimits) -> Result<Document, ReaderError> {
    let mut parser = StreamParser::new(limits);
    let mut builder = DocBuilder::default();
    let mut chunk = vec![0u8; 64 * 1024];
    loop {
        let n = reader.read(&mut chunk).map_err(ReaderError::Io)?;
        if n == 0 {
            break;
        }
        parser.feed(&chunk[..n]).map_err(ReaderError::Parse)?;
        pump(&mut parser, &mut builder).map_err(ReaderError::Parse)?;
    }
    parser.finish();
    pump(&mut parser, &mut builder).map_err(ReaderError::Parse)?;
    Ok(builder.doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_one(input: &str, limits: StreamLimits) -> Result<Document, ParseError> {
        parse_chunks([input.as_bytes()], limits)
    }

    #[test]
    fn minimal_document_matches_buffered() {
        let doc = stream_one("<a/>", StreamLimits::default()).unwrap();
        assert_eq!(doc, crate::parse("<a/>").unwrap());
    }

    #[test]
    fn full_feature_document_matches_buffered() {
        let xml = "<?xml version=\"1.0\"?>\n<!DOCTYPE films [<!ELEMENT films ANY>]>\n\
                   <!-- prolog --><films year='1954'>\n  <picture title=\"Rear&#x20;Window\">\
                   Tom &amp; Jerry<![CDATA[<raw>]]><?pi data ?></picture>\n</films>";
        let doc = stream_one(xml, StreamLimits::default()).unwrap();
        assert_eq!(doc, crate::parse(xml).unwrap());
    }

    #[test]
    fn event_stream_shape() {
        let mut p = StreamParser::new(StreamLimits::default());
        p.feed(b"<r a='1'><b/>hi</r>").unwrap();
        p.finish();
        let mut kinds = Vec::new();
        loop {
            match p.next_event().unwrap() {
                Pulled::Event(XmlEvent::StartElement { name, .. }) => {
                    kinds.push(format!("+{name}"))
                }
                Pulled::Event(XmlEvent::EndElement { name }) => kinds.push(format!("-{name}")),
                Pulled::Event(XmlEvent::Text(t)) => kinds.push(format!("t:{t}")),
                Pulled::Event(_) => kinds.push("other".into()),
                Pulled::NeedInput => panic!("finished input never needs more"),
                Pulled::Done => break,
            }
        }
        assert_eq!(kinds, ["+r", "+b", "-b", "t:hi", "-r"]);
    }

    #[test]
    fn needs_input_mid_tag() {
        let mut p = StreamParser::new(StreamLimits::default());
        p.feed(b"<roo").unwrap();
        assert_eq!(p.next_event().unwrap(), Pulled::NeedInput);
        p.feed(b"t><").unwrap();
        match p.next_event().unwrap() {
            Pulled::Event(XmlEvent::StartElement { name, .. }) => assert_eq!(name, "root"),
            other => panic!("expected start, got {other:?}"),
        }
        assert_eq!(p.next_event().unwrap(), Pulled::NeedInput);
        p.feed(b"/root>").unwrap();
        p.finish();
        assert_eq!(
            p.next_event().unwrap(),
            Pulled::Event(XmlEvent::EndElement {
                name: "root".into()
            })
        );
        assert_eq!(p.next_event().unwrap(), Pulled::Done);
    }

    #[test]
    fn byte_limit_rejects_at_feed_time_without_buffering() {
        let mut p = StreamParser::new(StreamLimits::default().max_bytes(8));
        p.feed(b"<r>12345").unwrap();
        let err = p.feed(b"6789</r>").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::BytesExceeded { limit: 8 });
        // The offending chunk was never buffered.
        assert!(p.buffered_high_watermark() <= 8);
        // The error is terminal.
        assert_eq!(
            p.next_event().unwrap_err().kind,
            ParseErrorKind::BytesExceeded { limit: 8 }
        );
    }

    #[test]
    fn exactly_max_bytes_is_accepted() {
        let xml = b"<r>x</r>";
        let doc = parse_chunks([xml], StreamLimits::default().max_bytes(xml.len())).unwrap();
        assert_eq!(doc.element_count(), 1);
    }

    #[test]
    fn node_limit_fails_during_scan() {
        // <r> + three children = 4 nodes; a 3-node ceiling trips on the
        // third child without scanning the rest.
        let err = stream_one(
            "<r><a/><b/><c/><d/></r>",
            StreamLimits::default().max_nodes(3),
        )
        .unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::NodesExceeded { limit: 3 });
        let ok = stream_one("<r><a/><b/></r>", StreamLimits::default().max_nodes(3));
        assert!(ok.is_ok());
    }

    #[test]
    fn depth_limit_matches_buffered_error() {
        let deep = "<a>".repeat(300) + &"</a>".repeat(300);
        let stream_err = stream_one(&deep, StreamLimits::default()).unwrap_err();
        let buffered_err = crate::parse(&deep).unwrap_err();
        assert_eq!(stream_err, buffered_err);
        assert_eq!(
            stream_err.kind,
            ParseErrorKind::DepthExceeded { limit: 256 }
        );
    }

    #[test]
    fn window_stays_small_across_large_flat_document() {
        // 4000 small elements fed in small chunks: the window never holds
        // more than a few constructs even though the input is ~60 KiB.
        let mut xml = String::from("<r>");
        for i in 0..4000 {
            xml.push_str(&format!("<item n='{i}'/>"));
        }
        xml.push_str("</r>");
        let mut p = StreamParser::new(StreamLimits::default());
        let mut builder = DocBuilder::default();
        for chunk in xml.as_bytes().chunks(512) {
            p.feed(chunk).unwrap();
            pump(&mut p, &mut builder).unwrap();
        }
        p.finish();
        assert!(pump(&mut p, &mut builder).unwrap());
        assert!(
            p.buffered_high_watermark() < 2048,
            "watermark {} for a {}-byte input",
            p.buffered_high_watermark(),
            xml.len()
        );
        assert_eq!(builder.doc, crate::parse(&xml).unwrap());
    }

    #[test]
    fn parse_reader_matches_buffered() {
        let xml = "<r><a x='1'>hi</a><!--c--></r>";
        let doc = parse_reader(xml.as_bytes(), StreamLimits::default()).unwrap();
        assert_eq!(doc, crate::parse(xml).unwrap());
    }

    #[test]
    fn invalid_document_matches_buffered_error_and_position() {
        for xml in [
            "<a></b>",
            "<a><b>",
            "<a/><b/>",
            "   ",
            "<a>&nope;</a>",
            "<a>\n\n</b>",
            "<a x='1' x='2'/>",
            "<t>&#0;</t>",
        ] {
            let buffered = crate::parse(xml).unwrap_err();
            let streamed = stream_one(xml, StreamLimits::default()).unwrap_err();
            assert_eq!(streamed, buffered, "input {xml:?}");
        }
    }
}
