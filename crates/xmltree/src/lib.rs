//! # xsdf-xmltree
//!
//! XML parsing and tree modelling substrate for the XSDF framework
//! (*Resolving XML Semantic Ambiguity*, EDBT 2015).
//!
//! This crate provides, from scratch (no external XML dependencies):
//!
//! * a streaming [`parser`] for XML 1.0 documents (elements, attributes,
//!   text, CDATA sections, comments, processing instructions, standard
//!   entities and character references),
//! * an arena-based [`document`] model ([`Document`]) addressed by stable
//!   [`DocNodeId`] handles,
//! * the paper's **rooted ordered labeled tree** abstraction
//!   ([`tree::XmlTree`], Definition 1): preorder-indexed nodes carrying a
//!   label, a depth, a fan-out, and a *density* (number of children with
//!   distinct labels),
//! * tree [`distance`] queries (edge-count distance, rings, and the
//!   breadth-first sphere traversal behind Definitions 4–5),
//! * [`navigate`] helpers (ancestors, root paths, subtrees, siblings),
//! * the semantically augmented output tree ([`semantic::SemanticTree`],
//!   Figure 4 of the paper) and XML [`serialize`] support.
//!
//! The crate is deliberately free of linguistic knowledge: how a tag name or
//! text value is split into tokens is delegated to the [`tree::ValueTokenizer`]
//! trait so that higher layers (the `xsdf-lingproc` crate) can plug in real
//! linguistic pre-processing while this crate stays self-contained.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distance;
pub mod document;
pub mod error;
pub mod links;
pub mod navigate;
pub mod parser;
pub mod semantic;
pub mod serialize;
pub mod stream;
pub mod tree;

pub use document::{DocNode, DocNodeId, Document};
pub use error::{ParseError, ParseErrorKind};
pub use semantic::{SemanticNode, SemanticTree};
pub use stream::{Pulled, StreamLimits, StreamParser, XmlEvent};
pub use tree::{NodeId, NodeKind, TreeBuilder, XmlTree};

/// Parses an XML string into a [`Document`].
///
/// Convenience wrapper around [`parser::Parser`].
///
/// ```
/// let doc = xsdf_xmltree::parse("<films><picture title='Rear Window'/></films>").unwrap();
/// let root = doc.root_element().unwrap();
/// assert_eq!(doc.name(root), Some("films"));
/// ```
pub fn parse(input: &str) -> Result<Document, ParseError> {
    parser::Parser::new(input).parse_document()
}
