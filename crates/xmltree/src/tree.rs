//! The rooted ordered labeled tree of Definition 1.
//!
//! An [`XmlTree`] is the flattened, preorder-indexed view of an XML document
//! that the whole XSDF pipeline operates on. Following Section 3.1 of the
//! paper:
//!
//! * element nodes are labeled with their tag names,
//! * attribute nodes appear as children of their containing element, sorted
//!   by attribute name and placed *before* all sub-elements,
//! * element/attribute text values are tokenized (via a pluggable
//!   [`ValueTokenizer`]) and each token becomes a leaf child, in order of
//!   appearance,
//! * each node knows its preorder index `T[i]`, label `T[i].ℓ`, depth
//!   `T[i].d` (in edges from the root), fan-out `T[i].f` (number of
//!   children), and *density* (number of children with **distinct** labels,
//!   the `x.f̄` of Proposition 3).

use std::collections::HashMap;

use crate::document::{DocNodeId, Document};

/// Index of a node in an [`XmlTree`], equal to its preorder rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw preorder index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What kind of XML construct a tree node came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An element tag name.
    Element,
    /// An attribute name.
    Attribute,
    /// One token of an element or attribute text value.
    ValueToken,
}

/// One node of the rooted ordered labeled tree.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Node label `T[i].ℓ`: a tag/attribute name or a value token. For tag
    /// names this is the *processed* label (after linguistic
    /// pre-processing); [`TreeNode::original`] keeps the raw spelling.
    pub label: String,
    /// The raw spelling as it appeared in the document.
    pub original: String,
    /// Element, attribute, or value-token node.
    pub kind: NodeKind,
    /// Depth `T[i].d` in edges from the root (root has depth 0).
    pub depth: u32,
    /// Parent node, `None` only for the root.
    pub parent: Option<NodeId>,
    /// Ordered children.
    pub children: Vec<NodeId>,
}

impl TreeNode {
    /// Fan-out `T[i].f`: the number of children.
    pub fn fan_out(&self) -> usize {
        self.children.len()
    }
}

/// Splits a text value into tokens, one leaf node per token.
///
/// The default [`WhitespaceTokenizer`] splits on whitespace only; the
/// `xsdf-lingproc` crate provides a linguistically aware implementation
/// (stop-word removal, stemming, compound detection).
pub trait ValueTokenizer {
    /// Tokenizes a text value. Returning an empty vector drops the value.
    fn tokenize_value(&self, text: &str) -> Vec<String>;

    /// Normalizes a tag or attribute name into a node label. The default
    /// implementation returns the name unchanged.
    fn normalize_label(&self, name: &str) -> String {
        name.to_string()
    }
}

/// The trivial tokenizer: split on whitespace, no normalization.
#[derive(Debug, Clone, Copy, Default)]
pub struct WhitespaceTokenizer;

impl ValueTokenizer for WhitespaceTokenizer {
    fn tokenize_value(&self, text: &str) -> Vec<String> {
        text.split_whitespace().map(str::to_string).collect()
    }
}

/// Which parts of the document contribute nodes to the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContentMode {
    /// Elements, attributes, *and* tokenized text values (the paper's
    /// *structure-and-content* mode, used throughout its evaluation).
    #[default]
    StructureAndContent,
    /// Elements and attribute names only (*structure-only* mode).
    StructureOnly,
}

/// Builds [`XmlTree`]s from [`Document`]s.
#[derive(Default)]
pub struct TreeBuilder<T = WhitespaceTokenizer> {
    tokenizer: T,
    mode: ContentMode,
}

/// The result of a build: the tree plus alignment maps back to the source
/// document, used by corpus generators to attach gold-standard senses.
#[derive(Debug, Clone)]
pub struct BuildResult {
    /// The rooted ordered labeled tree.
    pub tree: XmlTree,
    /// Maps each document element to its tree node.
    pub element_nodes: HashMap<DocNodeId, NodeId>,
    /// Maps `(element, attribute index)` to the attribute's tree node.
    pub attribute_nodes: HashMap<(DocNodeId, usize), NodeId>,
    /// Maps `(text node, token index)` / `(element, attr idx << 16 | token)`
    /// is too clever; instead: maps each text-ish doc node to the tree nodes
    /// of its tokens, in order.
    pub token_nodes: HashMap<DocNodeId, Vec<NodeId>>,
    /// Maps `(element, attribute index)` to the tree nodes of the attribute
    /// value's tokens, in order.
    pub attr_token_nodes: HashMap<(DocNodeId, usize), Vec<NodeId>>,
}

impl TreeBuilder<WhitespaceTokenizer> {
    /// A builder with the default whitespace tokenizer and
    /// structure-and-content mode.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<T: ValueTokenizer> TreeBuilder<T> {
    /// A builder with a custom tokenizer.
    pub fn with_tokenizer(tokenizer: T) -> Self {
        Self {
            tokenizer,
            mode: ContentMode::default(),
        }
    }

    /// Selects structure-only or structure-and-content mode.
    pub fn content_mode(mut self, mode: ContentMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builds the tree for `doc`, starting at its root element.
    ///
    /// Returns `None` when the document has no root element.
    pub fn build(&self, doc: &Document) -> Option<BuildResult> {
        let root = doc.root_element()?;
        let mut out = BuildResult {
            tree: XmlTree {
                nodes: Vec::new(),
                links: Vec::new(),
            },
            element_nodes: HashMap::new(),
            attribute_nodes: HashMap::new(),
            token_nodes: HashMap::new(),
            attr_token_nodes: HashMap::new(),
        };
        self.build_element(doc, root, None, 0, &mut out);
        out.tree.finish();
        Some(out)
    }

    fn push_node(
        out: &mut BuildResult,
        label: String,
        original: String,
        kind: NodeKind,
        depth: u32,
        parent: Option<NodeId>,
    ) -> NodeId {
        let id = NodeId(out.tree.nodes.len() as u32);
        out.tree.nodes.push(TreeNode {
            label,
            original,
            kind,
            depth,
            parent,
            children: Vec::new(),
        });
        if let Some(p) = parent {
            out.tree.nodes[p.index()].children.push(id);
        }
        id
    }

    fn build_element(
        &self,
        doc: &Document,
        elem: DocNodeId,
        parent: Option<NodeId>,
        depth: u32,
        out: &mut BuildResult,
    ) -> NodeId {
        let name = doc.name(elem).expect("element node");
        let label = self.tokenizer.normalize_label(name);
        let node = Self::push_node(
            out,
            label,
            name.to_string(),
            NodeKind::Element,
            depth,
            parent,
        );
        out.element_nodes.insert(elem, node);

        // Attributes first, sorted by name (Section 3.1), before sub-elements.
        let mut attr_order: Vec<usize> = (0..doc.attributes(elem).len()).collect();
        attr_order.sort_by(|&a, &b| {
            doc.attributes(elem)[a]
                .name
                .cmp(&doc.attributes(elem)[b].name)
        });
        for idx in attr_order {
            let attr = &doc.attributes(elem)[idx];
            let attr_label = self.tokenizer.normalize_label(&attr.name);
            let attr_node = Self::push_node(
                out,
                attr_label,
                attr.name.clone(),
                NodeKind::Attribute,
                depth + 1,
                Some(node),
            );
            out.attribute_nodes.insert((elem, idx), attr_node);
            if self.mode == ContentMode::StructureAndContent {
                let tokens = self.tokenizer.tokenize_value(&attr.value);
                let mut ids = Vec::with_capacity(tokens.len());
                for tok in tokens {
                    ids.push(Self::push_node(
                        out,
                        tok.clone(),
                        tok,
                        NodeKind::ValueToken,
                        depth + 2,
                        Some(attr_node),
                    ));
                }
                out.attr_token_nodes.insert((elem, idx), ids);
            }
        }

        // Children in document order.
        for &child in doc.children(elem) {
            match doc.node(child) {
                crate::document::DocNode::Element { .. } => {
                    self.build_element(doc, child, Some(node), depth + 1, out);
                }
                crate::document::DocNode::Text(t) | crate::document::DocNode::CData(t)
                    if self.mode == ContentMode::StructureAndContent =>
                {
                    let tokens = self.tokenizer.tokenize_value(t);
                    let mut ids = Vec::with_capacity(tokens.len());
                    for tok in tokens {
                        ids.push(Self::push_node(
                            out,
                            tok.clone(),
                            tok,
                            NodeKind::ValueToken,
                            depth + 1,
                            Some(node),
                        ));
                    }
                    out.token_nodes.insert(child, ids);
                }
                // Comments and PIs carry no labels; they are not part of the
                // rooted ordered labeled tree.
                _ => {}
            }
        }
        node
    }
}

/// The rooted ordered labeled tree (Definition 1), optionally augmented
/// with hyperlink edges (ID/IDREF — see [`crate::links`]) that sphere
/// traversals may cross. Links never change the tree structure (depth,
/// fan-out, density, preorder); they only add adjacency.
#[derive(Debug, Clone)]
pub struct XmlTree {
    nodes: Vec<TreeNode>,
    /// Symmetric hyperlink adjacency, sparse (empty for most documents).
    links: Vec<(NodeId, NodeId)>,
}

impl XmlTree {
    /// Creates a tree from raw nodes. Intended for tests and generators;
    /// callers must supply consistent parent/child links and depths.
    pub fn from_nodes(nodes: Vec<TreeNode>) -> Self {
        let mut t = Self {
            nodes,
            links: Vec::new(),
        };
        t.finish();
        t
    }

    /// Returns a copy of the tree with every label rewritten through `f`;
    /// structure, node kinds, `original` spellings and hyperlink edges are
    /// untouched. Intended for metamorphic tests: sphere construction,
    /// distances and context-vector weights depend only on structure and
    /// label *identity*, so any injective relabeling must commute with
    /// them.
    pub fn relabeled(&self, f: impl Fn(&str) -> String) -> Self {
        let mut nodes = self.nodes.clone();
        for n in &mut nodes {
            n.label = f(&n.label);
        }
        Self {
            nodes,
            links: self.links.clone(),
        }
    }

    /// Installs a hyperlink edge between two nodes (symmetric; duplicates
    /// and self-links are ignored).
    pub fn add_link(&mut self, a: NodeId, b: NodeId) {
        if a == b || a.index() >= self.nodes.len() || b.index() >= self.nodes.len() {
            return;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if !self.links.contains(&key) {
            self.links.push(key);
        }
    }

    /// The hyperlink neighbors of a node.
    pub fn link_neighbors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.links.iter().filter_map(move |&(a, b)| {
            if a == id {
                Some(b)
            } else if b == id {
                Some(a)
            } else {
                None
            }
        })
    }

    /// Number of installed hyperlink edges.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    fn finish(&mut self) {
        debug_assert!(self.check_consistency().is_ok(), "inconsistent tree");
    }

    /// Verifies structural invariants: node 0 is the only root, parents
    /// precede children (preorder), depths increase by one along edges, and
    /// child lists match parent pointers.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty tree".into());
        }
        if self.nodes[0].parent.is_some() {
            return Err("node 0 must be the root".into());
        }
        if self.nodes[0].depth != 0 {
            return Err("root must have depth 0".into());
        }
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            let p = n.parent.ok_or_else(|| format!("node {i} has no parent"))?;
            if p.index() >= i {
                return Err(format!("node {i} appears before its parent (not preorder)"));
            }
            if self.nodes[p.index()].depth + 1 != n.depth {
                return Err(format!("node {i} depth inconsistent with parent"));
            }
            if !self.nodes[p.index()].children.contains(&NodeId(i as u32)) {
                return Err(format!("node {i} missing from parent's child list"));
            }
        }
        let child_total: usize = self.nodes.iter().map(|n| n.children.len()).sum();
        if child_total != self.nodes.len() - 1 {
            return Err("child-link count does not match node count".into());
        }
        Ok(())
    }

    /// The root node `R(T) = T\[0\]`.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes `|T|`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the tree has no nodes (never the case for built trees).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access to a node's data.
    pub fn node(&self, id: NodeId) -> &TreeNode {
        &self.nodes[id.index()]
    }

    /// The node label `T[i].ℓ`.
    pub fn label(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].label
    }

    /// The node depth `T[i].d`.
    pub fn depth(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].depth
    }

    /// The node fan-out `T[i].f`.
    pub fn fan_out(&self, id: NodeId) -> usize {
        self.nodes[id.index()].children.len()
    }

    /// The node *density* `x.f̄`: number of children with distinct labels
    /// (Proposition 3).
    pub fn density(&self, id: NodeId) -> usize {
        let children = &self.nodes[id.index()].children;
        let mut labels: Vec<&str> = children
            .iter()
            .map(|c| self.nodes[c.index()].label.as_str())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    /// The parent of a node.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// The ordered children of a node.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Iterates over all nodes in preorder.
    pub fn preorder(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Maximum depth over all nodes, `Max(depth(T))` of Proposition 2.
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Maximum fan-out over all nodes, `Max(fan-out(T))`.
    pub fn max_fan_out(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.children.len())
            .max()
            .unwrap_or(0)
    }

    /// Maximum density over all nodes, `Max(f̄an-out(T))` of Proposition 3.
    pub fn max_density(&self) -> usize {
        self.preorder()
            .map(|id| self.density(id))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    /// The paper's Figure 1.a / Figure 6 document.
    pub(crate) fn figure1_doc() -> Document {
        parse(
            r#"<films>
                 <picture title="Rear Window">
                   <cast>
                     <star>Stewart</star>
                     <star>Kelly</star>
                   </cast>
                   <plot>spies</plot>
                 </picture>
               </films>"#,
        )
        .unwrap()
    }

    #[test]
    fn preorder_indices_match_definition1() {
        // Build without attributes/values for a pure-structure check.
        let doc =
            parse("<films><picture><cast><star/><star/></cast><plot/></picture></films>").unwrap();
        let result = TreeBuilder::new().build(&doc).unwrap();
        let t = &result.tree;
        let labels: Vec<_> = t.preorder().map(|id| t.label(id).to_string()).collect();
        assert_eq!(labels, ["films", "picture", "cast", "star", "star", "plot"]);
        assert_eq!(t.depth(NodeId(0)), 0);
        assert_eq!(t.depth(NodeId(2)), 2);
        assert_eq!(t.fan_out(NodeId(2)), 2);
    }

    #[test]
    fn attributes_become_sorted_children_before_elements() {
        let doc = parse(r#"<movie year="1954" name="Rear Window"><actor/></movie>"#).unwrap();
        let result = TreeBuilder::new()
            .content_mode(ContentMode::StructureOnly)
            .build(&doc)
            .unwrap();
        let t = &result.tree;
        let root = t.root();
        let child_labels: Vec<_> = t
            .children(root)
            .iter()
            .map(|&c| t.label(c).to_string())
            .collect();
        // Sorted by attribute name: "name" < "year", then sub-elements.
        assert_eq!(child_labels, ["name", "year", "actor"]);
        let kinds: Vec<_> = t.children(root).iter().map(|&c| t.node(c).kind).collect();
        assert_eq!(
            kinds,
            [NodeKind::Attribute, NodeKind::Attribute, NodeKind::Element]
        );
    }

    #[test]
    fn value_tokens_are_leaf_children() {
        let doc = figure1_doc();
        let result = TreeBuilder::new().build(&doc).unwrap();
        let t = &result.tree;
        let star_nodes: Vec<_> = t.preorder().filter(|&id| t.label(id) == "star").collect();
        assert_eq!(star_nodes.len(), 2);
        let first_star_children: Vec<_> = t
            .children(star_nodes[0])
            .iter()
            .map(|&c| t.label(c).to_string())
            .collect();
        assert_eq!(first_star_children, ["Stewart"]);
        assert_eq!(
            t.node(t.children(star_nodes[0])[0]).kind,
            NodeKind::ValueToken
        );
    }

    #[test]
    fn structure_only_drops_values() {
        let doc = figure1_doc();
        let result = TreeBuilder::new()
            .content_mode(ContentMode::StructureOnly)
            .build(&doc)
            .unwrap();
        let t = &result.tree;
        assert!(t
            .preorder()
            .all(|id| t.node(id).kind != NodeKind::ValueToken));
        // title attribute still present as a node, but without value tokens.
        assert!(t.preorder().any(|id| t.label(id) == "title"));
    }

    #[test]
    fn density_counts_distinct_labels() {
        let doc = parse("<cast><star/><star/><director/></cast>").unwrap();
        let result = TreeBuilder::new().build(&doc).unwrap();
        let t = &result.tree;
        assert_eq!(t.fan_out(t.root()), 3);
        assert_eq!(t.density(t.root()), 2);
    }

    #[test]
    fn max_statistics() {
        let doc = figure1_doc();
        let t = TreeBuilder::new().build(&doc).unwrap().tree;
        assert_eq!(t.max_depth(), 4); // films/picture/cast/star/Stewart
        assert!(t.max_fan_out() >= 3); // picture: title, cast, plot
        assert!(t.max_density() >= 2);
    }

    #[test]
    fn alignment_maps_cover_document() {
        let doc = figure1_doc();
        let result = TreeBuilder::new().build(&doc).unwrap();
        // Every element of the document appears in the map.
        let n_elems = doc.element_count();
        assert_eq!(result.element_nodes.len(), n_elems);
        // The title attribute maps to a node labeled "title".
        let picture = doc
            .find_child(doc.root_element().unwrap(), "picture")
            .unwrap();
        let attr_node = result.attribute_nodes[&(picture, 0)];
        assert_eq!(result.tree.label(attr_node), "title");
        // Its value tokens are "Rear" and "Window".
        let toks = &result.attr_token_nodes[&(picture, 0)];
        let labels: Vec<_> = toks
            .iter()
            .map(|&t| result.tree.label(t).to_string())
            .collect();
        assert_eq!(labels, ["Rear", "Window"]);
    }

    #[test]
    fn consistency_check_catches_bad_parent() {
        let nodes = vec![
            TreeNode {
                label: "a".into(),
                original: "a".into(),
                kind: NodeKind::Element,
                depth: 0,
                parent: None,
                children: vec![NodeId(1)],
            },
            TreeNode {
                label: "b".into(),
                original: "b".into(),
                kind: NodeKind::Element,
                depth: 2, // wrong: should be 1
                parent: Some(NodeId(0)),
                children: vec![],
            },
        ];
        let t = XmlTree {
            nodes,
            links: Vec::new(),
        };
        assert!(t.check_consistency().is_err());
    }

    #[test]
    fn relabeled_preserves_structure_and_links() {
        let doc = figure1_doc();
        let mut t = TreeBuilder::new().build(&doc).unwrap().tree;
        t.add_link(NodeId(0), NodeId(2));
        let r = t.relabeled(|l| format!("{l}_x"));
        assert_eq!(r.len(), t.len());
        assert_eq!(r.link_count(), 1);
        assert!(r.check_consistency().is_ok());
        for id in t.preorder() {
            assert_eq!(r.label(id), format!("{}_x", t.label(id)));
            assert_eq!(r.depth(id), t.depth(id));
            assert_eq!(r.children(id), t.children(id));
            assert_eq!(r.node(id).kind, t.node(id).kind);
            assert_eq!(r.node(id).original, t.node(id).original);
        }
    }

    #[test]
    fn single_node_tree_is_consistent() {
        let doc = parse("<only/>").unwrap();
        let t = TreeBuilder::new().build(&doc).unwrap().tree;
        assert_eq!(t.len(), 1);
        assert!(t.check_consistency().is_ok());
        assert_eq!(t.max_depth(), 0);
        assert_eq!(t.density(t.root()), 0);
    }
}
