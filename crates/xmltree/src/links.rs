//! Intra-document hyperlinks: ID/IDREF edges.
//!
//! The paper notes that semantic XML trees become *graphs* "when
//! hyperlinks come to play" (Section 1). This module resolves the XML
//! ID/IDREF convention — an attribute named `id` declares an anchor, and
//! attributes named `idref`/`ref`/`href` (with a `#`-prefixed or bare id
//! value) point at it — into extra node-to-node edges that the sphere
//! traversals can cross, turning disambiguation contexts from trees into
//! graphs.

use std::collections::HashMap;

use crate::document::{DocNodeId, Document};
use crate::tree::{BuildResult, NodeId};

/// A resolved hyperlink between two elements of a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// The referencing element (carries the IDREF attribute).
    pub from: DocNodeId,
    /// The referenced element (carries the ID attribute).
    pub to: DocNodeId,
}

/// Attribute names treated as anchors.
const ID_ATTRS: [&str; 2] = ["id", "xml:id"];
/// Attribute names treated as references.
const REF_ATTRS: [&str; 4] = ["idref", "ref", "href", "xlink:href"];

/// Scans a document for ID/IDREF pairs and resolves them into [`Link`]s.
/// Unresolvable references are ignored (real-world documents dangle).
pub fn resolve_links(doc: &Document) -> Vec<Link> {
    let mut anchors: HashMap<&str, DocNodeId> = HashMap::new();
    for node in doc.all_nodes() {
        for attr in doc.attributes(node) {
            if ID_ATTRS.contains(&attr.name.as_str()) {
                anchors.entry(attr.value.as_str()).or_insert(node);
            }
        }
    }
    let mut links = Vec::new();
    for node in doc.all_nodes() {
        for attr in doc.attributes(node) {
            if REF_ATTRS.contains(&attr.name.as_str()) {
                let target = attr.value.strip_prefix('#').unwrap_or(&attr.value);
                if let Some(&to) = anchors.get(target) {
                    if to != node {
                        links.push(Link { from: node, to });
                    }
                }
            }
        }
    }
    links
}

/// Translates resolved document links into tree-node pairs using a build
/// result's alignment maps, and installs them on the tree (see
/// [`crate::tree::XmlTree::add_link`]). Returns the number of installed links.
pub fn install_links(build: &mut BuildResult, links: &[Link]) -> usize {
    let pairs: Vec<(NodeId, NodeId)> = links
        .iter()
        .filter_map(|l| {
            let from = build.element_nodes.get(&l.from)?;
            let to = build.element_nodes.get(&l.to)?;
            Some((*from, *to))
        })
        .collect();
    for &(a, b) in &pairs {
        build.tree.add_link(a, b);
    }
    pairs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::sphere;
    use crate::parse;
    use crate::tree::TreeBuilder;

    const LINKED: &str = r#"<library>
        <authors>
            <author id="a1"><name>Shakespeare</name></author>
        </authors>
        <books>
            <book ref="a1"><title>Hamlet</title></book>
            <book ref="missing"><title>Lost</title></book>
        </books>
    </library>"#;

    #[test]
    fn resolves_id_idref_pairs() {
        let doc = parse(LINKED).unwrap();
        let links = resolve_links(&doc);
        assert_eq!(links.len(), 1);
        assert_eq!(doc.name(links[0].to), Some("author"));
        assert_eq!(doc.name(links[0].from), Some("book"));
    }

    #[test]
    fn hash_prefixed_hrefs_resolve() {
        let doc = parse(r##"<r><a id="x"/><b href="#x"/></r>"##).unwrap();
        assert_eq!(resolve_links(&doc).len(), 1);
    }

    #[test]
    fn self_and_dangling_references_ignored() {
        let doc = parse(r#"<r><a id="x" ref="x"/><b ref="nope"/></r>"#).unwrap();
        assert!(resolve_links(&doc).is_empty());
    }

    #[test]
    fn installed_links_shorten_sphere_distances() {
        let doc = parse(LINKED).unwrap();
        let mut build = TreeBuilder::new().build(&doc).unwrap();
        let links = resolve_links(&doc);
        assert_eq!(install_links(&mut build, &links), 1);
        let tree = &build.tree;
        let book = tree
            .preorder()
            .find(|&n| tree.label(n) == "book" && !tree.children(n).is_empty())
            .unwrap();
        // Without the link, the author subtree is 4 edges away (book →
        // books → library → authors → author); with it, 1.
        let s1: Vec<String> = sphere(tree, book, 1)
            .into_iter()
            .map(|(n, _)| tree.label(n).to_string())
            .collect();
        assert!(
            s1.contains(&"author".to_string()),
            "link edge crossed at distance 1: {s1:?}"
        );
        // And transitively, the author's name at distance 2.
        let s2: Vec<String> = sphere(tree, book, 2)
            .into_iter()
            .map(|(n, _)| tree.label(n).to_string())
            .collect();
        assert!(s2.contains(&"name".to_string()));
    }

    #[test]
    fn links_do_not_change_tree_statistics() {
        let doc = parse(LINKED).unwrap();
        let mut build = TreeBuilder::new().build(&doc).unwrap();
        let before = (
            build.tree.len(),
            build.tree.max_depth(),
            build.tree.max_fan_out(),
        );
        let links = resolve_links(&doc);
        install_links(&mut build, &links);
        let after = (
            build.tree.len(),
            build.tree.max_depth(),
            build.tree.max_fan_out(),
        );
        assert_eq!(before, after, "links are traversal edges, not structure");
        assert!(build.tree.check_consistency().is_ok());
    }
}
