//! A hand-written recursive-descent XML 1.0 parser.
//!
//! Supports the constructs the evaluation corpus needs (and the common ones
//! beyond it): elements, attributes with single or double quotes, text with
//! the five predefined entities plus decimal/hex character references, CDATA
//! sections, comments, processing instructions, the XML declaration, and
//! DOCTYPE declarations (skipped, including internal subsets).
//!
//! Whitespace-only text between elements is dropped; all other text is kept
//! verbatim (entity-resolved).

use crate::document::{DocNodeId, Document};
use crate::error::{ParseError, ParseErrorKind};

/// Is `c` a character the XML 1.0 `Char` production permits?
///
/// `Char ::= #x9 | #xA | #xD | [#x20-#xD7FF] | [#xE000-#xFFFD] |
/// [#x10000-#x10FFFF]` — surrogates are already unrepresentable as
/// `char`, so the checks left are the C0 controls (other than tab, LF,
/// CR) and the two non-characters `#xFFFE`/`#xFFFF`.
pub(crate) fn is_xml_char(c: char) -> bool {
    matches!(c,
        '\u{9}' | '\u{A}' | '\u{D}'
        | '\u{20}'..='\u{D7FF}'
        | '\u{E000}'..='\u{FFFD}'
        | '\u{10000}'..='\u{10FFFF}')
}

/// Resolves an entity name (the part between `&` and `;`) to its
/// character: the five predefined entities plus decimal/hex character
/// references. Numeric references are validated against the XML 1.0
/// `Char` production, so `&#0;` and the other forbidden control
/// characters are rejected rather than smuggled into content. Shared by
/// the buffered and streaming parsers so both resolve identically.
pub(crate) fn resolve_entity(name: &str) -> Option<char> {
    match name {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ if name.starts_with("#x") || name.starts_with("#X") => {
            let code = u32::from_str_radix(&name[2..], 16).ok()?;
            char::from_u32(code).filter(|&c| is_xml_char(c))
        }
        _ if name.starts_with('#') => {
            let code = name[1..].parse::<u32>().ok()?;
            char::from_u32(code).filter(|&c| is_xml_char(c))
        }
        _ => None,
    }
}

/// May `b` start an XML name? (ASCII letters, `_`, `:`, and any
/// multi-byte UTF-8 lead/continuation byte.)
pub(crate) fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

/// May `b` continue an XML name?
pub(crate) fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

/// A recursive-descent XML parser over a string slice.
pub struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    line: u32,
    column: u32,
    depth: u32,
    /// When `true` (default), whitespace-only text nodes are discarded.
    pub skip_whitespace_text: bool,
    /// Maximum element nesting depth before parsing fails (a stack-overflow
    /// guard for adversarial inputs: the parser recurses per element, and
    /// 2 MiB thread stacks comfortably hold ~256 frames in debug builds).
    /// Default 256.
    pub max_depth: u32,
}

impl<'a> Parser<'a> {
    /// Creates a parser over the given input.
    pub fn new(input: &'a str) -> Self {
        Self {
            input: input.as_bytes(),
            pos: 0,
            line: 1,
            column: 1,
            depth: 0,
            skip_whitespace_text: true,
            max_depth: 256,
        }
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(kind, self.line, self.column)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.input.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn consume(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.consume(s) {
            Ok(())
        } else {
            match self.peek() {
                Some(b) => Err(self.err(ParseErrorKind::UnexpectedChar(b as char))),
                None => Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Scans until `delim` is found; returns the content before it and
    /// consumes the delimiter.
    fn take_until(&mut self, delim: &str, what: &str) -> Result<String, ParseError> {
        let start = self.pos;
        while self.pos < self.input.len() {
            if self.starts_with(delim) {
                let content = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| {
                        self.err(ParseErrorKind::Malformed(format!(
                            "invalid UTF-8 in {what}"
                        )))
                    })?
                    .to_string();
                self.consume(delim);
                return Ok(content);
            }
            self.bump();
        }
        Err(self.err(ParseErrorKind::UnexpectedEof))
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if is_name_start(b) => {
                self.bump();
            }
            Some(b) => return Err(self.err(ParseErrorKind::InvalidName((b as char).to_string()))),
            None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
        }
        while matches!(self.peek(), Some(b) if is_name_char(b)) {
            self.bump();
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err(ParseErrorKind::InvalidName("<non-utf8>".into())))?
            .to_string())
    }

    fn parse_entity(&mut self) -> Result<char, ParseError> {
        // Caller consumed '&'.
        let start = self.pos;
        while self.pos < self.input.len() && self.peek() != Some(b';') {
            if self.pos - start > 10 {
                break;
            }
            self.bump();
        }
        let name = std::str::from_utf8(&self.input[start..self.pos])
            .unwrap_or("")
            .to_string();
        if self.peek() != Some(b';') {
            return Err(self.err(ParseErrorKind::InvalidEntity(name)));
        }
        self.bump(); // ';'
        resolve_entity(&name).ok_or_else(|| self.err(ParseErrorKind::InvalidEntity(name)))
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                q
            }
            Some(b) => return Err(self.err(ParseErrorKind::UnexpectedChar(b as char))),
            None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
        };
        let mut value = String::new();
        loop {
            match self.peek() {
                Some(b) if b == quote => {
                    self.bump();
                    return Ok(value);
                }
                Some(b'&') => {
                    self.bump();
                    value.push(self.parse_entity()?);
                }
                Some(b'<') => return Err(self.err(ParseErrorKind::UnexpectedChar('<'))),
                Some(_) => {
                    // Collect a full UTF-8 codepoint.
                    let start = self.pos;
                    self.bump();
                    while self.pos < self.input.len() && (self.input[self.pos] & 0xC0) == 0x80 {
                        self.bump();
                    }
                    value.push_str(std::str::from_utf8(&self.input[start..self.pos]).map_err(
                        |_| self.err(ParseErrorKind::Malformed("invalid UTF-8".into())),
                    )?);
                }
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_text(&mut self) -> Result<String, ParseError> {
        let mut text = String::new();
        loop {
            match self.peek() {
                Some(b'<') | None => return Ok(text),
                Some(b'&') => {
                    self.bump();
                    text.push(self.parse_entity()?);
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' || b == b'&' {
                            break;
                        }
                        self.bump();
                    }
                    text.push_str(std::str::from_utf8(&self.input[start..self.pos]).map_err(
                        |_| self.err(ParseErrorKind::Malformed("invalid UTF-8".into())),
                    )?);
                }
            }
        }
    }

    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        // Caller consumed "<!DOCTYPE". Skip until the matching '>', allowing
        // internal subset brackets. A '>' (or bracket) inside a quoted
        // SYSTEM/PUBLIC literal is literal text and must not terminate the
        // declaration.
        let mut depth = 0usize;
        let mut quote: Option<u8> = None;
        loop {
            match self.bump() {
                Some(b) if quote == Some(b) => quote = None,
                Some(_) if quote.is_some() => {}
                Some(q @ (b'"' | b'\'')) => quote = Some(q),
                Some(b'[') => depth += 1,
                Some(b']') => depth = depth.saturating_sub(1),
                Some(b'>') if depth == 0 => return Ok(()),
                Some(_) => {}
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_element(
        &mut self,
        doc: &mut Document,
        parent: Option<DocNodeId>,
    ) -> Result<DocNodeId, ParseError> {
        // Caller consumed '<'.
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(self.err(ParseErrorKind::DepthExceeded {
                limit: self.max_depth,
            }));
        }
        let name = self.parse_name()?;
        let elem = doc.add_element(parent, name.clone());
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.bump();
                    self.expect(">")?;
                    self.depth -= 1;
                    return Ok(elem);
                }
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(b) if is_name_start(b) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    doc.add_attribute(elem, attr_name, value)
                        .map_err(|e| ParseError::new(e.kind, self.line, self.column))?;
                }
                Some(b) => return Err(self.err(ParseErrorKind::UnexpectedChar(b as char))),
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
        // Content.
        loop {
            if self.starts_with("</") {
                self.consume("</");
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(ParseErrorKind::MismatchedTag {
                        expected: name,
                        found: close,
                    }));
                }
                self.skip_ws();
                self.expect(">")?;
                self.depth -= 1;
                return Ok(elem);
            } else if self.starts_with("<!--") {
                self.consume("<!--");
                let comment = self.take_until("-->", "comment")?;
                doc.add_comment(Some(elem), comment);
            } else if self.starts_with("<![CDATA[") {
                self.consume("<![CDATA[");
                let cdata = self.take_until("]]>", "CDATA section")?;
                doc.add_cdata(elem, cdata);
            } else if self.starts_with("<?") {
                self.consume("<?");
                let target = self.parse_name()?;
                self.skip_ws();
                let data = self.take_until("?>", "processing instruction")?;
                doc.add_pi(Some(elem), target, data.trim_end().to_string());
            } else if self.starts_with("<") {
                self.bump();
                self.parse_element(doc, Some(elem))?;
            } else if self.peek().is_none() {
                return Err(self.err(ParseErrorKind::UnexpectedEof));
            } else {
                let text = self.parse_text()?;
                let keep = !self.skip_whitespace_text || !text.chars().all(char::is_whitespace);
                if keep && !text.is_empty() {
                    doc.add_text(elem, text);
                }
            }
        }
    }

    /// Parses a complete document: optional XML declaration, prolog
    /// (comments, PIs, DOCTYPE), exactly one root element, optional epilog.
    pub fn parse_document(mut self) -> Result<Document, ParseError> {
        let mut doc = Document::new();
        // Byte-order mark.
        self.consume("\u{FEFF}");
        self.skip_ws();
        let is_decl = self.starts_with("<?xml")
            && matches!(self.peek_at(5), Some(b' ' | b'\t' | b'\r' | b'\n' | b'?'));
        if is_decl {
            self.consume("<?xml");
            self.take_until("?>", "XML declaration")?;
        }
        let mut saw_root = false;
        loop {
            self.skip_ws();
            if self.peek().is_none() {
                break;
            }
            if self.starts_with("<!--") {
                self.consume("<!--");
                let comment = self.take_until("-->", "comment")?;
                doc.add_comment(None, comment);
            } else if self.starts_with("<!DOCTYPE") {
                self.consume("<!DOCTYPE");
                self.skip_doctype()?;
            } else if self.starts_with("<?") {
                self.consume("<?");
                let target = self.parse_name()?;
                self.skip_ws();
                let data = self.take_until("?>", "processing instruction")?;
                doc.add_pi(None, target, data.trim_end().to_string());
            } else if self.starts_with("<") {
                if saw_root {
                    return Err(self.err(ParseErrorKind::InvalidStructure(
                        "multiple root elements".into(),
                    )));
                }
                self.bump();
                self.parse_element(&mut doc, None)?;
                saw_root = true;
            } else {
                return Err(self.err(ParseErrorKind::InvalidStructure(
                    "text content outside the root element".into(),
                )));
            }
        }
        if !saw_root {
            return Err(self.err(ParseErrorKind::InvalidStructure("no root element".into())));
        }
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::DocNode;

    fn parse(s: &str) -> Document {
        Parser::new(s).parse_document().unwrap()
    }

    #[test]
    fn minimal_document() {
        let doc = parse("<a/>");
        assert_eq!(doc.name(doc.root_element().unwrap()), Some("a"));
    }

    #[test]
    fn nested_elements_in_order() {
        let doc = parse("<r><a/><b/><c/></r>");
        let root = doc.root_element().unwrap();
        let names: Vec<_> = doc
            .children(root)
            .iter()
            .map(|&c| doc.name(c).unwrap().to_string())
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn attributes_both_quote_styles() {
        let doc = parse(r#"<m year="1954" title='Rear Window'/>"#);
        let root = doc.root_element().unwrap();
        assert_eq!(doc.attribute(root, "year"), Some("1954"));
        assert_eq!(doc.attribute(root, "title"), Some("Rear Window"));
    }

    #[test]
    fn text_with_entities() {
        let doc = parse("<t>Tom &amp; Jerry &lt;3 &#65;&#x42;</t>");
        let root = doc.root_element().unwrap();
        assert_eq!(doc.text_content(root), "Tom & Jerry <3 AB");
    }

    #[test]
    fn entity_in_attribute() {
        let doc = parse(r#"<t v="a&amp;b"/>"#);
        assert_eq!(doc.attribute(doc.root_element().unwrap(), "v"), Some("a&b"));
    }

    #[test]
    fn cdata_is_literal() {
        let doc = parse("<t><![CDATA[<not-a-tag> & raw]]></t>");
        let root = doc.root_element().unwrap();
        assert_eq!(doc.text_content(root), "<not-a-tag> & raw");
    }

    #[test]
    fn comments_preserved() {
        let doc = parse("<t><!-- hello --></t>");
        let root = doc.root_element().unwrap();
        let child = doc.children(root)[0];
        assert_eq!(doc.node(child), &DocNode::Comment(" hello ".into()));
    }

    #[test]
    fn xml_declaration_and_doctype_skipped() {
        let doc = parse(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE films [<!ELEMENT films (picture*)>]>\n<films/>",
        );
        assert_eq!(doc.name(doc.root_element().unwrap()), Some("films"));
    }

    #[test]
    fn processing_instruction_in_prolog() {
        let doc = parse("<?xml-stylesheet href=\"s.css\"?><r/>");
        let pi = doc.document_children()[0];
        match doc.node(pi) {
            DocNode::ProcessingInstruction { target, data } => {
                assert_eq!(target, "xml-stylesheet");
                assert_eq!(data, "href=\"s.css\"");
            }
            other => panic!("expected PI, got {other:?}"),
        }
    }

    #[test]
    fn whitespace_only_text_skipped() {
        let doc = parse("<r>\n  <a/>\n  <b/>\n</r>");
        let root = doc.root_element().unwrap();
        assert_eq!(doc.children(root).len(), 2);
    }

    #[test]
    fn whitespace_kept_when_configured() {
        let mut p = Parser::new("<r> <a/> </r>");
        p.skip_whitespace_text = false;
        let doc = p.parse_document().unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.children(root).len(), 3);
    }

    #[test]
    fn mismatched_tag_error() {
        let err = Parser::new("<a></b>").parse_document().unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn unexpected_eof_error() {
        let err = Parser::new("<a><b>").parse_document().unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedEof);
    }

    #[test]
    fn duplicate_attribute_error() {
        let err = Parser::new(r#"<a x="1" x="2"/>"#)
            .parse_document()
            .unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn multiple_roots_rejected() {
        let err = Parser::new("<a/><b/>").parse_document().unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::InvalidStructure(_)));
    }

    #[test]
    fn empty_input_rejected() {
        let err = Parser::new("   ").parse_document().unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::InvalidStructure(_)));
    }

    #[test]
    fn unknown_entity_rejected() {
        let err = Parser::new("<a>&nope;</a>").parse_document().unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::InvalidEntity(_)));
    }

    #[test]
    fn forbidden_character_references_rejected() {
        // NUL, backspace, and unit separator are outside the XML 1.0
        // `Char` production; a reference to them must not resolve.
        for bad in ["&#0;", "&#8;", "&#x1F;", "&#x0;", "&#xFFFE;", "&#xFFFF;"] {
            let err = Parser::new(&format!("<t>{bad}</t>"))
                .parse_document()
                .unwrap_err();
            assert!(
                matches!(err.kind, ParseErrorKind::InvalidEntity(_)),
                "{bad}: expected InvalidEntity, got {:?}",
                err.kind
            );
        }
    }

    #[test]
    fn forbidden_character_reference_rejected_in_attribute() {
        let err = Parser::new(r#"<t v="&#0;"/>"#)
            .parse_document()
            .unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::InvalidEntity(_)));
    }

    #[test]
    fn boundary_character_references_accepted() {
        // Tab, LF, and CR are the only sub-0x20 characters XML permits.
        let doc = parse("<t>a&#x9;b&#xA;c&#xD;d&#x20;e</t>");
        let root = doc.root_element().unwrap();
        assert_eq!(doc.text_content(root), "a\tb\nc\rd e");
    }

    #[test]
    fn doctype_system_literal_containing_gt() {
        let doc = parse("<!DOCTYPE x SYSTEM \"a>b\"><x/>");
        assert_eq!(doc.name(doc.root_element().unwrap()), Some("x"));
    }

    #[test]
    fn doctype_public_literal_containing_brackets() {
        let doc = parse("<!DOCTYPE x PUBLIC '-//a>b//[c]//EN' \"u>r[l]\"><x/>");
        assert_eq!(doc.name(doc.root_element().unwrap()), Some("x"));
    }

    #[test]
    fn doctype_internal_subset_with_quoted_literals() {
        let doc = parse("<!DOCTYPE x [<!ENTITY e \"]>\">]><x/>");
        assert_eq!(doc.name(doc.root_element().unwrap()), Some("x"));
    }

    #[test]
    fn unterminated_doctype_literal_is_eof() {
        let err = Parser::new("<!DOCTYPE x SYSTEM \"a>b><x/>")
            .parse_document()
            .unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedEof);
    }

    #[test]
    fn error_position_tracks_lines() {
        let err = Parser::new("<a>\n\n</b>").parse_document().unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn unicode_content() {
        let doc = parse("<t attr=\"héllo\">çafé ☕</t>");
        let root = doc.root_element().unwrap();
        assert_eq!(doc.attribute(root, "attr"), Some("héllo"));
        assert_eq!(doc.text_content(root), "çafé ☕");
    }

    #[test]
    fn paper_figure1_doc1_parses() {
        let xml = r#"<?xml version="1.0"?>
            <films>
              <picture title="Rear Window">
                <director>Hitchcock</director>
                <year>1954</year>
                <genre>mystery</genre>
                <cast>
                  <star>Stewart</star>
                  <star>Kelly</star>
                </cast>
                <plot>A wheelchair bound photographer spies on his neighbors</plot>
              </picture>
            </films>"#;
        let doc = parse(xml);
        let films = doc.root_element().unwrap();
        let picture = doc.find_child(films, "picture").unwrap();
        assert_eq!(doc.attribute(picture, "title"), Some("Rear Window"));
        let cast = doc.find_child(picture, "cast").unwrap();
        assert_eq!(doc.element_children(cast).count(), 2);
    }

    #[test]
    fn nesting_beyond_max_depth_is_an_error() {
        let depth = 300;
        let mut s = String::new();
        for _ in 0..depth {
            s.push_str("<n>");
        }
        for _ in 0..depth {
            s.push_str("</n>");
        }
        let err = Parser::new(&s).parse_document().unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::DepthExceeded { limit: 256 });
        // A raised limit accepts the same input.
        let mut p = Parser::new(&s);
        p.max_depth = 350;
        assert!(p.parse_document().is_ok());
    }

    #[test]
    fn deeply_nested_does_not_overflow_reasonably() {
        let depth = 200;
        let mut s = String::new();
        for i in 0..depth {
            s.push_str(&format!("<n{i}>"));
        }
        for i in (0..depth).rev() {
            s.push_str(&format!("</n{i}>"));
        }
        let doc = parse(&s);
        assert_eq!(doc.element_count(), depth);
    }
}
