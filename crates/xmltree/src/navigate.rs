//! Navigation helpers over an [`XmlTree`]: ancestors, root paths, subtrees,
//! siblings. These are the structural contexts used by the baseline
//! disambiguators (root-path context of RPD, subtree context, parent-node
//! context — Section 2.2.1 of the paper).

use crate::tree::{NodeId, XmlTree};

/// Iterates from a node's parent up to the root.
pub fn ancestors(tree: &XmlTree, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
    std::iter::successors(tree.parent(node), move |&n| tree.parent(n))
}

/// The root path of a node: the sequence of nodes from the root down to and
/// including the node itself (the RPD context of \[50\]).
pub fn root_path(tree: &XmlTree, node: NodeId) -> Vec<NodeId> {
    let mut path: Vec<NodeId> = ancestors(tree, node).collect();
    path.reverse();
    path.push(node);
    path
}

/// Iterates over the subtree rooted at `node` in preorder, including `node`.
pub fn subtree(tree: &XmlTree, node: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack = vec![node];
    while let Some(n) = stack.pop() {
        out.push(n);
        for &c in tree.children(n).iter().rev() {
            stack.push(c);
        }
    }
    out
}

/// The descendants of `node` (subtree minus the node itself).
pub fn descendants(tree: &XmlTree, node: NodeId) -> Vec<NodeId> {
    subtree(tree, node).into_iter().skip(1).collect()
}

/// The siblings of `node` (children of its parent, excluding the node).
pub fn siblings(tree: &XmlTree, node: NodeId) -> Vec<NodeId> {
    match tree.parent(node) {
        Some(p) => tree
            .children(p)
            .iter()
            .copied()
            .filter(|&c| c != node)
            .collect(),
        None => Vec::new(),
    }
}

/// `true` if `ancestor` lies on the root path of `node` (strictly above it).
pub fn is_ancestor(tree: &XmlTree, ancestor: NodeId, node: NodeId) -> bool {
    ancestors(tree, node).any(|a| a == ancestor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::tree::TreeBuilder;

    fn tree() -> XmlTree {
        let doc =
            parse("<films><picture><cast><star/><star/></cast><plot/></picture></films>").unwrap();
        TreeBuilder::new().build(&doc).unwrap().tree
    }

    fn find(t: &XmlTree, label: &str) -> NodeId {
        t.preorder().find(|&id| t.label(id) == label).unwrap()
    }

    #[test]
    fn root_path_from_leaf() {
        let t = tree();
        let star = find(&t, "star");
        let labels: Vec<_> = root_path(&t, star)
            .into_iter()
            .map(|n| t.label(n).to_string())
            .collect();
        assert_eq!(labels, ["films", "picture", "cast", "star"]);
    }

    #[test]
    fn root_path_of_root_is_itself() {
        let t = tree();
        assert_eq!(root_path(&t, t.root()), vec![t.root()]);
    }

    #[test]
    fn ancestors_excludes_self() {
        let t = tree();
        let cast = find(&t, "cast");
        let labels: Vec<_> = ancestors(&t, cast)
            .map(|n| t.label(n).to_string())
            .collect();
        assert_eq!(labels, ["picture", "films"]);
    }

    #[test]
    fn subtree_preorder() {
        let t = tree();
        let cast = find(&t, "cast");
        let labels: Vec<_> = subtree(&t, cast)
            .into_iter()
            .map(|n| t.label(n).to_string())
            .collect();
        assert_eq!(labels, ["cast", "star", "star"]);
    }

    #[test]
    fn descendants_excludes_self() {
        let t = tree();
        let picture = find(&t, "picture");
        assert_eq!(descendants(&t, picture).len(), 4); // cast, star, star, plot
    }

    #[test]
    fn siblings_of_plot() {
        let t = tree();
        let plot = find(&t, "plot");
        let labels: Vec<_> = siblings(&t, plot)
            .into_iter()
            .map(|n| t.label(n).to_string())
            .collect();
        assert_eq!(labels, ["cast"]);
        assert!(siblings(&t, t.root()).is_empty());
    }

    #[test]
    fn ancestor_predicate() {
        let t = tree();
        let films = find(&t, "films");
        let star = find(&t, "star");
        assert!(is_ancestor(&t, films, star));
        assert!(!is_ancestor(&t, star, films));
        assert!(!is_ancestor(&t, star, star));
    }
}
