//! Tree node distance and the sphere/ring traversals of Definitions 4–5.
//!
//! The paper evaluates the distance between two nodes of an XML tree as the
//! number of edges on the (unique) path connecting them. Rings and spheres
//! are then defined as the node sets at exactly / at most a given distance
//! from a center node. The [`NodesWithin`] breadth-first traversal computes
//! a whole sphere (with per-node distances) in `O(|S_d(x)|)`.

use crate::tree::{NodeId, XmlTree};

/// The number of edges between two nodes of the tree, computed by walking
/// both nodes up to their lowest common ancestor.
///
/// `dist(x, x) == 0`; for Figure 6 of the paper, `dist("cast", "Kelly") == 2`.
pub fn node_distance(tree: &XmlTree, a: NodeId, b: NodeId) -> u32 {
    if a == b {
        return 0;
    }
    let (mut a, mut b) = (a, b);
    let mut dist = 0;
    // Lift the deeper node until the depths match.
    while tree.depth(a) > tree.depth(b) {
        a = tree.parent(a).expect("deeper node has a parent");
        dist += 1;
    }
    while tree.depth(b) > tree.depth(a) {
        b = tree.parent(b).expect("deeper node has a parent");
        dist += 1;
    }
    // Lift both until they meet.
    while a != b {
        a = tree.parent(a).expect("non-root");
        b = tree.parent(b).expect("non-root");
        dist += 2;
    }
    dist
}

/// The lowest common ancestor of two nodes.
pub fn lowest_common_ancestor(tree: &XmlTree, a: NodeId, b: NodeId) -> NodeId {
    let (mut a, mut b) = (a, b);
    while tree.depth(a) > tree.depth(b) {
        a = tree.parent(a).unwrap();
    }
    while tree.depth(b) > tree.depth(a) {
        b = tree.parent(b).unwrap();
    }
    while a != b {
        a = tree.parent(a).unwrap();
        b = tree.parent(b).unwrap();
    }
    a
}

/// A breadth-first traversal yielding `(node, distance)` pairs for every
/// node within `radius` edges of `center`, in non-decreasing distance order.
/// The center itself (distance 0) is **not** yielded, matching the paper's
/// sphere neighborhoods which exclude the target node's own occurrence at
/// distance 0 from the ring sets (`R_d(x)` is defined for `d ≥ 1`).
pub struct NodesWithin<'a> {
    tree: &'a XmlTree,
    queue: std::collections::VecDeque<(NodeId, u32)>,
    visited: Vec<bool>,
    radius: u32,
}

impl<'a> NodesWithin<'a> {
    /// Starts a sphere traversal around `center` with the given radius.
    pub fn new(tree: &'a XmlTree, center: NodeId, radius: u32) -> Self {
        let mut visited = vec![false; tree.len()];
        visited[center.index()] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((center, 0));
        Self {
            tree,
            queue,
            visited,
            radius,
        }
    }
}

impl Iterator for NodesWithin<'_> {
    type Item = (NodeId, u32);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (node, dist) = self.queue.pop_front()?;
            if dist < self.radius {
                // Neighbors: parent plus children (the tree is undirected
                // for distance purposes).
                let mut push = |n: NodeId| {
                    if !self.visited[n.index()] {
                        self.visited[n.index()] = true;
                        self.queue.push_back((n, dist + 1));
                    }
                };
                if let Some(p) = self.tree.parent(node) {
                    push(p);
                }
                for &c in self.tree.children(node) {
                    push(c);
                }
                for l in self.tree.link_neighbors(node) {
                    push(l);
                }
            }
            if dist > 0 {
                return Some((node, dist));
            }
            // dist == 0 is the center: expand it but don't yield it.
        }
    }
}

/// Collects the ring `R_d(x)`: nodes at exactly distance `d` from `x`
/// (Definition 4).
pub fn ring(tree: &XmlTree, center: NodeId, d: u32) -> Vec<NodeId> {
    NodesWithin::new(tree, center, d)
        .filter(|&(_, dist)| dist == d)
        .map(|(n, _)| n)
        .collect()
}

/// Collects the sphere `S_d(x)`: nodes at distance `1..=d` from `x`
/// (Definition 5), with their distances.
pub fn sphere(tree: &XmlTree, center: NodeId, d: u32) -> Vec<(NodeId, u32)> {
    NodesWithin::new(tree, center, d).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::tree::TreeBuilder;

    /// Figure 6's tree: films / picture / { cast { star Stewart, star Kelly }, plot }.
    fn figure6_tree() -> XmlTree {
        let doc = parse(
            "<Films><Picture><Cast><Star>Stewart</Star><Star>Kelly</Star></Cast><Plot/></Picture></Films>",
        )
        .unwrap();
        TreeBuilder::new().build(&doc).unwrap().tree
    }

    fn find(tree: &XmlTree, label: &str) -> NodeId {
        tree.preorder().find(|&id| tree.label(id) == label).unwrap()
    }

    fn find_all(tree: &XmlTree, label: &str) -> Vec<NodeId> {
        tree.preorder()
            .filter(|&id| tree.label(id) == label)
            .collect()
    }

    #[test]
    fn distance_examples_from_paper() {
        let t = figure6_tree();
        let cast = find(&t, "Cast");
        let kelly = find(&t, "Kelly");
        // Paper Section 3.4.1: Dist(T[2], T[6]) = 2 for "cast" and "Kelly".
        assert_eq!(node_distance(&t, cast, kelly), 2);
        assert_eq!(node_distance(&t, cast, cast), 0);
    }

    #[test]
    fn distance_is_symmetric() {
        let t = figure6_tree();
        for a in t.preorder() {
            for b in t.preorder() {
                assert_eq!(node_distance(&t, a, b), node_distance(&t, b, a));
            }
        }
    }

    #[test]
    fn distance_triangle_inequality() {
        let t = figure6_tree();
        let nodes: Vec<_> = t.preorder().collect();
        for &a in &nodes {
            for &b in &nodes {
                for &c in &nodes {
                    let ab = node_distance(&t, a, b);
                    let bc = node_distance(&t, b, c);
                    let ac = node_distance(&t, a, c);
                    assert!(ac <= ab + bc);
                }
            }
        }
    }

    #[test]
    fn ring1_of_cast_matches_paper() {
        // R_1("cast") = { picture, star, star }.
        let t = figure6_tree();
        let cast = find(&t, "Cast");
        let mut labels: Vec<_> = ring(&t, cast, 1)
            .into_iter()
            .map(|n| t.label(n).to_string())
            .collect();
        labels.sort();
        assert_eq!(labels, ["Picture", "Star", "Star"]);
    }

    #[test]
    fn sphere2_of_cast_matches_paper() {
        // S_2("cast") = R_1 ∪ R_2 = {picture, star, star} ∪ {films, Stewart, Kelly, plot}.
        let t = figure6_tree();
        let cast = find(&t, "Cast");
        let s = sphere(&t, cast, 2);
        assert_eq!(s.len(), 7);
        let ring2: Vec<_> = s
            .iter()
            .filter(|&&(_, d)| d == 2)
            .map(|&(n, _)| t.label(n).to_string())
            .collect();
        let mut ring2 = ring2;
        ring2.sort();
        assert_eq!(ring2, ["Films", "Kelly", "Plot", "Stewart"]);
    }

    #[test]
    fn sphere_excludes_center() {
        let t = figure6_tree();
        let cast = find(&t, "Cast");
        assert!(sphere(&t, cast, 3).iter().all(|&(n, _)| n != cast));
    }

    #[test]
    fn sphere_radius_zero_is_empty() {
        let t = figure6_tree();
        assert!(sphere(&t, find(&t, "Cast"), 0).is_empty());
    }

    #[test]
    fn sphere_large_radius_covers_tree() {
        let t = figure6_tree();
        let cast = find(&t, "Cast");
        let s = sphere(&t, cast, 100);
        assert_eq!(s.len(), t.len() - 1);
    }

    #[test]
    fn sphere_distances_agree_with_node_distance() {
        let t = figure6_tree();
        for center in t.preorder() {
            for (n, d) in sphere(&t, center, 4) {
                assert_eq!(
                    node_distance(&t, center, n),
                    d,
                    "center/node distance mismatch"
                );
            }
        }
    }

    #[test]
    fn lca_basics() {
        let t = figure6_tree();
        let stars = find_all(&t, "Star");
        let cast = find(&t, "Cast");
        assert_eq!(lowest_common_ancestor(&t, stars[0], stars[1]), cast);
        let plot = find(&t, "Plot");
        let picture = find(&t, "Picture");
        assert_eq!(lowest_common_ancestor(&t, stars[0], plot), picture);
        assert_eq!(lowest_common_ancestor(&t, cast, cast), cast);
        // Ancestor/descendant pair.
        assert_eq!(lowest_common_ancestor(&t, picture, stars[0]), picture);
    }

    #[test]
    fn rings_partition_sphere() {
        let t = figure6_tree();
        let cast = find(&t, "Cast");
        let s = sphere(&t, cast, 3);
        let by_rings: usize = (1..=3).map(|d| ring(&t, cast, d).len()).sum();
        assert_eq!(s.len(), by_rings);
    }
}

/// Alternative node-distance functions — the paper's future-work direction
/// ("we are currently investigating different XML tree node distance
/// functions (including edge weights, density, direction)", Section 5,
/// citing Ganesan et al. \[16\] and Jiang–Conrath \[21\]).
///
/// A policy assigns every tree edge a positive cost; the *weighted sphere*
/// is then the set of nodes whose cheapest path from the center fits a
/// cost budget (Dijkstra traversal). [`DistancePolicy::EdgeCount`]
/// reproduces the paper's edge-count distance exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DistancePolicy {
    /// Every edge costs 1 (the paper's Definition of `Dist`).
    #[default]
    EdgeCount,
    /// Direction-aware costs: edges toward the root cost `up`, edges away
    /// from the root cost `down`. `up < down` makes ancestors "closer"
    /// than descendants (a root-path-leaning context), and vice versa.
    Directional {
        /// Cost of a child→parent step.
        up: f64,
        /// Cost of a parent→child step.
        down: f64,
    },
    /// Density-scaled costs: crossing into a node whose parent has many
    /// *distinct* children is cheaper — information-rich hubs pull their
    /// neighborhoods together (Ganesan-style hierarchy weighting). The
    /// cost of an edge under parent `p` is `1 / (1 + alpha · density(p))`.
    DensityScaled {
        /// Strength of the density discount (0 = plain edge count).
        alpha: f64,
    },
}

impl DistancePolicy {
    /// The cost of traversing the edge between `parent` and `child`, in
    /// the given direction (`upward` = child→parent).
    pub fn edge_cost(self, tree: &XmlTree, parent: NodeId, upward: bool) -> f64 {
        match self {
            Self::EdgeCount => 1.0,
            Self::Directional { up, down } => {
                if upward {
                    up.max(f64::EPSILON)
                } else {
                    down.max(f64::EPSILON)
                }
            }
            Self::DensityScaled { alpha } => {
                1.0 / (1.0 + alpha.max(0.0) * tree.density(parent) as f64)
            }
        }
    }
}

/// Dijkstra traversal: every node whose cheapest path cost from `center`
/// is `(0, budget]`, with that cost. The center itself is not yielded
/// (mirroring [`sphere`]). With [`DistancePolicy::EdgeCount`] and an
/// integer budget `d`, the result equals [`sphere`]`(tree, center, d)`.
pub fn weighted_sphere(
    tree: &XmlTree,
    center: NodeId,
    budget: f64,
    policy: DistancePolicy,
) -> Vec<(NodeId, f64)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// f64 ordered for the heap (costs are finite and non-negative).
    #[derive(PartialEq)]
    struct Cost(f64);
    impl Eq for Cost {}
    impl PartialOrd for Cost {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Cost {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }

    let mut best: Vec<f64> = vec![f64::INFINITY; tree.len()];
    best[center.index()] = 0.0;
    let mut heap: BinaryHeap<Reverse<(Cost, NodeId)>> = BinaryHeap::new();
    heap.push(Reverse((Cost(0.0), center)));
    while let Some(Reverse((Cost(cost), node))) = heap.pop() {
        if cost > best[node.index()] {
            continue;
        }
        let mut relax =
            |next: NodeId, edge: f64, heap: &mut BinaryHeap<Reverse<(Cost, NodeId)>>| {
                let candidate = cost + edge;
                if candidate <= budget && candidate < best[next.index()] {
                    best[next.index()] = candidate;
                    heap.push(Reverse((Cost(candidate), next)));
                }
            };
        if let Some(p) = tree.parent(node) {
            relax(p, policy.edge_cost(tree, p, true), &mut heap);
        }
        for &c in tree.children(node) {
            relax(c, policy.edge_cost(tree, node, false), &mut heap);
        }
        for l in tree.link_neighbors(node) {
            // Hyperlink edges cost one unit regardless of policy direction.
            relax(l, 1.0, &mut heap);
        }
    }
    let mut out: Vec<(NodeId, f64)> = tree
        .preorder()
        .filter(|&n| n != center && best[n.index()].is_finite())
        .map(|n| (n, best[n.index()]))
        .collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod weighted_tests {
    use super::*;
    use crate::parse;
    use crate::tree::TreeBuilder;

    fn tree() -> XmlTree {
        let doc = parse(
            "<films><picture><cast><star>Stewart</star><star>Kelly</star></cast><plot/></picture></films>",
        )
        .unwrap();
        TreeBuilder::new().build(&doc).unwrap().tree
    }

    fn find(t: &XmlTree, label: &str) -> NodeId {
        t.preorder().find(|&id| t.label(id) == label).unwrap()
    }

    #[test]
    fn edge_count_policy_matches_integer_sphere() {
        let t = tree();
        for center in t.preorder() {
            for d in 1..=3u32 {
                let classic: std::collections::HashMap<_, _> =
                    sphere(&t, center, d).into_iter().collect();
                let weighted = weighted_sphere(&t, center, d as f64, DistancePolicy::EdgeCount);
                assert_eq!(classic.len(), weighted.len());
                for (n, cost) in weighted {
                    assert_eq!(classic[&n] as f64, cost);
                }
            }
        }
    }

    #[test]
    fn directional_up_cheap_reaches_ancestors_first() {
        let t = tree();
        let star = find(&t, "star");
        // Upward steps cost 0.2, downward 1.0: with budget 1.0 the whole
        // root path is in reach but not the sibling star's token.
        let policy = DistancePolicy::Directional { up: 0.2, down: 1.0 };
        let reached: Vec<String> = weighted_sphere(&t, star, 0.61, policy)
            .into_iter()
            .map(|(n, _)| t.label(n).to_string())
            .collect();
        assert!(reached.contains(&"cast".to_string()));
        assert!(reached.contains(&"picture".to_string()));
        assert!(reached.contains(&"films".to_string()));
        assert!(!reached.contains(&"Stewart".to_string()));
    }

    #[test]
    fn directional_down_cheap_prefers_subtree() {
        let t = tree();
        let picture = find(&t, "picture");
        let policy = DistancePolicy::Directional {
            up: 10.0,
            down: 0.5,
        };
        let reached: Vec<String> = weighted_sphere(&t, picture, 1.5, policy)
            .into_iter()
            .map(|(n, _)| t.label(n).to_string())
            .collect();
        // All descendants within 3 downward steps, no ancestor.
        assert!(reached.contains(&"Kelly".to_string()));
        assert!(!reached.contains(&"films".to_string()));
    }

    #[test]
    fn density_scaled_pulls_dense_hubs_closer() {
        let t = tree();
        let star = find(&t, "star");
        // picture has 2 distinct children (cast, plot): crossing under it
        // is discounted; tokens under the single-label star are not.
        let policy = DistancePolicy::DensityScaled { alpha: 1.0 };
        let costs: std::collections::HashMap<String, f64> = weighted_sphere(&t, star, 10.0, policy)
            .into_iter()
            .map(|(n, c)| (t.label(n).to_string(), c))
            .collect();
        // cast (parent of star; picture's subtree has distinct labels) is
        // cheaper to reach than a full unit edge.
        assert!(costs["cast"] < 1.0);
        assert!(costs["plot"] < costs["Stewart"] + 1.0);
    }

    #[test]
    fn zero_alpha_density_equals_edge_count() {
        let t = tree();
        let cast = find(&t, "cast");
        let a = weighted_sphere(&t, cast, 2.0, DistancePolicy::DensityScaled { alpha: 0.0 });
        let b = weighted_sphere(&t, cast, 2.0, DistancePolicy::EdgeCount);
        assert_eq!(a, b);
    }

    #[test]
    fn costs_are_monotone_along_paths() {
        let t = tree();
        let policy = DistancePolicy::Directional { up: 0.7, down: 1.3 };
        let reached = weighted_sphere(&t, t.root(), 5.0, policy);
        for (n, cost) in &reached {
            if let Some(p) = t.parent(*n) {
                if p != t.root() {
                    let parent_cost = reached
                        .iter()
                        .find(|(m, _)| *m == p)
                        .map(|(_, c)| *c)
                        .unwrap();
                    assert!(parent_cost < *cost + 1e-9);
                }
            }
        }
    }
}
