//! Arena-based XML document model.
//!
//! A [`Document`] owns all its nodes in a single arena and hands out stable
//! [`DocNodeId`] handles. The model mirrors the subset of the W3C DOM that
//! the paper's tree abstraction consumes: elements with ordered attributes,
//! text, CDATA, comments, and processing instructions.

use crate::error::{ParseError, ParseErrorKind};

/// A stable handle to a node inside a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocNodeId(pub(crate) u32);

impl DocNodeId {
    /// Returns the raw arena index of this handle.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An attribute of an element: a `name="value"` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as written in the document.
    pub name: String,
    /// Attribute value with entities resolved.
    pub value: String,
}

/// One node of a [`Document`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocNode {
    /// An element with a tag name and ordered attributes.
    Element {
        /// Tag name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// A run of character data (entities already resolved).
    Text(String),
    /// A CDATA section's literal content.
    CData(String),
    /// A comment's content (without the `<!--`/`-->` delimiters).
    Comment(String),
    /// A processing instruction.
    ProcessingInstruction {
        /// The PI target (e.g. `xml-stylesheet`).
        target: String,
        /// The PI data, possibly empty.
        data: String,
    },
}

impl DocNode {
    /// Returns `true` for element nodes.
    pub fn is_element(&self) -> bool {
        matches!(self, DocNode::Element { .. })
    }

    /// Returns `true` for text or CDATA nodes.
    pub fn is_textual(&self) -> bool {
        matches!(self, DocNode::Text(_) | DocNode::CData(_))
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct NodeLinks {
    parent: Option<DocNodeId>,
    children: Vec<DocNodeId>,
}

/// An XML document: an arena of [`DocNode`]s plus parent/child links.
///
/// The document-level children (`roots`) may contain comments and processing
/// instructions besides the single root element.
///
/// Equality compares arenas structurally (same nodes in the same arena
/// order with the same links) — two documents built by the same sequence
/// of `add_*` calls are equal, which is what the buffered-vs-streaming
/// parser equivalence proofs rely on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Document {
    nodes: Vec<DocNode>,
    links: Vec<NodeLinks>,
    roots: Vec<DocNodeId>,
}

impl Document {
    /// Creates an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the document contains no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, node: DocNode, parent: Option<DocNodeId>) -> DocNodeId {
        let id = DocNodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.links.push(NodeLinks {
            parent,
            children: Vec::new(),
        });
        match parent {
            Some(p) => self.links[p.index()].children.push(id),
            None => self.roots.push(id),
        }
        id
    }

    /// Appends an element node. With `parent == None` the node becomes a
    /// document-level child.
    pub fn add_element(&mut self, parent: Option<DocNodeId>, name: impl Into<String>) -> DocNodeId {
        self.push(
            DocNode::Element {
                name: name.into(),
                attributes: Vec::new(),
            },
            parent,
        )
    }

    /// Appends a text node under `parent`.
    pub fn add_text(&mut self, parent: DocNodeId, text: impl Into<String>) -> DocNodeId {
        self.push(DocNode::Text(text.into()), Some(parent))
    }

    /// Appends a CDATA node under `parent`.
    pub fn add_cdata(&mut self, parent: DocNodeId, text: impl Into<String>) -> DocNodeId {
        self.push(DocNode::CData(text.into()), Some(parent))
    }

    /// Appends a comment node.
    pub fn add_comment(&mut self, parent: Option<DocNodeId>, text: impl Into<String>) -> DocNodeId {
        self.push(DocNode::Comment(text.into()), parent)
    }

    /// Appends a processing-instruction node.
    pub fn add_pi(
        &mut self,
        parent: Option<DocNodeId>,
        target: impl Into<String>,
        data: impl Into<String>,
    ) -> DocNodeId {
        self.push(
            DocNode::ProcessingInstruction {
                target: target.into(),
                data: data.into(),
            },
            parent,
        )
    }

    /// Adds an attribute to an element node.
    ///
    /// Returns an error if the node is not an element or the attribute name
    /// is already present.
    pub fn add_attribute(
        &mut self,
        element: DocNodeId,
        name: impl Into<String>,
        value: impl Into<String>,
    ) -> Result<(), ParseError> {
        let name = name.into();
        match &mut self.nodes[element.index()] {
            DocNode::Element { attributes, .. } => {
                if attributes.iter().any(|a| a.name == name) {
                    return Err(ParseError::new(
                        ParseErrorKind::DuplicateAttribute(name),
                        0,
                        0,
                    ));
                }
                attributes.push(Attribute {
                    name,
                    value: value.into(),
                });
                Ok(())
            }
            _ => Err(ParseError::new(
                ParseErrorKind::InvalidStructure("attribute on non-element".into()),
                0,
                0,
            )),
        }
    }

    /// Returns the node payload.
    pub fn node(&self, id: DocNodeId) -> &DocNode {
        &self.nodes[id.index()]
    }

    /// Returns the parent handle, or `None` for document-level nodes.
    pub fn parent(&self, id: DocNodeId) -> Option<DocNodeId> {
        self.links[id.index()].parent
    }

    /// Returns the ordered children of a node.
    pub fn children(&self, id: DocNodeId) -> &[DocNodeId] {
        &self.links[id.index()].children
    }

    /// Returns the document-level children (prolog comments/PIs and the
    /// root element) in document order.
    pub fn document_children(&self) -> &[DocNodeId] {
        &self.roots
    }

    /// Returns the root element of the document, if any.
    pub fn root_element(&self) -> Option<DocNodeId> {
        self.roots
            .iter()
            .copied()
            .find(|id| self.node(*id).is_element())
    }

    /// Returns the tag name of an element node, or `None` for other kinds.
    pub fn name(&self, id: DocNodeId) -> Option<&str> {
        match self.node(id) {
            DocNode::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Returns the attributes of an element node (empty for other kinds).
    pub fn attributes(&self, id: DocNodeId) -> &[Attribute] {
        match self.node(id) {
            DocNode::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// Looks up an attribute value by name on an element.
    pub fn attribute(&self, id: DocNodeId, name: &str) -> Option<&str> {
        self.attributes(id)
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Returns the text content of a text/CDATA node, or `None`.
    pub fn text(&self, id: DocNodeId) -> Option<&str> {
        match self.node(id) {
            DocNode::Text(t) | DocNode::CData(t) => Some(t),
            _ => None,
        }
    }

    /// Concatenates all descendant text of an element, in document order.
    pub fn text_content(&self, id: DocNodeId) -> String {
        let mut out = String::new();
        let mut stack = vec![id];
        // Depth-first, preserving document order by pushing children reversed.
        while let Some(cur) = stack.pop() {
            if let Some(t) = self.text(cur) {
                out.push_str(t);
            }
            for &child in self.children(cur).iter().rev() {
                stack.push(child);
            }
        }
        out
    }

    /// Returns the element children of a node, skipping text/comments.
    pub fn element_children(&self, id: DocNodeId) -> impl Iterator<Item = DocNodeId> + '_ {
        self.children(id)
            .iter()
            .copied()
            .filter(|c| self.node(*c).is_element())
    }

    /// Finds the first element child with the given tag name.
    pub fn find_child(&self, id: DocNodeId, name: &str) -> Option<DocNodeId> {
        self.element_children(id)
            .find(|c| self.name(*c) == Some(name))
    }

    /// Iterates over every node id in the arena (arena order, which for
    /// parsed and programmatically built documents is document order).
    pub fn all_nodes(&self) -> impl Iterator<Item = DocNodeId> {
        (0..self.nodes.len() as u32).map(DocNodeId)
    }

    /// Counts element nodes in the document.
    pub fn element_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_element()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, DocNodeId, DocNodeId) {
        let mut doc = Document::new();
        let films = doc.add_element(None, "films");
        let picture = doc.add_element(Some(films), "picture");
        doc.add_attribute(picture, "title", "Rear Window").unwrap();
        let director = doc.add_element(Some(picture), "director");
        doc.add_text(director, "Hitchcock");
        (doc, films, picture)
    }

    #[test]
    fn builds_tree_links() {
        let (doc, films, picture) = sample();
        assert_eq!(doc.parent(picture), Some(films));
        assert_eq!(doc.children(films), &[picture]);
        assert_eq!(doc.root_element(), Some(films));
    }

    #[test]
    fn attribute_lookup() {
        let (doc, _, picture) = sample();
        assert_eq!(doc.attribute(picture, "title"), Some("Rear Window"));
        assert_eq!(doc.attribute(picture, "missing"), None);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let (mut doc, _, picture) = sample();
        let err = doc.add_attribute(picture, "title", "again").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn attribute_on_text_rejected() {
        let mut doc = Document::new();
        let e = doc.add_element(None, "a");
        let t = doc.add_text(e, "hello");
        assert!(doc.add_attribute(t, "x", "y").is_err());
    }

    #[test]
    fn text_content_concatenates_in_order() {
        let mut doc = Document::new();
        let root = doc.add_element(None, "r");
        let a = doc.add_element(Some(root), "a");
        doc.add_text(a, "one ");
        doc.add_text(root, "two ");
        let b = doc.add_element(Some(root), "b");
        doc.add_cdata(b, "three");
        assert_eq!(doc.text_content(root), "one two three");
    }

    #[test]
    fn find_child_by_name() {
        let (doc, films, picture) = sample();
        assert_eq!(doc.find_child(films, "picture"), Some(picture));
        assert_eq!(doc.find_child(films, "movie"), None);
    }

    #[test]
    fn root_element_skips_comments() {
        let mut doc = Document::new();
        doc.add_comment(None, "prolog");
        let root = doc.add_element(None, "r");
        assert_eq!(doc.root_element(), Some(root));
        assert_eq!(doc.document_children().len(), 2);
    }

    #[test]
    fn element_count_ignores_text() {
        let (doc, ..) = sample();
        assert_eq!(doc.element_count(), 3);
        assert_eq!(doc.len(), 4);
    }
}
