//! Serialization of [`Document`]s back to XML text.

use std::fmt::Write;

use crate::document::{DocNode, DocNodeId, Document};

/// Escapes character data for use in text content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes character data for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Serializes a document to XML, with a leading XML declaration and
/// two-space indentation of element children.
pub fn to_string_pretty(doc: &Document) -> String {
    let mut out = String::from("<?xml version=\"1.0\"?>\n");
    for &child in doc.document_children() {
        write_node(doc, child, &mut out, 0, true);
    }
    out
}

/// Serializes a document to compact XML (no added whitespace, no
/// declaration). Round-trips through [`crate::parse`].
pub fn to_string_compact(doc: &Document) -> String {
    let mut out = String::new();
    for &child in doc.document_children() {
        write_node(doc, child, &mut out, 0, false);
    }
    out
}

fn write_node(doc: &Document, id: DocNodeId, out: &mut String, indent: usize, pretty: bool) {
    let pad = if pretty {
        "  ".repeat(indent)
    } else {
        String::new()
    };
    let nl = if pretty { "\n" } else { "" };
    match doc.node(id) {
        DocNode::Element { name, attributes } => {
            write!(out, "{pad}<{name}").unwrap();
            for attr in attributes {
                write!(out, " {}=\"{}\"", attr.name, escape_attr(&attr.value)).unwrap();
            }
            let children = doc.children(id);
            if children.is_empty() {
                write!(out, "/>{nl}").unwrap();
            } else {
                // A single textual child is kept inline even in pretty mode.
                let inline = pretty && children.len() == 1 && doc.node(children[0]).is_textual();
                if inline {
                    write!(out, ">").unwrap();
                    write_node(doc, children[0], out, 0, false);
                    write!(out, "</{name}>{nl}").unwrap();
                } else {
                    write!(out, ">{nl}").unwrap();
                    for &c in children {
                        write_node(doc, c, out, indent + 1, pretty);
                    }
                    write!(out, "{pad}</{name}>{nl}").unwrap();
                }
            }
        }
        DocNode::Text(t) => {
            write!(out, "{}", escape_text(t)).unwrap();
        }
        DocNode::CData(t) => {
            write!(out, "<![CDATA[{t}]]>").unwrap();
        }
        DocNode::Comment(t) => {
            write!(out, "{pad}<!--{t}-->{nl}").unwrap();
        }
        DocNode::ProcessingInstruction { target, data } => {
            if data.is_empty() {
                write!(out, "{pad}<?{target}?>{nl}").unwrap();
            } else {
                write!(out, "{pad}<?{target} {data}?>{nl}").unwrap();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_roundtrip() {
        let xml = r#"<films><picture title="Rear Window"><director>Hitchcock</director></picture></films>"#;
        let doc = parse(xml).unwrap();
        let text = to_string_compact(&doc);
        assert_eq!(text, xml);
        // And it parses back to an equivalent document.
        let doc2 = parse(&text).unwrap();
        assert_eq!(doc.element_count(), doc2.element_count());
    }

    #[test]
    fn escaping_roundtrip() {
        let mut doc = Document::new();
        let root = doc.add_element(None, "t");
        doc.add_attribute(root, "v", "a&b\"c<d").unwrap();
        doc.add_text(root, "x < y & z");
        let text = to_string_compact(&doc);
        let doc2 = parse(&text).unwrap();
        let root2 = doc2.root_element().unwrap();
        assert_eq!(doc2.attribute(root2, "v"), Some("a&b\"c<d"));
        assert_eq!(doc2.text_content(root2), "x < y & z");
    }

    #[test]
    fn pretty_output_is_indented() {
        let doc = parse("<a><b><c/></b></a>").unwrap();
        let text = to_string_pretty(&doc);
        assert!(text.starts_with("<?xml"));
        assert!(text.contains("\n    <c/>"));
    }

    #[test]
    fn pretty_inlines_single_text_child() {
        let doc = parse("<a><b>hello</b></a>").unwrap();
        let text = to_string_pretty(&doc);
        assert!(text.contains("<b>hello</b>"));
    }

    #[test]
    fn cdata_preserved() {
        let doc = parse("<a><![CDATA[<raw>]]></a>").unwrap();
        let text = to_string_compact(&doc);
        assert!(text.contains("<![CDATA[<raw>]]>"));
    }

    #[test]
    fn comment_and_pi_serialized() {
        let mut doc = Document::new();
        doc.add_comment(None, " note ");
        let root = doc.add_element(None, "r");
        doc.add_pi(Some(root), "target", "data");
        let text = to_string_compact(&doc);
        assert!(text.contains("<!-- note -->"));
        assert!(text.contains("<?target data?>"));
    }

    #[test]
    fn random_docs_roundtrip() {
        // A small deterministic structural fuzz: build documents of varying
        // shapes and check parse(serialize(doc)) preserves structure.
        for seed in 0..20u64 {
            let mut doc = Document::new();
            let root = doc.add_element(None, "root");
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut parents = vec![root];
            for i in 0..30 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let pick = (state >> 33) as usize % parents.len();
                let parent = parents[pick];
                match (state >> 13) % 3 {
                    0 => {
                        let e = doc.add_element(Some(parent), format!("e{i}"));
                        parents.push(e);
                    }
                    1 => {
                        doc.add_text(parent, format!("text {i} & more"));
                    }
                    _ => {
                        let _ = doc.add_attribute(parent, format!("a{i}"), format!("v<{i}>"));
                    }
                }
            }
            let text = to_string_compact(&doc);
            let doc2 = parse(&text).unwrap();
            assert_eq!(doc.element_count(), doc2.element_count(), "seed {seed}");
        }
    }
}
