//! The semantically augmented output tree (Figure 4.b of the paper).
//!
//! After disambiguation, target nodes of the XML tree carry unambiguous
//! concept identifiers from the reference semantic network, while non-target
//! nodes remain untouched. [`SemanticTree`] pairs an [`XmlTree`] with a
//! sparse annotation map and can render itself as annotated XML.

use std::collections::BTreeMap;

use crate::tree::{NodeId, NodeKind, XmlTree};

/// The sense assigned to one node: an opaque concept identifier (the
/// semantic-network crate renders these as stable keys such as
/// `"star.performer"`) plus the score that won the disambiguation.
#[derive(Debug, Clone, PartialEq)]
pub struct SenseAnnotation {
    /// Stable textual identifier of the concept in the semantic network.
    pub concept: String,
    /// Human-readable gloss of the chosen concept, if available.
    pub gloss: Option<String>,
    /// The disambiguation score that selected this sense, in `\[0, 1\]`.
    pub score: f64,
}

/// A node of the semantic tree: the original label plus an optional sense.
#[derive(Debug, Clone)]
pub struct SemanticNode {
    /// The node's label in the source tree.
    pub label: String,
    /// Element / attribute / value-token.
    pub kind: NodeKind,
    /// The assigned sense; `None` for nodes that were not targets (or for
    /// targets the disambiguator abstained on).
    pub sense: Option<SenseAnnotation>,
}

/// An XML tree whose target nodes have been resolved to semantic concepts.
#[derive(Debug, Clone)]
pub struct SemanticTree {
    tree: XmlTree,
    senses: BTreeMap<NodeId, SenseAnnotation>,
}

impl SemanticTree {
    /// Wraps a tree with an (initially empty) annotation map.
    pub fn new(tree: XmlTree) -> Self {
        Self {
            tree,
            senses: BTreeMap::new(),
        }
    }

    /// The underlying syntactic tree.
    pub fn tree(&self) -> &XmlTree {
        &self.tree
    }

    /// Assigns a sense to a node.
    pub fn annotate(&mut self, node: NodeId, sense: SenseAnnotation) {
        self.senses.insert(node, sense);
    }

    /// The sense assigned to `node`, if any.
    pub fn sense(&self, node: NodeId) -> Option<&SenseAnnotation> {
        self.senses.get(&node)
    }

    /// A view of one node, merging label and annotation.
    pub fn node(&self, node: NodeId) -> SemanticNode {
        let n = self.tree.node(node);
        SemanticNode {
            label: n.label.clone(),
            kind: n.kind,
            sense: self.senses.get(&node).cloned(),
        }
    }

    /// Number of annotated nodes.
    pub fn annotated_count(&self) -> usize {
        self.senses.len()
    }

    /// Iterates over `(node, sense)` pairs in preorder.
    pub fn annotations(&self) -> impl Iterator<Item = (NodeId, &SenseAnnotation)> {
        self.senses.iter().map(|(&k, v)| (k, v))
    }

    /// Renders the semantic tree as XML in which every annotated node gains
    /// a `concept` attribute (elements/attributes) or is wrapped in a
    /// `<token concept="..">` element (value tokens). This is the output
    /// format of Figure 4.b.
    pub fn to_annotated_xml(&self) -> String {
        let mut out = String::new();
        self.render(self.tree.root(), &mut out, 0);
        out
    }

    fn render(&self, node: NodeId, out: &mut String, indent: usize) {
        use std::fmt::Write;
        let n = self.tree.node(node);
        let pad = "  ".repeat(indent);
        match n.kind {
            NodeKind::Element | NodeKind::Attribute => {
                let tag = if n.kind == NodeKind::Attribute {
                    "attribute"
                } else {
                    "element"
                };
                write!(out, "{pad}<{tag} label=\"{}\"", escape(&n.label)).unwrap();
                if let Some(sense) = self.senses.get(&node) {
                    write!(out, " concept=\"{}\"", escape(&sense.concept)).unwrap();
                }
                if n.children.is_empty() {
                    out.push_str("/>\n");
                } else {
                    out.push_str(">\n");
                    for &c in &n.children {
                        self.render(c, out, indent + 1);
                    }
                    writeln!(out, "{pad}</{tag}>").unwrap();
                }
            }
            NodeKind::ValueToken => {
                write!(out, "{pad}<token text=\"{}\"", escape(&n.label)).unwrap();
                if let Some(sense) = self.senses.get(&node) {
                    write!(out, " concept=\"{}\"", escape(&sense.concept)).unwrap();
                }
                out.push_str("/>\n");
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::tree::TreeBuilder;

    fn tree() -> XmlTree {
        let doc = parse("<cast><star>Kelly</star></cast>").unwrap();
        TreeBuilder::new().build(&doc).unwrap().tree
    }

    #[test]
    fn annotation_roundtrip() {
        let t = tree();
        let kelly = t.preorder().find(|&id| t.label(id) == "Kelly").unwrap();
        let mut st = SemanticTree::new(t);
        st.annotate(
            kelly,
            SenseAnnotation {
                concept: "kelly.grace".into(),
                gloss: Some("Princess of Monaco".into()),
                score: 0.9,
            },
        );
        assert_eq!(st.annotated_count(), 1);
        assert_eq!(st.sense(kelly).unwrap().concept, "kelly.grace");
        let view = st.node(kelly);
        assert_eq!(view.label, "Kelly");
        assert!(view.sense.is_some());
    }

    #[test]
    fn unannotated_nodes_have_no_sense() {
        let t = tree();
        let root = t.root();
        let st = SemanticTree::new(t);
        assert!(st.sense(root).is_none());
        assert_eq!(st.annotated_count(), 0);
    }

    #[test]
    fn annotated_xml_contains_concepts() {
        let t = tree();
        let cast = t.root();
        let kelly = t.preorder().find(|&id| t.label(id) == "Kelly").unwrap();
        let mut st = SemanticTree::new(t);
        st.annotate(
            cast,
            SenseAnnotation {
                concept: "cast.actors".into(),
                gloss: None,
                score: 0.8,
            },
        );
        st.annotate(
            kelly,
            SenseAnnotation {
                concept: "kelly.grace".into(),
                gloss: None,
                score: 0.7,
            },
        );
        let xml = st.to_annotated_xml();
        assert!(xml.contains("concept=\"cast.actors\""));
        assert!(xml.contains("<token text=\"Kelly\" concept=\"kelly.grace\"/>"));
    }

    #[test]
    fn annotated_xml_escapes_special_chars() {
        let doc = parse("<a>x</a>").unwrap();
        let t = TreeBuilder::new().build(&doc).unwrap().tree;
        let tok = t.preorder().find(|&id| t.label(id) == "x").unwrap();
        let mut st = SemanticTree::new(t);
        st.annotate(
            tok,
            SenseAnnotation {
                concept: "a<&\">b".into(),
                gloss: None,
                score: 1.0,
            },
        );
        let xml = st.to_annotated_xml();
        assert!(xml.contains("a&lt;&amp;&quot;&gt;b"));
    }

    #[test]
    fn annotations_iterate_in_preorder() {
        let t = tree();
        let ids: Vec<_> = t.preorder().collect();
        let mut st = SemanticTree::new(t);
        // Insert out of order.
        st.annotate(
            ids[2],
            SenseAnnotation {
                concept: "c2".into(),
                gloss: None,
                score: 0.1,
            },
        );
        st.annotate(
            ids[0],
            SenseAnnotation {
                concept: "c0".into(),
                gloss: None,
                score: 0.1,
            },
        );
        let order: Vec<_> = st.annotations().map(|(n, _)| n).collect();
        assert_eq!(order, vec![ids[0], ids[2]]);
    }
}
