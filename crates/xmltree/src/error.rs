//! Error types for XML parsing.

use std::fmt;

/// The category of a parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A character that is not valid at the current position.
    UnexpectedChar(char),
    /// A closing tag that does not match the open element.
    MismatchedTag {
        /// Name of the element that is currently open.
        expected: String,
        /// Name found in the closing tag.
        found: String,
    },
    /// An XML name (element, attribute) is empty or starts with an
    /// invalid character.
    InvalidName(String),
    /// An entity reference (`&...;`) that is malformed or unknown.
    InvalidEntity(String),
    /// The same attribute appears twice on one element.
    DuplicateAttribute(String),
    /// The document has no root element, or content outside the root.
    InvalidStructure(String),
    /// A malformed XML declaration, comment, CDATA section or PI.
    Malformed(String),
    /// Element nesting exceeded the parser's configured depth bound
    /// ([`crate::parser::Parser::max_depth`]). Distinguished from
    /// [`ParseErrorKind::InvalidStructure`] so resource-governed callers
    /// (the batch runtime) can classify it as a limit violation rather
    /// than a malformed document.
    DepthExceeded {
        /// The configured maximum nesting depth.
        limit: u32,
    },
    /// The input exceeded the streaming parser's configured byte bound
    /// ([`crate::stream::StreamLimits::max_bytes`]) — raised *while*
    /// scanning, before the oversized remainder is ever buffered. Like
    /// [`ParseErrorKind::DepthExceeded`], this is a resource-limit
    /// violation, not evidence of malformed input.
    BytesExceeded {
        /// The configured maximum input size in bytes.
        limit: usize,
    },
    /// The document produced more nodes than the streaming parser's
    /// configured bound ([`crate::stream::StreamLimits::max_nodes`]) —
    /// raised as soon as one node too many is scanned, before the rest of
    /// the document is processed. A resource-limit violation, not evidence
    /// of malformed input.
    NodesExceeded {
        /// The configured maximum node count.
        limit: usize,
    },
}

/// An error produced while parsing an XML document, carrying the 1-based
/// line and column where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// 1-based line number of the failure.
    pub line: u32,
    /// 1-based column number of the failure.
    pub column: u32,
}

impl ParseError {
    /// Creates a new parse error at the given position.
    pub fn new(kind: ParseErrorKind, line: u32, column: u32) -> Self {
        Self { kind, line, column }
    }
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof => write!(f, "unexpected end of input"),
            Self::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            Self::MismatchedTag { expected, found } => {
                write!(
                    f,
                    "mismatched closing tag: expected </{expected}>, found </{found}>"
                )
            }
            Self::InvalidName(n) => write!(f, "invalid XML name {n:?}"),
            Self::InvalidEntity(e) => write!(f, "invalid entity reference &{e};"),
            Self::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
            Self::InvalidStructure(m) => write!(f, "invalid document structure: {m}"),
            Self::Malformed(m) => write!(f, "malformed construct: {m}"),
            Self::DepthExceeded { limit } => {
                write!(f, "element nesting exceeds the maximum depth of {limit}")
            }
            Self::BytesExceeded { limit } => {
                write!(f, "input exceeds the maximum size of {limit} bytes")
            }
            Self::NodesExceeded { limit } => {
                write!(f, "document exceeds the maximum of {limit} nodes")
            }
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {}, column {}",
            self.kind, self.line, self.column
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let err = ParseError::new(ParseErrorKind::UnexpectedEof, 3, 14);
        let text = err.to_string();
        assert!(text.contains("line 3"));
        assert!(text.contains("column 14"));
    }

    #[test]
    fn display_mismatched_tag() {
        let err = ParseError::new(
            ParseErrorKind::MismatchedTag {
                expected: "a".into(),
                found: "b".into(),
            },
            1,
            1,
        );
        assert!(err.to_string().contains("</a>"));
        assert!(err.to_string().contains("</b>"));
    }

    #[test]
    fn kind_equality() {
        assert_eq!(
            ParseErrorKind::UnexpectedChar('<'),
            ParseErrorKind::UnexpectedChar('<')
        );
        assert_ne!(
            ParseErrorKind::UnexpectedChar('<'),
            ParseErrorKind::UnexpectedChar('>')
        );
    }
}
