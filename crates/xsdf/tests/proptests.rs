//! Property-based tests for the XSDF core: ambiguity-degree invariants,
//! context-vector laws, and pipeline totality on random documents.

use proptest::prelude::*;
use xmltree::tree::TreeBuilder;
use xmltree::XmlTree;
use xsdf::ambiguity::{ambiguity_degree, select_targets};
use xsdf::sphere::{xml_context_vector, xml_context_vector_weighted};
use xsdf::{AmbiguityWeights, DistancePolicy, LingTokenizer, ThresholdPolicy, Xsdf, XsdfConfig};

/// Random documents over the MiniWordNet vocabulary.
fn arb_tree() -> impl Strategy<Value = XmlTree> {
    let tags = [
        "films", "picture", "cast", "star", "title", "state", "address", "play", "act", "scene",
        "line", "price", "menu", "food", "club", "member", "zorble",
    ];
    proptest::collection::vec((0usize..40, 0usize..17, prop::bool::ANY), 1..30).prop_map(
        move |ops| {
            let sn = semnet::mini_wordnet();
            let mut doc = xmltree::Document::new();
            let root = doc.add_element(None, "root");
            let mut elems = vec![root];
            for (parent, tag, is_text) in ops {
                let parent = elems[parent % elems.len()];
                if is_text {
                    doc.add_text(parent, tags[tag]);
                } else {
                    let e = doc.add_element(Some(parent), tags[tag]);
                    elems.push(e);
                }
            }
            TreeBuilder::with_tokenizer(LingTokenizer::new(sn))
                .build(&doc)
                .unwrap()
                .tree
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Amb_Deg is always in \[0, 1\], and zeroing the polysemy weight zeroes
    /// every degree (Section 3.3).
    #[test]
    fn ambiguity_degree_bounds(tree in arb_tree()) {
        let sn = semnet::mini_wordnet();
        let zero_poly = AmbiguityWeights::new(0.0, 1.0, 1.0);
        for node in tree.preorder() {
            let d = ambiguity_degree(sn, &tree, node, AmbiguityWeights::equal());
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert_eq!(ambiguity_degree(sn, &tree, node, zero_poly), 0.0);
        }
    }

    /// Raising the threshold never selects more nodes, and the selected set
    /// is always the top of the ambiguity ordering.
    #[test]
    fn threshold_monotone(tree in arb_tree(), t1 in 0.0f64..0.5, dt in 0.0f64..0.5) {
        let sn = semnet::mini_wordnet();
        let w = AmbiguityWeights::equal();
        let low = select_targets(sn, &tree, w, ThresholdPolicy::Fixed(t1));
        let high = select_targets(sn, &tree, w, ThresholdPolicy::Fixed(t1 + dt));
        let n_low = low.iter().filter(|na| na.selected).count();
        let n_high = high.iter().filter(|na| na.selected).count();
        prop_assert!(n_high <= n_low);
        // Selection is threshold-consistent.
        for na in &high {
            if na.selected {
                prop_assert!(na.degree >= t1 + dt);
            }
        }
    }

    /// Context vector weights are in \[0, 1\] and sum over a label equals the
    /// scaled structural frequency (Definition 7's bounds).
    #[test]
    fn context_vector_bounds(tree in arb_tree(), radius in 1u32..4) {
        for center in tree.preorder() {
            let v = xml_context_vector(&tree, center, radius);
            prop_assert!(!v.is_empty());
            for (label, w) in v.iter() {
                prop_assert!((0.0..=1.0).contains(&w), "w({label}) = {w}");
            }
            // The center's own label has positive weight.
            prop_assert!(v.get(tree.label(center)) > 0.0);
        }
    }

    /// The weighted context vector under EdgeCount equals the classic one.
    #[test]
    fn weighted_vector_consistency(tree in arb_tree(), radius in 1u32..4) {
        let center = tree.root();
        let a = xml_context_vector(&tree, center, radius);
        let b = xml_context_vector_weighted(&tree, center, radius, DistancePolicy::EdgeCount);
        for (label, w) in a.iter() {
            prop_assert!((w - b.get(label)).abs() < 1e-12);
        }
    }

    /// The full pipeline is total on random documents: never panics, every
    /// report node is in the tree, every assigned score is in \[0, 1\], and
    /// assigned senses are among the label's candidates.
    #[test]
    fn pipeline_total_and_consistent(tree in arb_tree(), radius in 1u32..4) {
        let sn = semnet::mini_wordnet();
        let xsdf = Xsdf::new(sn, XsdfConfig { radius, ..XsdfConfig::default() });
        let result = xsdf.disambiguate_tree(&tree);
        prop_assert_eq!(result.reports.len(), tree.len());
        for r in &result.reports {
            prop_assert!(r.node.index() < tree.len());
            if let Some((_, score)) = &r.chosen {
                prop_assert!((0.0..=1.0).contains(score));
                let sense = result.semantic_tree.sense(r.node).unwrap();
                prop_assert!(!sense.concept.is_empty());
            }
        }
        // Unknown labels are never annotated.
        for r in &result.reports {
            if r.label == "zorble" {
                prop_assert!(r.chosen.is_none());
            }
        }
    }

    /// Restricting to a node subset gives the same choices as the full run.
    #[test]
    fn restriction_consistency(tree in arb_tree()) {
        let sn = semnet::mini_wordnet();
        let xsdf = Xsdf::new(sn, XsdfConfig::default());
        let full = xsdf.disambiguate_tree(&tree);
        let subset: Vec<_> = tree.preorder().step_by(3).collect();
        let restricted = xsdf.disambiguate_nodes(&tree, &subset);
        for r in &restricted.reports {
            let full_r = &full.reports[r.node.index()];
            prop_assert_eq!(&r.chosen, &full_r.chosen, "node {:?}", r.node);
        }
    }
}
