//! Scalability and thread-safety checks for the pipeline.

use xsdf::{ThresholdPolicy, Xsdf, XsdfConfig};

/// Builds a large synthetic catalog (~`records`·8 nodes).
fn big_doc(records: usize) -> xmltree::Document {
    let mut doc = xmltree::Document::new();
    let root = doc.add_element(None, "catalog");
    for i in 0..records {
        let cd = doc.add_element(Some(root), "cd");
        for (tag, value) in [
            ("title", "blues"),
            ("artist", "Olsson"),
            ("country", "Norway"),
            ("price", "12"),
            ("year", "1985"),
        ] {
            let e = doc.add_element(Some(cd), tag);
            doc.add_text(e, format!("{value}{}", i % 3));
        }
    }
    doc
}

#[test]
fn thousand_node_document_disambiguates() {
    let sn = semnet::mini_wordnet();
    let xsdf = Xsdf::new(sn, XsdfConfig::default());
    let doc = big_doc(150); // ~1200 tree nodes
    let tree = xsdf.build_tree(&doc);
    assert!(tree.len() > 1000, "tree has {} nodes", tree.len());
    let result = xsdf.disambiguate_tree(&tree);
    assert_eq!(result.reports.len(), tree.len());
    assert!(result.assigned_count() > 500);
}

#[test]
fn selection_scales_down_the_work() {
    // Motivation 1 at scale: the automatic threshold processes a strict
    // subset of the zero-threshold targets on a large document.
    let sn = semnet::mini_wordnet();
    let doc = big_doc(100);
    let all = Xsdf::new(sn, XsdfConfig::default());
    let tree = all.build_tree(&doc);
    let n_all = all.disambiguate_tree(&tree).targets().count();
    let auto = Xsdf::new(
        sn,
        XsdfConfig {
            threshold: ThresholdPolicy::Auto,
            ..XsdfConfig::default()
        },
    );
    let n_auto = auto.disambiguate_tree(&tree).targets().count();
    assert!(n_auto < n_all * 3 / 4, "auto {n_auto} vs all {n_all}");
}

#[test]
fn framework_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<semnet::SemanticNetwork>();
    assert_send_sync::<xmltree::XmlTree>();
    assert_send_sync::<XsdfConfig>();
    assert_send_sync::<Xsdf<'static>>();
}

#[test]
fn parallel_batch_on_many_documents() {
    let sn = semnet::mini_wordnet();
    let xsdf = Xsdf::new(sn, XsdfConfig::default());
    let docs: Vec<_> = (0..12).map(|_| big_doc(10)).collect();
    let trees: Vec<_> = docs.iter().map(|d| xsdf.build_tree(d)).collect();
    let refs: Vec<&xmltree::XmlTree> = trees.iter().collect();
    let results = xsdf.disambiguate_batch(&refs, 4);
    assert_eq!(results.len(), 12);
    for r in &results {
        assert!(r.assigned_count() > 10);
    }
}
