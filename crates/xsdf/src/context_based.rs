//! Context-based semantic disambiguation (Section 3.5.2, Definition 10).
//!
//! The target node's XML sphere context vector is compared — by cosine —
//! with the semantic-network sphere context vector of each candidate sense:
//!
//! ```text
//! Context_Score(s_p, S_d(x), SN) = cos(V_d(x), V_d(s_p))
//! ```
//!
//! Compound targets use the union sphere `S_d(s_p) ∪ S_d(s_q)`
//! (Equation 12).

use semnet::graph::RelationFilter;
use semnet::{ConceptId, SemanticNetwork};
use semsim::{SimilarityCache, SparseVector};
use xmltree::{NodeId, XmlTree};

use crate::sphere::{
    compound_concept_context_vector, concept_context_vector, concept_context_vector_cached,
    xml_context_vector,
};

/// The XML-side context vector of a target node, reused across all of its
/// candidate senses.
pub struct ContextVectorScorer {
    xml_vector: SparseVector,
    radius: u32,
    filter: RelationFilter,
    measure: crate::config::VectorSimilarity,
}

impl ContextVectorScorer {
    /// Builds the scorer for a target node at the given sphere radius,
    /// crossing all semantic relation kinds on the network side.
    pub fn build(tree: &XmlTree, target: NodeId, radius: u32) -> Self {
        Self {
            xml_vector: xml_context_vector(tree, target, radius),
            radius,
            filter: RelationFilter::All,
            measure: crate::config::VectorSimilarity::Cosine,
        }
    }

    /// Selects the vector similarity measure (footnote 10 of the paper).
    pub fn with_measure(mut self, measure: crate::config::VectorSimilarity) -> Self {
        self.measure = measure;
        self
    }

    /// Restricts which semantic relations the network-side sphere crosses.
    pub fn with_filter(mut self, filter: RelationFilter) -> Self {
        self.filter = filter;
        self
    }

    /// The target's XML context vector.
    pub fn xml_vector(&self) -> &SparseVector {
        &self.xml_vector
    }

    /// The largest context score any candidate can produce: every scorer
    /// output routes through [`crate::config::VectorSimilarity::apply`],
    /// whose contract maps all measures into `[0, 1]`. The candidate
    /// pruner ([`crate::prune`] level (a)) leans on this bound when it
    /// computes a candidate's best reachable combined score, so it is an
    /// explicit part of this type's API rather than an implementation
    /// detail of the measures.
    pub fn score_bound(&self) -> f64 {
        1.0
    }

    /// `Context_Score(s_p)` of Definition 10.
    pub fn score_single(&self, sn: &SemanticNetwork, candidate: ConceptId) -> f64 {
        let concept_vector = concept_context_vector(sn, candidate, self.radius, &self.filter);
        self.measure.apply(&self.xml_vector, &concept_vector)
    }

    /// [`ContextVectorScorer::score_single`] with the candidate's concept
    /// vector memoized through the cache's vector table (see
    /// [`concept_context_vector_cached`]). The same sense recurs across
    /// many targets and documents; its network-side sphere vector never
    /// changes, so only the final vector comparison runs per call once the
    /// table is warm.
    pub fn score_single_cached<C: SimilarityCache + ?Sized>(
        &self,
        sn: &SemanticNetwork,
        candidate: ConceptId,
        cache: &C,
    ) -> f64 {
        let concept_vector =
            concept_context_vector_cached(sn, candidate, self.radius, &self.filter, cache);
        self.measure.apply(&self.xml_vector, &concept_vector)
    }

    /// `Context_Score((s_p, s_q))` of Equation 12.
    pub fn score_pair(&self, sn: &SemanticNetwork, first: ConceptId, second: ConceptId) -> f64 {
        let concept_vector =
            compound_concept_context_vector(sn, first, second, self.radius, &self.filter);
        self.measure.apply(&self.xml_vector, &concept_vector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::senses::LingTokenizer;
    use semnet::mini_wordnet;
    use xmltree::tree::TreeBuilder;

    fn tree(xml: &str) -> XmlTree {
        let doc = xmltree::parse(xml).unwrap();
        TreeBuilder::with_tokenizer(LingTokenizer::new(mini_wordnet()))
            .build(&doc)
            .unwrap()
            .tree
    }

    fn find(t: &XmlTree, label: &str) -> NodeId {
        t.preorder().find(|&id| t.label(id) == label).unwrap()
    }

    fn id(key: &str) -> ConceptId {
        mini_wordnet().by_key(key).unwrap()
    }

    #[test]
    fn cast_context_prefers_actors_sense() {
        let t = tree(
            "<films><picture><cast><star>Stewart</star><star>Kelly</star></cast><plot/></picture></films>",
        );
        let sn = mini_wordnet();
        let scorer = ContextVectorScorer::build(&t, find(&t, "cast"), 2);
        let actors = scorer.score_single(sn, id("cast.actors"));
        let mold = scorer.score_single(sn, id("cast.mold"));
        assert!(actors > mold, "{actors} <= {mold}");
    }

    #[test]
    fn scores_bounded() {
        let t = tree("<cd><artist/><track/></cd>");
        let sn = mini_wordnet();
        let scorer = ContextVectorScorer::build(&t, find(&t, "track"), 2);
        assert_eq!(scorer.score_bound(), 1.0);
        for key in ["track.song", "track.path", "track.rail"] {
            let s = scorer.score_single(sn, id(key));
            assert!((0.0..=scorer.score_bound()).contains(&s), "{key}: {s}");
        }
    }

    #[test]
    fn music_context_prefers_song_track() {
        // Radius 1: the paper notes (Section 4.3.1) that growing the radius
        // floods the semantic-network vector with noise concepts, so the
        // context-based method is evaluated at its small-context best here.
        let t = tree("<cd><title/><artist/><company/><track/><track/></cd>");
        let sn = mini_wordnet();
        let scorer = ContextVectorScorer::build(&t, find(&t, "track"), 1);
        let song = scorer.score_single(sn, id("track.song"));
        let rail = scorer.score_single(sn, id("track.rail"));
        assert!(song > rail, "{song} <= {rail}");
    }

    #[test]
    fn pair_scoring_unions_neighborhoods() {
        let t = tree("<films><star_picture/><cast/></films>");
        let sn = mini_wordnet();
        let scorer = ContextVectorScorer::build(&t, find(&t, "star picture"), 2);
        let s = scorer.score_pair(sn, id("star.performer"), id("film.movie"));
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn relation_filter_restricts_network_sphere() {
        let t = tree("<films><picture><cast><star/></cast></picture></films>");
        let sn = mini_wordnet();
        let all = ContextVectorScorer::build(&t, find(&t, "cast"), 2);
        let taxo_only = ContextVectorScorer::build(&t, find(&t, "cast"), 2).with_filter(
            RelationFilter::Only(vec![
                semnet::RelationKind::Hypernym,
                semnet::RelationKind::Hyponym,
            ]),
        );
        // Both produce valid scores; they may differ because the spheres
        // differ.
        let a = all.score_single(sn, id("cast.actors"));
        let b = taxo_only.score_single(sn, id("cast.actors"));
        assert!((0.0..=1.0).contains(&a));
        assert!((0.0..=1.0).contains(&b));
    }

    #[test]
    fn alternative_measures_run_footnote10() {
        let t = tree("<cd><title/><artist/><track/></cd>");
        let sn = mini_wordnet();
        for measure in [
            crate::config::VectorSimilarity::Cosine,
            crate::config::VectorSimilarity::Jaccard,
            crate::config::VectorSimilarity::Pearson,
        ] {
            let scorer = ContextVectorScorer::build(&t, find(&t, "track"), 1).with_measure(measure);
            let s = scorer.score_single(sn, id("track.song"));
            assert!((0.0..=1.0).contains(&s), "{measure:?}: {s}");
        }
    }

    #[test]
    fn cached_scoring_matches_uncached() {
        let t = tree(
            "<films><picture><cast><star>Stewart</star><star>Kelly</star></cast><plot/></picture></films>",
        );
        let sn = mini_wordnet();
        let cache = semsim::LocalCache::new();
        for measure in [
            crate::config::VectorSimilarity::Cosine,
            crate::config::VectorSimilarity::Jaccard,
            crate::config::VectorSimilarity::Pearson,
        ] {
            let scorer = ContextVectorScorer::build(&t, find(&t, "cast"), 2).with_measure(measure);
            for key in ["cast.actors", "cast.mold", "star.performer"] {
                let plain = scorer.score_single(sn, id(key));
                let cold = scorer.score_single_cached(sn, id(key), &cache);
                let warm = scorer.score_single_cached(sn, id(key), &cache);
                assert_eq!(plain, cold, "{measure:?} {key}");
                assert_eq!(plain, warm, "{measure:?} {key}");
            }
        }
        assert_eq!(cache.vectors_len(), 3);
    }

    #[test]
    fn degenerate_concept_vector_scores_zero_through_scorer_measure() {
        // Propagation of the zero-vector guard: every ContextVectorScorer
        // score routes through VectorSimilarity::apply, whose contract says
        // a zero/empty vector scores exactly 0.0 under every measure.
        // NetworkBuilder rejects lemma-less concepts (NoLemmas), so a built
        // network cannot produce an empty concept vector today — this pins
        // the scorer-side behavior should one ever arrive (hand-built
        // networks, future loaders). Before the guard, Pearson's rescale
        // returned 0.5 here, ranking an evidence-free sense above genuinely
        // anti-correlated candidates.
        let t = tree("<cast><star/></cast>");
        let empty = SparseVector::new();
        let zero = SparseVector::from_pairs([("star", 0.0)]);
        for measure in [
            crate::config::VectorSimilarity::Cosine,
            crate::config::VectorSimilarity::Jaccard,
            crate::config::VectorSimilarity::Pearson,
        ] {
            let scorer = ContextVectorScorer::build(&t, t.root(), 1).with_measure(measure);
            assert!(scorer.xml_vector().norm() > 0.0);
            assert_eq!(
                measure.apply(scorer.xml_vector(), &empty),
                0.0,
                "{measure:?}"
            );
            assert_eq!(
                measure.apply(scorer.xml_vector(), &zero),
                0.0,
                "{measure:?}"
            );
        }
    }

    #[test]
    fn singleton_tree_gives_self_label_vector() {
        let t = tree("<star/>");
        let scorer = ContextVectorScorer::build(&t, t.root(), 2);
        assert_eq!(scorer.xml_vector().len(), 1);
        assert!(scorer.xml_vector().get("star") > 0.0);
        // The sense vectors still contain "star", so cosine is positive.
        let sn = mini_wordnet();
        assert!(scorer.score_single(sn, id("star.celestial")) > 0.0);
    }
}
