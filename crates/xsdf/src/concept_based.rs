//! Concept-based semantic disambiguation (Section 3.5.1, Definition 8).
//!
//! For a candidate sense `s_p` of target node `x` with sphere context
//! `S_d(x)`:
//!
//! ```text
//!                      Σ_{x_i ∈ S_d(x)}  Max_j ( Sim(s_p, s_j^i) · w_{V_d(x)}(x_i.ℓ) )
//! Concept_Score(s_p) = ─────────────────────────────────────────────────────────────────
//!                                           |S_d(x)|
//! ```
//!
//! where `s_j^i` ranges over the senses of context node `x_i`'s label and
//! `Sim` is the combined measure of Definition 9. Compound target labels use
//! the averaged pair similarity of Equation 10.

use semnet::{ConceptId, SemanticNetwork};
use semsim::{CombinedSimilarity, SimilarityCache, SparseVector};
use xmltree::{NodeId, XmlTree};

use crate::senses::{disambiguation_candidates, SenseCandidates};
use crate::sphere::{
    xml_context_vector, xml_context_vector_weighted, xml_sphere, xml_sphere_weighted,
};
use xmltree::distance::DistancePolicy;

/// Pre-resolved context information for one target node, reused across all
/// of its candidate senses.
pub struct ConceptContext {
    /// `(context label, context-vector weight, senses of that label)` per
    /// sphere node, with the compound special case flattened: a compound
    /// context label contributes its two token sense lists separately, each
    /// averaged per Equation 10's note on compound context labels.
    entries: Vec<ContextEntry>,
    /// `|S_d(x)|` of Definition 8: the center (ring `R_0`) plus all
    /// context nodes, so always ≥ 1.
    cardinality: usize,
}

struct ContextEntry {
    weight: f64,
    senses: Vec<ConceptId>,
    /// Second sense list for compound context labels (averaged with the
    /// first when scoring).
    second_senses: Option<Vec<ConceptId>>,
}

impl ConceptContext {
    /// Resolves the sphere context of `target` at the given radius.
    pub fn build(sn: &SemanticNetwork, tree: &XmlTree, target: NodeId, radius: u32) -> Self {
        Self::build_with_policy(sn, tree, target, radius, DistancePolicy::EdgeCount)
    }

    /// [`ConceptContext::build`] under an alternative distance policy
    /// (Section 5's future-work distances).
    pub fn build_with_policy(
        sn: &SemanticNetwork,
        tree: &XmlTree,
        target: NodeId,
        radius: u32,
        policy: DistancePolicy,
    ) -> Self {
        let nodes: Vec<(NodeId, ())> = if policy == DistancePolicy::EdgeCount {
            xml_sphere(tree, target, radius)
                .into_iter()
                .map(|(n, _)| (n, ()))
                .collect()
        } else {
            xml_sphere_weighted(tree, target, radius, policy)
                .into_iter()
                .map(|(n, _)| (n, ()))
                .collect()
        };
        let vector = xml_context_vector_weighted(tree, target, radius, policy);
        // |S_d(x)| of Definition 8 counts the center (Definition 5's ring
        // R_0 = {x}) plus all context nodes — the same convention the
        // context vectors pin with Figure 7's V_1. Counting only the
        // context nodes here (the pre-PR 5 behavior) inflated every score
        // by (n+1)/n relative to the definitions.
        let cardinality = nodes.len() + 1;
        let mut entries = Vec::with_capacity(nodes.len());
        for (node, _) in nodes {
            let label = tree.label(node);
            let weight = vector.get(label);
            match disambiguation_candidates(sn, label, tree.node(node).kind) {
                SenseCandidates::Unknown => {}
                SenseCandidates::Single(senses) => {
                    entries.push(ContextEntry {
                        weight,
                        senses,
                        second_senses: None,
                    });
                }
                SenseCandidates::Compound { first, second } => {
                    entries.push(ContextEntry {
                        weight,
                        senses: first,
                        second_senses: Some(second),
                    });
                }
            }
        }
        Self {
            entries,
            cardinality,
        }
    }

    /// The context vector used for weighting (exposed for diagnostics).
    pub fn vector(tree: &XmlTree, target: NodeId, radius: u32) -> SparseVector {
        xml_context_vector(tree, target, radius)
    }

    /// Number of context nodes that contributed sense entries.
    pub fn informative_nodes(&self) -> usize {
        self.entries.len()
    }

    /// `|S_d(x)|` of Definition 8: context nodes plus the center, always
    /// ≥ 1 (the denominator of every concept score in this context).
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// Right-to-left running weight sums for bounded scoring: element `i`
    /// is the total context-vector weight of entries `i..`, so
    /// `suffix[i + 1]` bounds what entries after `i` can still contribute
    /// (every per-entry max similarity is ≤ 1). Length
    /// `informative_nodes() + 1`; the last element is 0. Computed once per
    /// target and shared across all its candidates.
    pub fn suffix_weight_sums(&self) -> Vec<f64> {
        let mut suffix = vec![0.0; self.entries.len() + 1];
        for i in (0..self.entries.len()).rev() {
            suffix[i] = suffix[i + 1] + self.entries[i].weight;
        }
        suffix
    }

    /// The largest concept score *any* candidate can reach in this
    /// context: `min(1, Σ_i w_i / |S_d(x)|)`, since each entry's max
    /// similarity is at most 1. Drives the global early exit of
    /// [`crate::prune`] level (a).
    pub fn max_concept_score(&self) -> f64 {
        let total: f64 = self.entries.iter().map(|e| e.weight).sum();
        (total / self.cardinality as f64).min(1.0)
    }

    /// All candidate senses of all context labels (compound sides
    /// included), sorted and deduplicated — the evidence set the density
    /// pre-score of [`crate::prune`] screens candidates against.
    pub fn context_senses(&self) -> Vec<ConceptId> {
        let mut senses: Vec<ConceptId> = self
            .entries
            .iter()
            .flat_map(|e| {
                e.senses
                    .iter()
                    .chain(e.second_senses.iter().flatten())
                    .copied()
            })
            .collect();
        senses.sort_unstable();
        senses.dedup();
        senses
    }

    fn max_sim_with<C: SimilarityCache>(
        &self,
        sn: &SemanticNetwork,
        sim: &CombinedSimilarity<C>,
        entry: &ContextEntry,
        score_of: &dyn Fn(&SemanticNetwork, &CombinedSimilarity<C>, ConceptId) -> f64,
    ) -> f64 {
        // Max over the context node's senses of Sim(candidate, s_j^i).
        let best_first = entry
            .senses
            .iter()
            .map(|&s| score_of(sn, sim, s))
            .fold(0.0f64, f64::max);
        match &entry.second_senses {
            None => best_first,
            Some(second) => {
                let best_second = second
                    .iter()
                    .map(|&s| score_of(sn, sim, s))
                    .fold(0.0f64, f64::max);
                // Compound context label: average the two tokens' best
                // similarities (mirror of Equation 10 applied to context).
                if entry.senses.is_empty() {
                    best_second
                } else if second.is_empty() {
                    best_first
                } else {
                    (best_first + best_second) / 2.0
                }
            }
        }
    }

    /// `Concept_Score(s_p, S_d(x), S̄N)` of Definition 8.
    pub fn score_single<C: SimilarityCache>(
        &self,
        sn: &SemanticNetwork,
        sim: &CombinedSimilarity<C>,
        candidate: ConceptId,
    ) -> f64 {
        let total: f64 = self
            .entries
            .iter()
            .map(|e| {
                let best =
                    self.max_sim_with(sn, sim, e, &|sn, sim, s| sim.similarity(sn, candidate, s));
                best * e.weight
            })
            .sum();
        (total / self.cardinality as f64).clamp(0.0, 1.0)
    }

    /// `Concept_Score((s_p, s_q), S_d(x), S̄N)` of Equation 10 — the
    /// compound-target special case: each context comparison averages the
    /// similarities of the two target token senses.
    pub fn score_pair<C: SimilarityCache>(
        &self,
        sn: &SemanticNetwork,
        sim: &CombinedSimilarity<C>,
        first: ConceptId,
        second: ConceptId,
    ) -> f64 {
        let total: f64 = self
            .entries
            .iter()
            .map(|e| {
                let best = self.max_sim_with(sn, sim, e, &|sn, sim, s| {
                    (sim.similarity(sn, first, s) + sim.similarity(sn, second, s)) / 2.0
                });
                best * e.weight
            })
            .sum();
        (total / self.cardinality as f64).clamp(0.0, 1.0)
    }

    /// Shared core of the bounded scorers. After each entry the running
    /// upper bound `min(1, (partial + suffix[i + 1]) / |S_d(x)|)` on the
    /// final concept score is offered to `abandon`; a `true` return stops
    /// the candidate with `None`. The bound is never offered after the
    /// last entry (at that point the score is already fully computed, so
    /// abandoning would save nothing and miscount pruning work).
    ///
    /// Survivors are **bit-identical** to the unbounded scorers: the
    /// running `total += best · w_i` accumulates in the same left-to-right
    /// order as `Iterator::sum` (a fold from 0.0), and the final
    /// `clamp(total / |S_d(x)|)` is the same expression.
    fn score_bounded_with<C: SimilarityCache>(
        &self,
        sn: &SemanticNetwork,
        sim: &CombinedSimilarity<C>,
        score_of: &dyn Fn(&SemanticNetwork, &CombinedSimilarity<C>, ConceptId) -> f64,
        suffix: &[f64],
        abandon: &mut dyn FnMut(f64) -> bool,
    ) -> Option<f64> {
        debug_assert_eq!(suffix.len(), self.entries.len() + 1);
        let mut total = 0.0f64;
        for (i, e) in self.entries.iter().enumerate() {
            let best = self.max_sim_with(sn, sim, e, score_of);
            total += best * e.weight;
            if i + 1 < self.entries.len() {
                let bound = ((total + suffix[i + 1]) / self.cardinality as f64).min(1.0);
                if abandon(bound) {
                    return None;
                }
            }
        }
        Some((total / self.cardinality as f64).clamp(0.0, 1.0))
    }

    /// [`ConceptContext::score_single`] with branch-and-bound abandonment
    /// ([`crate::prune`] level (a)): returns `None` if `abandon` accepted
    /// a running upper bound, the exact Definition 8 score otherwise.
    pub fn score_single_bounded<C: SimilarityCache>(
        &self,
        sn: &SemanticNetwork,
        sim: &CombinedSimilarity<C>,
        candidate: ConceptId,
        suffix: &[f64],
        abandon: &mut dyn FnMut(f64) -> bool,
    ) -> Option<f64> {
        self.score_bounded_with(
            sn,
            sim,
            &|sn, sim, s| sim.similarity(sn, candidate, s),
            suffix,
            abandon,
        )
    }

    /// [`ConceptContext::score_pair`] with branch-and-bound abandonment —
    /// the Equation 10 compound-target analogue of
    /// [`ConceptContext::score_single_bounded`].
    pub fn score_pair_bounded<C: SimilarityCache>(
        &self,
        sn: &SemanticNetwork,
        sim: &CombinedSimilarity<C>,
        first: ConceptId,
        second: ConceptId,
        suffix: &[f64],
        abandon: &mut dyn FnMut(f64) -> bool,
    ) -> Option<f64> {
        self.score_bounded_with(
            sn,
            sim,
            &|sn, sim, s| (sim.similarity(sn, first, s) + sim.similarity(sn, second, s)) / 2.0,
            suffix,
            abandon,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::senses::LingTokenizer;
    use semnet::mini_wordnet;
    use xmltree::tree::TreeBuilder;

    fn tree(xml: &str) -> XmlTree {
        let doc = xmltree::parse(xml).unwrap();
        TreeBuilder::with_tokenizer(LingTokenizer::new(mini_wordnet()))
            .build(&doc)
            .unwrap()
            .tree
    }

    fn find(t: &XmlTree, label: &str) -> NodeId {
        t.preorder().find(|&id| t.label(id) == label).unwrap()
    }

    fn id(key: &str) -> ConceptId {
        mini_wordnet().by_key(key).unwrap()
    }

    #[test]
    fn figure1_cast_resolves_to_actors() {
        // "cast" surrounded by picture/star/kelly/stewart must prefer
        // cast-the-actors over cast-the-mold/throw/plaster.
        let t = tree(
            "<films><picture><cast><star>Stewart</star><star>Kelly</star></cast><plot/></picture></films>",
        );
        let sn = mini_wordnet();
        let cast = find(&t, "cast");
        let ctx = ConceptContext::build(sn, &t, cast, 2);
        let sim = CombinedSimilarity::default();
        let actors = ctx.score_single(sn, &sim, id("cast.actors"));
        for other in ["cast.mold", "cast.throw", "cast.plaster", "cast.appearance"] {
            let score = ctx.score_single(sn, &sim, id(other));
            assert!(actors > score, "cast.actors {actors} <= {other} {score}");
        }
    }

    #[test]
    fn figure1_kelly_resolves_to_grace() {
        // Section 1: "looking at its context in the document, a human user
        // can tell that Kelly here refers to Grace Kelly."
        let t = tree(
            "<films><picture title=\"Rear Window\"><director>Hitchcock</director><cast><star>Stewart</star><star>Kelly</star></cast></picture></films>",
        );
        let sn = mini_wordnet();
        let kelly = t
            .preorder()
            .find(|&n| t.label(n) == "kelly")
            .expect("kelly token node");
        let ctx = ConceptContext::build(sn, &t, kelly, 2);
        let sim = CombinedSimilarity::default();
        let grace = ctx.score_single(sn, &sim, id("kelly.grace"));
        let gene = ctx.score_single(sn, &sim, id("kelly.gene"));
        let emmett = ctx.score_single(sn, &sim, id("kelly.emmett"));
        assert!(grace >= gene, "{grace} < {gene}");
        assert!(grace > emmett, "{grace} <= {emmett}");
    }

    #[test]
    fn scores_bounded() {
        let t = tree("<movies><movie><genre>mystery</genre><star>Kelly</star></movie></movies>");
        let sn = mini_wordnet();
        let sim = CombinedSimilarity::default();
        for node in t.preorder() {
            if let SenseCandidates::Single(senses) =
                disambiguation_candidates(sn, t.label(node), t.node(node).kind)
            {
                let ctx = ConceptContext::build(sn, &t, node, 2);
                for s in senses {
                    let score = ctx.score_single(sn, &sim, s);
                    assert!((0.0..=1.0).contains(&score));
                }
            }
        }
    }

    #[test]
    fn empty_context_scores_zero() {
        let t = tree("<star/>");
        let sn = mini_wordnet();
        let ctx = ConceptContext::build(sn, &t, t.root(), 2);
        let sim = CombinedSimilarity::default();
        assert_eq!(ctx.score_single(sn, &sim, id("star.performer")), 0.0);
    }

    #[test]
    fn pair_score_averages_token_evidence() {
        // Compound target "star picture" in a movie context: the pair
        // (performer, movie) should beat (celestial, mental-image).
        let t = tree("<films><star_picture/><cast/><actor/></films>");
        let sn = mini_wordnet();
        let target = find(&t, "star picture");
        let ctx = ConceptContext::build(sn, &t, target, 2);
        let sim = CombinedSimilarity::default();
        let coherent = ctx.score_pair(sn, &sim, id("star.performer"), id("film.movie"));
        let incoherent = ctx.score_pair(sn, &sim, id("star.celestial"), id("picture.mental"));
        assert!(coherent > incoherent, "{coherent} <= {incoherent}");
    }

    #[test]
    fn definition8_denominator_counts_the_center() {
        // Regression for the |S_d(x)| convention fix: Definition 8 divides
        // by the sphere cardinality, and per Definition 5 the sphere
        // includes ring R_0 = {x} — the same center-inclusive convention
        // the context vectors pin with Figure 7's V_1. With a single
        // context node the denominator is therefore 2, not 1.
        let t = tree("<cast><star/></cast>");
        let sn = mini_wordnet();
        let cast = t.root();
        let ctx = ConceptContext::build(sn, &t, cast, 1);
        let sim = CombinedSimilarity::default();
        let candidate = id("cast.actors");
        // Reproduce the numerator by hand: one entry ("star"), whose best
        // sense similarity is maxed over star's senses, weighted by the
        // context vector's "star" coordinate.
        let vector = xml_context_vector(&t, cast, 1);
        let star_weight = vector.get("star");
        assert!(star_weight > 0.0);
        let best: f64 = sn
            .senses("star")
            .iter()
            .map(|&s| sim.similarity(sn, candidate, s))
            .fold(0.0, f64::max);
        let expected = (best * star_weight) / 2.0;
        let got = ctx.score_single(sn, &sim, candidate);
        assert!(
            (got - expected).abs() < 1e-12,
            "Definition 8 denominator must be |S_1(cast)| = 2: got {got}, expected {expected}"
        );
    }

    #[test]
    fn bounded_scoring_matches_unbounded_when_never_abandoning() {
        let t = tree(
            "<films><picture><cast><star>Stewart</star><star>Kelly</star></cast><plot/></picture></films>",
        );
        let sn = mini_wordnet();
        let cast = find(&t, "cast");
        let ctx = ConceptContext::build(sn, &t, cast, 2);
        let sim = CombinedSimilarity::default();
        let suffix = ctx.suffix_weight_sums();
        assert_eq!(suffix.len(), ctx.informative_nodes() + 1);
        assert_eq!(*suffix.last().unwrap(), 0.0);
        for key in ["cast.actors", "cast.mold", "cast.throw"] {
            let plain = ctx.score_single(sn, &sim, id(key));
            let bounded = ctx
                .score_single_bounded(sn, &sim, id(key), &suffix, &mut |_| false)
                .unwrap();
            // Bit-identical, not just approximately equal: the pruned
            // path must reuse the exact summation of the unpruned one.
            assert_eq!(plain.to_bits(), bounded.to_bits(), "{key}");
        }
    }

    #[test]
    fn bounded_pair_scoring_matches_unbounded() {
        let t = tree("<films><star_picture/><cast/><actor/></films>");
        let sn = mini_wordnet();
        let target = find(&t, "star picture");
        let ctx = ConceptContext::build(sn, &t, target, 2);
        let sim = CombinedSimilarity::default();
        let suffix = ctx.suffix_weight_sums();
        let plain = ctx.score_pair(sn, &sim, id("star.performer"), id("film.movie"));
        let bounded = ctx
            .score_pair_bounded(
                sn,
                &sim,
                id("star.performer"),
                id("film.movie"),
                &suffix,
                &mut |_| false,
            )
            .unwrap();
        assert_eq!(plain.to_bits(), bounded.to_bits());
    }

    #[test]
    fn bounds_are_sound_and_abandonment_fires() {
        let t = tree(
            "<films><picture><cast><star>Stewart</star><star>Kelly</star></cast><plot/></picture></films>",
        );
        let sn = mini_wordnet();
        let cast = find(&t, "cast");
        let ctx = ConceptContext::build(sn, &t, cast, 2);
        let sim = CombinedSimilarity::default();
        let suffix = ctx.suffix_weight_sums();
        let candidate = id("cast.actors");
        let score = ctx.score_single(sn, &sim, candidate);
        // Every running bound offered to the closure must dominate the
        // final score (soundness of the branch-and-bound invariant).
        let mut bounds = Vec::new();
        let result = ctx.score_single_bounded(sn, &sim, candidate, &suffix, &mut |b| {
            bounds.push(b);
            false
        });
        assert_eq!(result.unwrap().to_bits(), score.to_bits());
        assert!(!bounds.is_empty());
        for b in &bounds {
            assert!(*b >= score, "bound {b} < final score {score}");
            assert!(*b <= ctx.max_concept_score() + 1e-12);
        }
        // An always-abandon closure stops on the first bound.
        let mut calls = 0;
        let pruned = ctx.score_single_bounded(sn, &sim, candidate, &suffix, &mut |_| {
            calls += 1;
            true
        });
        assert_eq!(pruned, None);
        assert_eq!(calls, 1);
    }

    #[test]
    fn context_senses_cover_both_compound_sides() {
        let t = tree("<films><star_picture/><cast/></films>");
        let sn = mini_wordnet();
        let target = find(&t, "cast");
        let ctx = ConceptContext::build(sn, &t, target, 2);
        let senses = ctx.context_senses();
        // Sorted, deduplicated, and containing senses of both "star" and
        // "picture" (the compound sides) plus "films".
        assert!(senses.windows(2).all(|w| w[0] < w[1]));
        assert!(senses.contains(&id("star.performer")));
        assert!(senses.contains(&id("picture.image")));
    }

    #[test]
    fn richer_context_produces_nonzero_scores() {
        let t = tree("<cast><star>Kelly</star></cast>");
        let sn = mini_wordnet();
        let ctx = ConceptContext::build(sn, &t, t.root(), 2);
        assert!(ctx.informative_nodes() >= 2);
        let sim = CombinedSimilarity::default();
        assert!(ctx.score_single(sn, &sim, id("cast.actors")) > 0.0);
    }
}
