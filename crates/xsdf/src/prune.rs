//! Candidate-space pruning for the scoring loop (ROADMAP item: make the
//! disambiguator skip hopeless senses instead of scoring every one).
//!
//! Definition 8 / Equation 10 scoring is quadratic in candidate senses per
//! sphere: every candidate pays one combined-similarity evaluation per
//! context sense even when it is mathematically out of the race. This
//! module provides three composable pruning levels, all **off by default**:
//!
//! * **Level (a) — exact early-exit** ([`PruningConfig::early_exit`]):
//!   per-entry contributions to the concept score are bounded
//!   (`max_sim ≤ 1`, context-vector weights known up front), so the scorer
//!   keeps a running upper bound per candidate and abandons a candidate the
//!   moment its bound falls below the current leader, plus stops the whole
//!   loop once the leader is uncatchable. Provably identical results — see
//!   the bound derivation below and DESIGN.md "Candidate pruning".
//! * **Level (b) — density pre-score** ([`PruningConfig::density_top_k`]):
//!   a cheap conceptual-density-style screen (shared-neighbor and
//!   token-set-overlap counts over [`semnet::GlossArtifacts`] sorted sets,
//!   in the spirit of Agirre & Rigau's conceptual density) ranks candidates
//!   before Definition 8/10 scoring and keeps only the top *K*. Deviations
//!   are possible (the screen is a heuristic) but bounded and
//!   deterministic: survivors keep their original scan order, so the kept
//!   candidates score bit-identically to an unpruned run restricted to the
//!   same set.
//! * **Level (c) — budgeted mode** ([`PruningConfig::budgeted`] +
//!   [`PruningConfig::bound_slack`]): *K* is additionally derived from the
//!   [`crate::guard::Guard`]'s remaining sense-pair budget (the candidate
//!   set shrinks to what the budget can afford instead of tripping
//!   mid-loop), and `bound_slack` widens the early-exit margin so
//!   candidates within the slack of the leader's reachable bound are
//!   dropped too (inexact when > 0).
//!
//! # Exactness of the level-(a) bound
//!
//! For a candidate with concept score
//! `c = clamp((Σ_i m_i·w_i) / card, 0, 1)` where every `m_i ∈ [0, 1]` and
//! `w_i ≥ 0`, the partial sum after `i` entries plus the remaining weight
//! mass `S_i = Σ_{j≥i} w_j` gives `ub_c = min(1, (partial_i + S_i)/card)
//! ≥ c`. The combined score `w_concept·c + w_context·x` (with the context
//! score `x ∈ [0, 1]` computed first, exactly as the unpruned path would)
//! is therefore bounded by `w_concept·ub_c + w_context·x`. Because the
//! pipeline keeps the **first** maximum on ties, a challenger must score
//! *strictly* above the leader, so abandoning when
//! `bound + PRUNE_SLACK ≤ leader` can never change the winner.
//! [`PRUNE_SLACK`] absorbs floating-point drift: survivors reuse the exact
//! left-to-right summation of the unpruned scorer (bit-identical scores),
//! and the bound's own drift is far below the slack (see its docs).

use semnet::{ConceptId, SemanticNetwork};

/// Absolute slack added to every level-(a) upper bound before comparing
/// against the leader, so floating-point drift in the bound can never turn
/// an exact prune into a wrong one.
///
/// Derivation: context-vector coordinates are products of a structural
/// factor in `(0, 1]` and the scale `2/(|S|+1)`, so a single entry weight
/// is `< 2` and a partial/suffix sum over `n` entries is `< 2n`. Naive
/// summation error is below `n·u·2n` (`u ≈ 1.1e-16`), and the subsequent
/// division by `card ≥ n + 1` rescales it to `< 2n·u` — about `2e-10`
/// even for a pathological sphere of a million informative entries, two
/// orders of magnitude under this slack. The cost of the slack is at most
/// one extra (correctly kept) candidate evaluation per hair-thin margin.
pub const PRUNE_SLACK: f64 = 1e-9;

/// Opt-in candidate pruning configuration, threaded through
/// [`crate::XsdfConfig::prune`]. The default ([`PruningConfig::off`])
/// disables every level and reproduces the historical scoring loop
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PruningConfig {
    /// Level (a): exact branch-and-bound early exit. Result-identical by
    /// construction (and proven so by the conformance differential
    /// oracle); safe to leave on whenever pruning is wanted at all.
    pub early_exit: bool,
    /// Level (b): keep only the top-K candidates of the density
    /// pre-score before full scoring. `0` disables the screen. Inexact
    /// (the screen is a heuristic) but deterministic.
    pub density_top_k: usize,
    /// Level (c): extra margin on the early-exit bound — candidates whose
    /// reachable bound is within `bound_slack` of the leader are abandoned
    /// too. `0.0` keeps level (a) exact; values `> 0` trade accuracy for
    /// speed. Negative values are treated as `0.0`.
    pub bound_slack: f64,
    /// Level (c): derive an additional top-K from the guard's remaining
    /// sense-pair budget, so a budgeted document degrades into scoring its
    /// densest candidates instead of tripping
    /// [`crate::guard::LimitKind::SensePairs`] mid-target.
    pub budgeted: bool,
}

impl PruningConfig {
    /// Every level disabled (the default): the scoring loop is untouched.
    pub fn off() -> Self {
        Self::default()
    }

    /// Level (a) only: exact early-exit, provably identical results.
    pub fn exact() -> Self {
        Self {
            early_exit: true,
            ..Self::default()
        }
    }

    /// Levels (a) + (b): exact early-exit plus the density screen keeping
    /// the top `k` candidates.
    pub fn density(k: usize) -> Self {
        Self {
            early_exit: true,
            density_top_k: k,
            ..Self::default()
        }
    }

    /// Whether any level is active.
    pub fn is_enabled(&self) -> bool {
        self.early_exit || self.density_top_k > 0 || self.budgeted
    }

    /// Whether the active configuration is provably result-identical to
    /// unpruned scoring (level (a) alone, with no slack).
    pub fn is_exact(&self) -> bool {
        self.density_top_k == 0 && !self.budgeted && self.bound_slack <= 0.0
    }

    /// The effective slack for early-exit comparisons: the exactness
    /// guard [`PRUNE_SLACK`] plus any caller-requested
    /// [`PruningConfig::bound_slack`].
    pub fn slack(&self) -> f64 {
        PRUNE_SLACK + self.bound_slack.max(0.0)
    }

    /// Parses the CLI/server pruning spec: a comma-separated list of
    /// `off`, `exact`, `topk:<K>`, `budget`, and `slack:<float>`.
    /// `topk`, `budget`, and `slack` imply `exact` (the levels compose;
    /// level (a) never hurts). `off` must stand alone.
    ///
    /// ```
    /// use xsdf::prune::PruningConfig;
    /// assert_eq!(PruningConfig::parse("off").unwrap(), PruningConfig::off());
    /// assert_eq!(PruningConfig::parse("exact").unwrap(), PruningConfig::exact());
    /// let p = PruningConfig::parse("exact,topk:8,budget,slack:0.05").unwrap();
    /// assert!(p.early_exit && p.budgeted);
    /// assert_eq!(p.density_top_k, 8);
    /// assert!((p.bound_slack - 0.05).abs() < 1e-12);
    /// assert!(PruningConfig::parse("topk:0").is_err());
    /// ```
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut config = Self::off();
        let mut saw_off = false;
        let mut saw_level = false;
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match token {
                "off" => saw_off = true,
                "exact" => {
                    config.early_exit = true;
                    saw_level = true;
                }
                "budget" => {
                    config.early_exit = true;
                    config.budgeted = true;
                    saw_level = true;
                }
                _ => {
                    if let Some(k) = token.strip_prefix("topk:") {
                        let k: usize = k
                            .parse()
                            .map_err(|_| format!("bad prune topk value {k:?}"))?;
                        if k == 0 {
                            return Err("prune topk must be at least 1".into());
                        }
                        config.early_exit = true;
                        config.density_top_k = k;
                        saw_level = true;
                    } else if let Some(s) = token.strip_prefix("slack:") {
                        let s: f64 = s
                            .parse()
                            .map_err(|_| format!("bad prune slack value {s:?}"))?;
                        if !(0.0..=1.0).contains(&s) {
                            return Err(format!("prune slack {s} outside [0, 1]"));
                        }
                        config.early_exit = true;
                        config.bound_slack = s;
                        saw_level = true;
                    } else {
                        return Err(format!(
                            "bad prune level {token:?} (expected off, exact, topk:<K>, \
                             budget, or slack:<float>)"
                        ));
                    }
                }
            }
        }
        if saw_off && saw_level {
            return Err("prune level \"off\" cannot combine with other levels".into());
        }
        Ok(config)
    }
}

/// The density pre-score of one candidate against the target's context
/// senses: shared-neighbor counts plus token-set overlaps over the
/// network's precomputed sorted sets. Integer, cheap (two sorted merges
/// per context sense), and a monotone proxy for how much evidence full
/// Definition 8/10 scoring could find.
pub fn density_score(sn: &SemanticNetwork, candidate: ConceptId, context: &[ConceptId]) -> u64 {
    let art = sn.gloss_artifacts();
    let mut score = 0u64;
    for &ctx in context {
        if ctx == candidate {
            continue;
        }
        score += art.shared_neighbors(candidate, ctx).len() as u64;
        score += u64::from(art.token_sets_intersect(candidate, ctx));
    }
    score
}

/// Ranks `candidates` by density pre-score and returns a keep-mask with
/// exactly `min(k, len)` `true` slots, in the candidates' **original
/// order** (survivors are scored in the same sequence — and hence with the
/// same floating-point summation — as an unpruned run over the same set).
/// Ties keep the earlier candidate, matching the pipeline's keep-first
/// contract.
pub fn density_keep_mask(
    sn: &SemanticNetwork,
    candidates: &[ConceptId],
    context: &[ConceptId],
    k: usize,
) -> Vec<bool> {
    if k >= candidates.len() {
        return vec![true; candidates.len()];
    }
    let mut ranked: Vec<(usize, u64)> = candidates
        .iter()
        .enumerate()
        .map(|(i, &c)| (i, density_score(sn, c, context)))
        .collect();
    // Highest density first; ties broken by original index ascending so
    // the screen is deterministic and favors the keep-first winner.
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut keep = vec![false; candidates.len()];
    for &(i, _) in ranked.iter().take(k.max(1)) {
        keep[i] = true;
    }
    keep
}

/// The per-side cap for compound pair screening: keeping `⌈√K⌉` senses of
/// each token bounds the pair count near `K` while screening each side
/// independently (pair-by-pair ranking would cost as much as scoring).
pub fn compound_side_cap(k: usize) -> usize {
    ((k as f64).sqrt().ceil() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    fn id(key: &str) -> ConceptId {
        mini_wordnet().by_key(key).unwrap()
    }

    #[test]
    fn default_is_off_and_exact_levels_report_exactness() {
        let off = PruningConfig::default();
        assert!(!off.is_enabled());
        assert_eq!(off, PruningConfig::off());
        assert!(PruningConfig::exact().is_enabled());
        assert!(PruningConfig::exact().is_exact());
        assert!(!PruningConfig::density(4).is_exact());
        assert!(!PruningConfig {
            bound_slack: 0.1,
            ..PruningConfig::exact()
        }
        .is_exact());
        assert!(!PruningConfig {
            budgeted: true,
            ..PruningConfig::exact()
        }
        .is_exact());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "fast",
            "topk:",
            "topk:-1",
            "topk:zero",
            "slack:2.0",
            "slack:-0.1",
            "slack:wat",
            "off,exact",
            "exact,off",
        ] {
            assert!(PruningConfig::parse(bad).is_err(), "{bad:?} must fail");
        }
        // Empty and whitespace specs mean "no change requested" → off.
        assert_eq!(PruningConfig::parse("").unwrap(), PruningConfig::off());
        assert_eq!(PruningConfig::parse(" , ").unwrap(), PruningConfig::off());
    }

    #[test]
    fn slack_composes_with_the_exactness_guard() {
        assert_eq!(PruningConfig::exact().slack(), PRUNE_SLACK);
        let p = PruningConfig {
            bound_slack: 0.25,
            ..PruningConfig::exact()
        };
        assert!((p.slack() - (PRUNE_SLACK + 0.25)).abs() < 1e-15);
        let negative = PruningConfig {
            bound_slack: -1.0,
            ..PruningConfig::exact()
        };
        assert_eq!(negative.slack(), PRUNE_SLACK);
    }

    #[test]
    fn density_prefers_related_candidates() {
        let sn = mini_wordnet();
        // In a movie context, the actors sense of "cast" shares far more
        // neighborhood with star/picture than the mold sense does.
        let context = [id("star.performer"), id("film.movie"), id("kelly.grace")];
        let related = density_score(sn, id("cast.actors"), &context);
        let unrelated = density_score(sn, id("cast.mold"), &context);
        assert!(related > unrelated, "{related} <= {unrelated}");
    }

    #[test]
    fn keep_mask_preserves_original_order_and_size() {
        let sn = mini_wordnet();
        let candidates = [
            id("cast.mold"),
            id("cast.actors"),
            id("cast.throw"),
            id("cast.plaster"),
        ];
        let context = [id("star.performer"), id("film.movie")];
        let keep = density_keep_mask(sn, &candidates, &context, 2);
        assert_eq!(keep.len(), candidates.len());
        assert_eq!(keep.iter().filter(|&&k| k).count(), 2);
        // The coherent sense must survive a K=2 screen in this context.
        assert!(keep[1], "cast.actors must be kept: {keep:?}");
        // K >= len keeps everything.
        let all = density_keep_mask(sn, &candidates, &context, 4);
        assert!(all.iter().all(|&k| k));
    }

    #[test]
    fn keep_mask_breaks_ties_toward_earlier_candidates() {
        let sn = mini_wordnet();
        // Empty context: every candidate scores 0 — the screen must keep
        // the first K, mirroring the pipeline's keep-first contract.
        let candidates = [id("cast.mold"), id("cast.actors"), id("cast.throw")];
        let keep = density_keep_mask(sn, &candidates, &[], 2);
        assert_eq!(keep, vec![true, true, false]);
    }

    #[test]
    fn compound_cap_is_near_sqrt() {
        assert_eq!(compound_side_cap(1), 1);
        assert_eq!(compound_side_cap(4), 2);
        assert_eq!(compound_side_cap(5), 3);
        assert_eq!(compound_side_cap(9), 3);
        assert_eq!(compound_side_cap(0), 1);
    }
}
