//! User-tunable configuration of the XSDF pipeline (the "user parameters"
//! input of Figure 3; answering the paper's Motivation 4).

use semsim::SimilarityWeights;
use xmltree::distance::DistancePolicy;

/// The vector similarity used by context-based disambiguation. The paper
/// adopts cosine "since it is widely used in IR", noting that "other
/// vector similarity measures can be used, e.g., Jaccard, Pearson corr.
/// coeff." (footnote 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VectorSimilarity {
    /// Cosine similarity (the paper's Definition 10).
    #[default]
    Cosine,
    /// Weighted Jaccard similarity.
    Jaccard,
    /// Pearson correlation `r ∈ \[-1, 1\]`, rescaled to `\[0, 1\]` as
    /// `(r + 1) / 2` so anti-correlated candidates stay ordered instead of
    /// collapsing into indistinguishable ties at 0 (a deviation from a
    /// naive clamp; see DESIGN.md on footnote 10).
    Pearson,
}

impl VectorSimilarity {
    /// Applies the measure to two sparse vectors, mapped into `\[0, 1\]`.
    ///
    /// A zero or empty vector (a lemma-less candidate sense, or a sphere
    /// whose labels all normalized away) carries no context evidence, so
    /// every measure returns exactly 0.0 for it. The explicit guard matters
    /// for Pearson: its degenerate correlation is 0, which the affine
    /// rescale below would otherwise map to 0.5 — ranking a no-evidence
    /// candidate above genuinely anti-correlated ones.
    pub fn apply(self, a: &semsim::SparseVector, b: &semsim::SparseVector) -> f64 {
        if a.norm() == 0.0 || b.norm() == 0.0 {
            return 0.0;
        }
        match self {
            Self::Cosine => a.cosine(b).clamp(0.0, 1.0),
            Self::Jaccard => a.jaccard(b),
            // An affine rescale is strictly monotone over the full [-1, 1]
            // range: every ordering Pearson produces is preserved, whereas
            // clamping mapped all anti-correlated pairs to the same 0.
            Self::Pearson => (a.pearson(b) + 1.0) / 2.0,
        }
    }
}

/// Weights of the three ambiguity factors of Definition 3
/// (`w_Polysemy`, `w_Depth`, `w_Density` ∈ \[0, 1\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmbiguityWeights {
    /// Weight of the polysemy factor (Proposition 1).
    pub polysemy: f64,
    /// Weight of the depth factor (Proposition 2).
    pub depth: f64,
    /// Weight of the density factor (Proposition 3).
    pub density: f64,
}

impl AmbiguityWeights {
    /// Creates a weight triple, clamping each into `\[0, 1\]` per Definition 3.
    pub fn new(polysemy: f64, depth: f64, density: f64) -> Self {
        Self {
            polysemy: polysemy.clamp(0.0, 1.0),
            depth: depth.clamp(0.0, 1.0),
            density: density.clamp(0.0, 1.0),
        }
    }

    /// The paper's sensible starting choice: all factors fully weighted
    /// (`w_Polysemy = w_Depth = w_Density = 1`, Section 3.3 / Test #1).
    pub fn equal() -> Self {
        Self {
            polysemy: 1.0,
            depth: 1.0,
            density: 1.0,
        }
    }

    /// Table 2's Test #2: polysemy only.
    pub fn polysemy_only() -> Self {
        Self {
            polysemy: 1.0,
            depth: 0.0,
            density: 0.0,
        }
    }

    /// Table 2's Test #3: depth focus (`w_Depth = 1`, `w_Polysemy = 0.2`).
    pub fn depth_focus() -> Self {
        Self {
            polysemy: 0.2,
            depth: 1.0,
            density: 0.0,
        }
    }

    /// Table 2's Test #4: density focus (`w_Density = 1`, `w_Polysemy = 0.2`).
    pub fn density_focus() -> Self {
        Self {
            polysemy: 0.2,
            depth: 0.0,
            density: 1.0,
        }
    }
}

impl Default for AmbiguityWeights {
    fn default() -> Self {
        Self::equal()
    }
}

/// How the ambiguity threshold `Thresh_Amb` is chosen (Section 3.3: "an
/// ambiguity threshold automatically estimated or set by the user").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// A fixed threshold in `\[0, 1\]`; 0 selects every node.
    Fixed(f64),
    /// Automatic estimation: the mean ambiguity degree over nodes with at
    /// least one candidate sense. Nodes above the corpus-typical ambiguity
    /// are selected.
    Auto,
}

impl Default for ThresholdPolicy {
    fn default() -> Self {
        // The paper's "minimal threshold Thresh_Amb = 0 to consider all
        // results initially".
        Self::Fixed(0.0)
    }
}

/// Which disambiguation process runs (Section 3.5).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DisambiguationProcess {
    /// Concept-based only (Definition 8).
    #[default]
    ConceptBased,
    /// Context-based only (Definition 10).
    ContextBased,
    /// The weighted combination of Equation 13; weights are normalized to
    /// sum to 1.
    Combined {
        /// `w_Concept` of Equation 13.
        concept: f64,
        /// `w_Context` of Equation 13.
        context: f64,
    },
}

impl DisambiguationProcess {
    /// The `(w_Concept, w_Context)` weights this process effectively uses.
    pub fn weights(self) -> (f64, f64) {
        match self {
            Self::ConceptBased => (1.0, 0.0),
            Self::ContextBased => (0.0, 1.0),
            Self::Combined { concept, context } => {
                let c = concept.max(0.0);
                let x = context.max(0.0);
                let sum = c + x;
                if sum <= 0.0 {
                    (0.5, 0.5)
                } else {
                    (c / sum, x / sum)
                }
            }
        }
    }
}

/// Full configuration of a [`crate::Xsdf`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct XsdfConfig {
    /// Ambiguity-factor weights (Definition 3).
    pub ambiguity_weights: AmbiguityWeights,
    /// Target-selection threshold policy.
    pub threshold: ThresholdPolicy,
    /// Sphere neighborhood radius `d` (Definition 5). The paper's optimum
    /// is `d = 1` for highly ambiguous / richly structured data and `d = 3`
    /// for the rest (Section 4.3.1).
    pub radius: u32,
    /// Concept-based vs context-based vs combined (Section 3.5).
    pub process: DisambiguationProcess,
    /// Weights of the constituent semantic similarity measures
    /// (Definition 9); the paper's tests use equal thirds.
    pub similarity: SimilarityWeights,
    /// Include element/attribute text values as tree nodes
    /// (*structure-and-content*, the paper's recommended mode) or not
    /// (*structure-only*).
    pub structure_and_content: bool,
    /// Minimum winning score: a target is annotated only if its best
    /// sense scores strictly above this (0 keeps every best sense that has
    /// any evidence at all).
    pub min_score: f64,
    /// Vector similarity for the context-based process (footnote 10).
    pub vector_similarity: VectorSimilarity,
    /// Tree node distance function for sphere construction. The paper uses
    /// plain edge counts and names weighted, directional, and
    /// density-based distances as future work (Section 5); all three are
    /// available here.
    pub distance: DistancePolicy,
    /// Resolve ID/IDREF hyperlinks into traversal edges, turning
    /// disambiguation contexts from trees into graphs (the paper's
    /// "trees (or graphs, when hyperlinks come to play)", Section 1).
    pub resolve_hyperlinks: bool,
    /// Candidate-space pruning for the scoring loop (off by default; see
    /// [`crate::prune`] for the three levels and their exactness
    /// guarantees).
    pub prune: crate::prune::PruningConfig,
}

impl Default for XsdfConfig {
    fn default() -> Self {
        Self {
            ambiguity_weights: AmbiguityWeights::equal(),
            threshold: ThresholdPolicy::default(),
            radius: 2,
            process: DisambiguationProcess::default(),
            similarity: SimilarityWeights::equal(),
            structure_and_content: true,
            min_score: 0.0,
            vector_similarity: VectorSimilarity::default(),
            distance: DistancePolicy::EdgeCount,
            resolve_hyperlinks: true,
            prune: crate::prune::PruningConfig::off(),
        }
    }
}

impl XsdfConfig {
    /// The configuration the paper found optimal for highly ambiguous,
    /// richly structured documents (Group 1): radius 1, concept-based.
    pub fn optimal_rich() -> Self {
        Self {
            radius: 1,
            process: DisambiguationProcess::ConceptBased,
            ..Self::default()
        }
    }

    /// The configuration the paper found optimal for less ambiguous or
    /// poorly structured documents (Groups 2–4): radius 3, concept-based.
    pub fn optimal_flat() -> Self {
        Self {
            radius: 3,
            process: DisambiguationProcess::ConceptBased,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambiguity_weights_clamped() {
        let w = AmbiguityWeights::new(2.0, -1.0, 0.5);
        assert_eq!(w.polysemy, 1.0);
        assert_eq!(w.depth, 0.0);
        assert_eq!(w.density, 0.5);
    }

    #[test]
    fn process_weights_normalize() {
        let (c, x) = DisambiguationProcess::Combined {
            concept: 3.0,
            context: 1.0,
        }
        .weights();
        assert!((c - 0.75).abs() < 1e-12);
        assert!((x - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_combined_falls_back_to_half() {
        let (c, x) = DisambiguationProcess::Combined {
            concept: 0.0,
            context: 0.0,
        }
        .weights();
        assert_eq!((c, x), (0.5, 0.5));
    }

    #[test]
    fn pure_processes() {
        assert_eq!(DisambiguationProcess::ConceptBased.weights(), (1.0, 0.0));
        assert_eq!(DisambiguationProcess::ContextBased.weights(), (0.0, 1.0));
    }

    #[test]
    fn vector_similarity_measures_apply() {
        let a = semsim::SparseVector::from_pairs([("x", 1.0), ("y", 2.0)]);
        let b = semsim::SparseVector::from_pairs([("x", 1.0), ("y", 2.0)]);
        for m in [
            VectorSimilarity::Cosine,
            VectorSimilarity::Jaccard,
            VectorSimilarity::Pearson,
        ] {
            let v = m.apply(&a, &b);
            assert!((0.0..=1.0).contains(&v), "{m:?}: {v}");
        }
        assert!((VectorSimilarity::Cosine.apply(&a, &b) - 1.0).abs() < 1e-12);
        assert!((VectorSimilarity::Jaccard.apply(&a, &b) - 1.0).abs() < 1e-12);
        assert!((VectorSimilarity::Pearson.apply(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_rescale_keeps_anticorrelated_candidates_ordered() {
        // Regression test for the tie collapse: under a [-1,1] → [0,1]
        // clamp, every anti-correlated candidate scored exactly 0 and the
        // ranking lost all resolution below r = 0. The affine rescale keeps
        // them distinct and ordered by r.
        let target = semsim::SparseVector::from_pairs([("x", 3.0), ("y", 2.0), ("z", 1.0)]);
        let strongly_anti = semsim::SparseVector::from_pairs([("x", 1.0), ("y", 2.0), ("z", 3.0)]);
        let weakly_anti = semsim::SparseVector::from_pairs([("x", 1.0), ("y", 3.0), ("z", 2.0)]);
        let r_strong = target.pearson(&strongly_anti);
        let r_weak = target.pearson(&weakly_anti);
        assert!(r_strong < 0.0 && r_weak < 0.0, "{r_strong}, {r_weak}");
        assert!(r_strong < r_weak);
        let s_strong = VectorSimilarity::Pearson.apply(&target, &strongly_anti);
        let s_weak = VectorSimilarity::Pearson.apply(&target, &weakly_anti);
        // Both in range, distinct, and ordered consistently with r.
        assert!((0.0..=1.0).contains(&s_strong));
        assert!((0.0..=1.0).contains(&s_weak));
        assert!(s_strong < s_weak, "{s_strong} >= {s_weak}");
        // The exact map is (r + 1) / 2.
        assert!((s_strong - (r_strong + 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_vectors_score_zero_under_every_measure() {
        // Regression for the zero-vector guard: Pearson's rescale used to
        // map empty-vs-anything to (0 + 1)/2 = 0.5. All measures must agree
        // that a vector with no evidence scores exactly 0.0.
        let empty = semsim::SparseVector::new();
        let zero = semsim::SparseVector::from_pairs([("x", 0.0)]);
        let real = semsim::SparseVector::from_pairs([("x", 1.0), ("y", 2.0)]);
        for m in [
            VectorSimilarity::Cosine,
            VectorSimilarity::Jaccard,
            VectorSimilarity::Pearson,
        ] {
            assert_eq!(m.apply(&empty, &real), 0.0, "{m:?} empty/real");
            assert_eq!(m.apply(&real, &empty), 0.0, "{m:?} real/empty");
            assert_eq!(m.apply(&empty, &empty), 0.0, "{m:?} empty/empty");
            assert_eq!(m.apply(&zero, &real), 0.0, "{m:?} zero/real");
        }
    }

    #[test]
    fn default_config_is_paper_starting_point() {
        let c = XsdfConfig::default();
        assert_eq!(c.ambiguity_weights, AmbiguityWeights::equal());
        assert_eq!(c.threshold, ThresholdPolicy::Fixed(0.0));
        assert!(c.structure_and_content);
    }

    #[test]
    fn optimal_presets_match_section_431() {
        assert_eq!(XsdfConfig::optimal_rich().radius, 1);
        assert_eq!(XsdfConfig::optimal_flat().radius, 3);
    }
}
