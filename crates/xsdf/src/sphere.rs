//! Sphere neighborhoods and context vectors (Section 3.4).
//!
//! An XML context vector (Definitions 6–7) has one dimension per distinct
//! node label in the sphere `S_d(x)`, weighted by structural frequency:
//!
//! ```text
//! Struct(x_i) = 1 − Dist(x, x_i)/(d + 1)
//! Freq(ℓ)    = Σ Struct(x_i)  over x_i with label ℓ
//! w(ℓ)       = 2·Freq(ℓ) / (|S_d(x)| + 1)
//! ```
//!
//! Per Definition 5 the sphere is the union of rings `R_d' (d' ≤ d)`, which
//! includes the degenerate ring `R_0 = {x}`: the target's own label is a
//! dimension with `Struct = 1`. This convention reproduces the paper's
//! Figure 7 vector `V_1(T\[2\])` exactly (cast 0.4 / picture 0.2 / star 0.4).
//! (The figure's `V_2` values were computed with the center excluded from
//! the cardinality — an internal inconsistency of the figure; we follow the
//! definitions.)
//!
//! The same construction applies to a concept in the semantic network
//! (Section 3.5.2), with rings built from semantic relations instead of
//! structural edges, and every lemma of a concept contributing to its
//! dimension (concept labels are linguistically pre-processed, footnote 9).

use std::sync::Arc;

use semnet::graph::{concept_sphere, RelationFilter};
use semnet::{ConceptId, SemanticNetwork};
use semsim::{SimilarityCache, SparseVector, VectorKey};
use xmltree::distance::{sphere, weighted_sphere, DistancePolicy};
use xmltree::{NodeId, XmlTree};

/// The structural proximity factor `Struct(x_i, S_d(x))` of Definition 7.
pub fn struct_factor(dist: u32, radius: u32) -> f64 {
    1.0 - dist as f64 / (radius as f64 + 1.0)
}

/// The weighted-distance generalization of [`struct_factor`]:
/// `1 − cost/(budget + 1)` over a real-valued path cost. For integer
/// costs this is exactly `struct_factor(cost, budget)`. Costs admitted by
/// [`xml_sphere_weighted`] never exceed the budget, so the factor lies in
/// `[1/(budget + 1), 1]` — always positive, never clamped (same contract
/// as the unweighted path).
pub fn struct_factor_weighted(cost: f64, budget: f64) -> f64 {
    1.0 - cost / (budget + 1.0)
}

/// Shared assembly of Definitions 6–7 used by both the unweighted and the
/// weighted XML context vectors: the center's label enters at
/// `Struct = struct_factor(0, radius)` (≡ 1, ring `R_0`), each context
/// node at its precomputed proximity factor, and every contribution is
/// scaled by `2/(|S_d(x)| + 1)` with the center counted in `|S_d(x)|`.
fn assemble_xml_context_vector(
    tree: &XmlTree,
    center: NodeId,
    radius: u32,
    entries: &[(NodeId, f64)],
) -> SparseVector {
    // |S_d(x)| counts the center (ring R_0) plus all context nodes.
    let cardinality = entries.len() as f64 + 1.0;
    let scale = 2.0 / (cardinality + 1.0);
    let mut v = SparseVector::new();
    v.add(
        tree.label(center).to_string(),
        struct_factor(0, radius) * scale,
    );
    for &(node, factor) in entries {
        v.add(tree.label(node).to_string(), factor * scale);
    }
    v
}

/// The sphere neighborhood of an XML node: context nodes with distances,
/// excluding the center itself (callers that need the center's own label
/// add it at distance 0).
pub fn xml_sphere(tree: &XmlTree, center: NodeId, radius: u32) -> Vec<(NodeId, u32)> {
    sphere(tree, center, radius)
}

/// The XML context vector `V_d(x)` of Definitions 6–7, including the
/// center's label at distance 0.
pub fn xml_context_vector(tree: &XmlTree, center: NodeId, radius: u32) -> SparseVector {
    let entries: Vec<(NodeId, f64)> = xml_sphere(tree, center, radius)
        .into_iter()
        .map(|(node, dist)| (node, struct_factor(dist, radius)))
        .collect();
    assemble_xml_context_vector(tree, center, radius, &entries)
}

/// The sphere neighborhood under an alternative [`DistancePolicy`]
/// (Section 5's future-work distances): nodes whose weighted path cost
/// fits the budget `radius`, with their costs.
pub fn xml_sphere_weighted(
    tree: &XmlTree,
    center: NodeId,
    radius: u32,
    policy: DistancePolicy,
) -> Vec<(NodeId, f64)> {
    weighted_sphere(tree, center, radius as f64, policy)
}

/// The weighted-distance generalization of the context vector: identical
/// to [`xml_context_vector`] with `Struct(x_i)` computed by
/// [`struct_factor_weighted`] over weighted path costs. Both paths share
/// one assembly (center at `Struct = 1`, scale `2/(|S| + 1)`, no
/// clamping), so with [`DistancePolicy::EdgeCount`] — where costs are the
/// plain edge counts — it equals [`xml_context_vector`] bit for bit; the
/// shortcut below only skips the Dijkstra walk.
pub fn xml_context_vector_weighted(
    tree: &XmlTree,
    center: NodeId,
    radius: u32,
    policy: DistancePolicy,
) -> SparseVector {
    if policy == DistancePolicy::EdgeCount {
        return xml_context_vector(tree, center, radius);
    }
    let budget = radius as f64;
    let entries: Vec<(NodeId, f64)> = xml_sphere_weighted(tree, center, radius, policy)
        .into_iter()
        .map(|(node, cost)| (node, struct_factor_weighted(cost, budget)))
        .collect();
    assemble_xml_context_vector(tree, center, radius, &entries)
}

/// The semantic-network context vector `V_d(s_p)` of a candidate sense
/// (Section 3.5.2): sphere rings follow semantic relations; each concept in
/// the sphere contributes its weight to the dimension of each of its
/// lemmas.
pub fn concept_context_vector(
    sn: &SemanticNetwork,
    center: ConceptId,
    radius: u32,
    filter: &RelationFilter,
) -> SparseVector {
    let concepts = concept_sphere(sn, center, radius, filter);
    let cardinality = concepts.len() as f64 + 1.0;
    let scale = 2.0 / (cardinality + 1.0);
    let mut v = SparseVector::new();
    let mut add_concept = |c: ConceptId, dist: u32| {
        let w = struct_factor(dist, radius) * scale;
        for lemma in &sn.concept(c).lemmas {
            v.add(lemma.clone(), w);
        }
    };
    add_concept(center, 0);
    for (c, dist) in concepts {
        add_concept(c, dist);
    }
    v
}

/// [`concept_context_vector`] memoized through a [`SimilarityCache`]'s
/// vector table: the vector of a candidate sense is a pure function of
/// `(concept, radius, filter)` over the immutable network, so it is cached
/// under that key ([`VectorKey`], with the filter reduced to its
/// [`RelationFilter::fingerprint`]) and shared across targets, documents,
/// workers and runs.
///
/// Caches that don't implement a vector table (the trait's default) simply
/// always miss, and this degrades to [`concept_context_vector`] plus an
/// `Arc` allocation.
pub fn concept_context_vector_cached<C: SimilarityCache + ?Sized>(
    sn: &SemanticNetwork,
    center: ConceptId,
    radius: u32,
    filter: &RelationFilter,
    cache: &C,
) -> Arc<SparseVector> {
    let key: VectorKey = (center, radius, filter.fingerprint());
    if let Some(v) = cache.lookup_vector(key) {
        return v;
    }
    let v = Arc::new(concept_context_vector(sn, center, radius, filter));
    cache.store_vector(key, Arc::clone(&v));
    v
}

/// The compound-sense context vector `V_d(s_p, s_q)` of Equation 12: built
/// from the union sphere `S_d(s_p) ∪ S_d(s_q)`.
pub fn compound_concept_context_vector(
    sn: &SemanticNetwork,
    first: ConceptId,
    second: ConceptId,
    radius: u32,
    filter: &RelationFilter,
) -> SparseVector {
    let mut all: Vec<(ConceptId, u32)> = vec![(first, 0), (second, 0)];
    all.extend(concept_sphere(sn, first, radius, filter));
    all.extend(concept_sphere(sn, second, radius, filter));
    // Union: keep the minimal distance per concept.
    all.sort_by_key(|&(c, d)| (c, d));
    all.dedup_by_key(|&mut (c, _)| c);
    let cardinality = all.len() as f64;
    let scale = 2.0 / (cardinality + 1.0);
    let mut v = SparseVector::new();
    for (c, dist) in all {
        let w = struct_factor(dist, radius) * scale;
        for lemma in &sn.concept(c).lemmas {
            v.add(lemma.clone(), w);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::senses::LingTokenizer;
    use semnet::mini_wordnet;
    use xmltree::tree::TreeBuilder;

    /// Figure 6's tree with the paper's labels (lowercased by
    /// pre-processing).
    fn figure6_tree() -> XmlTree {
        let doc = xmltree::parse(
            "<Films><Picture><Cast><Star>Stewart</Star><Star>Kelly</Star></Cast><Plot/></Picture></Films>",
        )
        .unwrap();
        TreeBuilder::with_tokenizer(LingTokenizer::new(mini_wordnet()))
            .build(&doc)
            .unwrap()
            .tree
    }

    fn find(t: &XmlTree, label: &str) -> NodeId {
        t.preorder().find(|&id| t.label(id) == label).unwrap()
    }

    #[test]
    fn struct_factor_bounds() {
        // Definition 7: Struct ∈ [1/(d+1), 1].
        assert_eq!(struct_factor(0, 2), 1.0);
        assert!((struct_factor(2, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((struct_factor(1, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn figure7_v1_reproduced_exactly() {
        // V_1(T[2]): cast 0.4, picture 0.2, star 0.4.
        let t = figure6_tree();
        let cast = find(&t, "cast");
        let v = xml_context_vector(&t, cast, 1);
        assert!(
            (v.get("cast") - 0.4).abs() < 1e-9,
            "cast: {}",
            v.get("cast")
        );
        assert!(
            (v.get("picture") - 0.2).abs() < 1e-9,
            "picture: {}",
            v.get("picture")
        );
        assert!(
            (v.get("star") - 0.4).abs() < 1e-9,
            "star: {}",
            v.get("star")
        );
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn figure7_v2_shape_holds() {
        // V_2(T[2]): with the center in the cardinality the absolute values
        // differ from the figure (see module docs), but every ordering
        // relation of Figure 7 must hold: star > cast > picture > film =
        // stewart = kelly = plot > 0. (The root tag "Films" pre-processes
        // to the label "film": it is unknown as-is and stems to a lexicon
        // word, per Section 3.2.)
        let t = figure6_tree();
        let cast = find(&t, "cast");
        let v = xml_context_vector(&t, cast, 2);
        assert_eq!(v.len(), 7);
        assert!(v.get("star") > v.get("cast"));
        assert!(v.get("cast") > v.get("picture"));
        assert!(v.get("picture") > v.get("film"));
        let far = ["film", "stewart", "kelly", "plot"];
        for w in far {
            assert!((v.get(w) - v.get("film")).abs() < 1e-9, "{w}");
            assert!(v.get(w) > 0.0, "{w}");
        }
    }

    #[test]
    fn assumption5_closer_nodes_weigh_more() {
        let t = figure6_tree();
        let cast = find(&t, "cast");
        let v = xml_context_vector(&t, cast, 2);
        // picture (distance 1) outweighs plot (distance 2).
        assert!(v.get("picture") > v.get("plot"));
    }

    #[test]
    fn assumption6_repeated_labels_weigh_more() {
        let t = figure6_tree();
        let cast = find(&t, "cast");
        let v = xml_context_vector(&t, cast, 1);
        // star occurs twice at distance 1, picture once.
        assert!((v.get("star") - 2.0 * v.get("picture")).abs() < 1e-9);
    }

    #[test]
    fn weights_lie_in_unit_interval() {
        let t = figure6_tree();
        for center in t.preorder() {
            for radius in 1..=3 {
                let v = xml_context_vector(&t, center, radius);
                for (label, w) in v.iter() {
                    assert!((0.0..=1.0).contains(&w), "w({label}) = {w} at r={radius}");
                }
            }
        }
    }

    #[test]
    fn weighted_edge_count_matches_unweighted() {
        let t = figure6_tree();
        for center in t.preorder() {
            for radius in 1..=3 {
                let a = xml_context_vector(&t, center, radius);
                let b = xml_context_vector_weighted(&t, center, radius, DistancePolicy::EdgeCount);
                for (label, w) in a.iter() {
                    assert!((w - b.get(label)).abs() < 1e-12, "{label}");
                }
            }
        }
    }

    #[test]
    fn weighted_and_unweighted_assembly_unified() {
        // Regression for the PR 5 reconciliation: the weighted path used to
        // add the center at bare `scale` (skipping the struct factor) and
        // clamp node weights with `.max(0.0)`. Both paths now share one
        // assembly, so a weighted policy whose edge costs are all exactly
        // 1.0 — which does NOT take the EdgeCount shortcut — must reproduce
        // the unweighted vector bit for bit.
        let t = figure6_tree();
        let unit_costs = DistancePolicy::Directional { up: 1.0, down: 1.0 };
        for center in t.preorder() {
            for radius in 1..=3 {
                let a = xml_context_vector(&t, center, radius);
                let b = xml_context_vector_weighted(&t, center, radius, unit_costs);
                assert_eq!(a.len(), b.len(), "center {center:?} r={radius}");
                for (label, w) in a.iter() {
                    assert_eq!(w, b.get(label), "{label} at r={radius}");
                }
            }
        }
    }

    #[test]
    fn weighted_factors_stay_positive_without_clamping() {
        // The sphere admits only costs ≤ budget, so every struct factor is
        // ≥ 1/(budget+1) > 0 by construction — the old `.max(0.0)` clamp was
        // unreachable and is gone.
        let t = figure6_tree();
        let policies = [
            DistancePolicy::Directional { up: 0.3, down: 1.0 },
            DistancePolicy::Directional { up: 1.0, down: 0.5 },
            DistancePolicy::DensityScaled { alpha: 2.0 },
        ];
        for policy in policies {
            for center in t.preorder() {
                for radius in 1..=3 {
                    let budget = radius as f64;
                    for (node, cost) in xml_sphere_weighted(&t, center, radius, policy) {
                        let f = struct_factor_weighted(cost, budget);
                        assert!(f > 0.0, "factor {f} for {node:?} cost {cost}");
                        assert!(f <= 1.0, "factor {f} for {node:?} cost {cost}");
                    }
                    let v = xml_context_vector_weighted(&t, center, radius, policy);
                    for (label, w) in v.iter() {
                        assert!(w > 0.0, "w({label}) = {w}");
                    }
                }
            }
        }
    }

    #[test]
    fn directional_policy_shifts_weight_to_ancestors() {
        let t = figure6_tree();
        let cast = find(&t, "cast");
        let up_cheap = DistancePolicy::Directional { up: 0.3, down: 1.0 };
        let v = xml_context_vector_weighted(&t, cast, 2, up_cheap);
        // films (two upward steps, cost 0.6) now outweighs the distance-2
        // tokens (cost 1.3 via one up + ... actually down steps cost 1.0).
        assert!(
            v.get("film") > v.get("stewart"),
            "{} vs {}",
            v.get("film"),
            v.get("stewart")
        );
    }

    #[test]
    fn concept_vector_contains_own_lemmas() {
        let sn = mini_wordnet();
        let star = sn.by_key("star.performer").unwrap();
        let v = concept_context_vector(sn, star, 1, &RelationFilter::All);
        assert!(v.get("star") > 0.0);
        // Direct hypernym "actor" present at distance 1.
        assert!(v.get("actor") > 0.0);
        assert!(v.get("star") > v.get("actor"));
    }

    #[test]
    fn concept_vector_grows_with_radius() {
        let sn = mini_wordnet();
        let cast = sn.by_key("cast.actors").unwrap();
        let v1 = concept_context_vector(sn, cast, 1, &RelationFilter::All);
        let v2 = concept_context_vector(sn, cast, 2, &RelationFilter::All);
        assert!(v2.len() >= v1.len());
    }

    #[test]
    fn cached_concept_vector_matches_uncached() {
        let sn = mini_wordnet();
        let cache = semsim::LocalCache::new();
        let star = sn.by_key("star.performer").unwrap();
        let fresh = concept_context_vector(sn, star, 2, &RelationFilter::All);
        let first = concept_context_vector_cached(sn, star, 2, &RelationFilter::All, &cache);
        assert_eq!(cache.vectors_len(), 1);
        let second = concept_context_vector_cached(sn, star, 2, &RelationFilter::All, &cache);
        // Second call is served from the table — same allocation.
        assert!(Arc::ptr_eq(&first, &second));
        for (label, w) in fresh.iter() {
            assert_eq!(first.get(label), w, "{label}");
        }
        assert_eq!(first.len(), fresh.len());
        // Different radius is a different entry.
        let r1 = concept_context_vector_cached(sn, star, 1, &RelationFilter::All, &cache);
        assert!(!Arc::ptr_eq(&first, &r1));
        assert_eq!(cache.vectors_len(), 2);
    }

    #[test]
    fn compound_vector_unions_spheres() {
        let sn = mini_wordnet();
        let star = sn.by_key("star.performer").unwrap();
        let pic = sn.by_key("picture.image").unwrap();
        let v = compound_concept_context_vector(sn, star, pic, 1, &RelationFilter::All);
        assert!(v.get("star") > 0.0);
        assert!(v.get("picture") > 0.0);
        // The union must cover both individual neighborhoods' dimensions.
        let v_star = concept_context_vector(sn, star, 1, &RelationFilter::All);
        for (label, _) in v_star.iter() {
            assert!(v.get(label) > 0.0, "missing {label}");
        }
    }

    #[test]
    fn xml_and_concept_vectors_share_space() {
        // The two vector kinds must be comparable by cosine: same label
        // space (lowercase words).
        let t = figure6_tree();
        let cast = find(&t, "cast");
        let xml_v = xml_context_vector(&t, cast, 2);
        let sn = mini_wordnet();
        let cast_actors = sn.by_key("cast.actors").unwrap();
        let sn_v = concept_context_vector(sn, cast_actors, 2, &RelationFilter::All);
        assert!(
            xml_v.cosine(&sn_v) > 0.0,
            "contexts should overlap on cast/star vocabulary"
        );
    }
}
