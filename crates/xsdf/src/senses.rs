//! Sense-candidate resolution: mapping processed node labels to candidate
//! concepts in the semantic network, and the linguistically aware tokenizer
//! that builds XML trees with pre-processed labels (Section 3.2).

use lingproc::{porter_stem, LabelKind, Preprocessor};
use semnet::{ConceptId, SemanticNetwork};
use xmltree::tree::ValueTokenizer;

/// The candidate senses of one node label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SenseCandidates {
    /// The label is unknown to the semantic network: nothing to do.
    Unknown,
    /// A single word (or a compound that matched one concept): candidates
    /// are the senses of that expression.
    Single(Vec<ConceptId>),
    /// An unmatched compound `t1 t2`: one sense pair `(s_p, s_q)` must be
    /// chosen (the special cases of Definitions 8 and 10).
    Compound {
        /// Senses of the first token.
        first: Vec<ConceptId>,
        /// Senses of the second token.
        second: Vec<ConceptId>,
    },
}

impl SenseCandidates {
    /// Number of alternative readings (sense count, or the product of the
    /// two token sense counts for compounds — every combination is one
    /// candidate).
    pub fn candidate_count(&self) -> usize {
        match self {
            Self::Unknown => 0,
            Self::Single(senses) => senses.len(),
            Self::Compound { first, second } => first.len().max(1) * second.len().max(1),
        }
    }

    /// The polysemy figure the ambiguity measure uses: for compounds the
    /// measure averages the two tokens' degrees, so this returns the pair.
    pub fn polysemy(&self) -> (usize, Option<usize>) {
        match self {
            Self::Unknown => (0, None),
            Self::Single(senses) => (senses.len(), None),
            Self::Compound { first, second } => (first.len(), Some(second.len())),
        }
    }
}

/// Resolves the candidate senses of a processed tree-node label.
///
/// Labels come out of [`LingTokenizer`] in one of two shapes: a single
/// token (possibly a multi-word expression such as `first name` that
/// matched one concept) or two space-separated tokens that did not match a
/// single concept.
pub fn candidates_for_label(sn: &SemanticNetwork, label: &str) -> SenseCandidates {
    let direct = sn.senses_normalized(label, porter_stem);
    if !direct.is_empty() {
        return SenseCandidates::Single(direct.to_vec());
    }
    // Two-token compound that has no single-concept match.
    if let Some((a, b)) = label.split_once(' ') {
        if label.matches(' ').count() == 1 {
            let first = sn.senses_normalized(a, porter_stem).to_vec();
            let second = sn.senses_normalized(b, porter_stem).to_vec();
            if first.is_empty() && second.is_empty() {
                return SenseCandidates::Unknown;
            }
            return SenseCandidates::Compound { first, second };
        }
    }
    SenseCandidates::Unknown
}

/// Candidate senses for *disambiguation* of a node of the given kind.
///
/// XML element and attribute tag names are nominal phrases, so their
/// candidates are restricted to noun (and named-instance) senses when any
/// exist, falling back to the full sense list otherwise. Value tokens —
/// free text — keep every part of speech. The *ambiguity degree* of
/// Definition 3, in contrast, always counts all senses (Proposition 1
/// measures raw lexical polysemy), which is why this filter lives apart
/// from [`candidates_for_label`].
pub fn disambiguation_candidates(
    sn: &SemanticNetwork,
    label: &str,
    kind: xmltree::NodeKind,
) -> SenseCandidates {
    let all = candidates_for_label(sn, label);
    if kind == xmltree::NodeKind::ValueToken {
        return all;
    }
    let keep_nouns = |senses: Vec<ConceptId>| -> Vec<ConceptId> {
        let nouns: Vec<ConceptId> = senses
            .iter()
            .copied()
            .filter(|&c| sn.concept(c).pos == semnet::PartOfSpeech::Noun)
            .collect();
        if nouns.is_empty() {
            senses
        } else {
            nouns
        }
    };
    match all {
        SenseCandidates::Unknown => SenseCandidates::Unknown,
        SenseCandidates::Single(senses) => SenseCandidates::Single(keep_nouns(senses)),
        SenseCandidates::Compound { first, second } => SenseCandidates::Compound {
            first: keep_nouns(first),
            second: keep_nouns(second),
        },
    }
}

/// A [`ValueTokenizer`] backed by the linguistic pre-processing pipeline
/// and the semantic network's lexicon: tag names get compound handling and
/// conditional stemming; text values get tokenization, stop-word removal,
/// and conditional stemming.
pub struct LingTokenizer<'sn> {
    sn: &'sn SemanticNetwork,
    pre: Preprocessor,
}

impl<'sn> LingTokenizer<'sn> {
    /// A tokenizer resolving against `sn` with default pre-processing.
    pub fn new(sn: &'sn SemanticNetwork) -> Self {
        Self {
            sn,
            pre: Preprocessor::new(),
        }
    }

    /// Overrides the pre-processor settings.
    pub fn with_preprocessor(sn: &'sn SemanticNetwork, pre: Preprocessor) -> Self {
        Self { sn, pre }
    }
}

impl ValueTokenizer for LingTokenizer<'_> {
    fn tokenize_value(&self, text: &str) -> Vec<String> {
        let lexicon = |w: &str| self.sn.has_word(w);
        self.pre.process_text_value(text, &lexicon)
    }

    fn normalize_label(&self, name: &str) -> String {
        let lexicon = |w: &str| self.sn.has_word(w);
        match self.pre.process_tag_name(name, &lexicon) {
            Some(label) => label.display(),
            None => name.to_string(),
        }
    }
}

/// Re-derives the [`LabelKind`] of a processed label string (labels built
/// by [`LingTokenizer::normalize_label`] are single tokens, single
/// multi-word expressions known to the lexicon, or two-token compounds).
pub fn label_kind(sn: &SemanticNetwork, label: &str) -> LabelKind {
    if sn.has_word(label) || !label.contains(' ') {
        LabelKind::Single(label.to_string())
    } else {
        match label.split_once(' ') {
            Some((a, b)) => LabelKind::Compound(a.to_string(), b.to_string()),
            None => LabelKind::Single(label.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;
    use xmltree::tree::TreeBuilder;

    #[test]
    fn single_word_candidates() {
        let sn = mini_wordnet();
        match candidates_for_label(sn, "star") {
            SenseCandidates::Single(senses) => assert!(senses.len() >= 5),
            other => panic!("expected Single, got {other:?}"),
        }
    }

    #[test]
    fn multiword_expression_is_single() {
        let sn = mini_wordnet();
        match candidates_for_label(sn, "first name") {
            SenseCandidates::Single(senses) => assert_eq!(senses.len(), 1),
            other => panic!("expected Single, got {other:?}"),
        }
    }

    #[test]
    fn unmatched_compound_splits() {
        let sn = mini_wordnet();
        match candidates_for_label(sn, "star picture") {
            SenseCandidates::Compound { first, second } => {
                assert!(!first.is_empty());
                assert!(!second.is_empty());
            }
            other => panic!("expected Compound, got {other:?}"),
        }
    }

    #[test]
    fn unknown_label() {
        let sn = mini_wordnet();
        assert_eq!(
            candidates_for_label(sn, "zorbleflux"),
            SenseCandidates::Unknown
        );
        assert_eq!(
            candidates_for_label(sn, "zorble flux"),
            SenseCandidates::Unknown
        );
    }

    #[test]
    fn candidate_counts() {
        let sn = mini_wordnet();
        let single = candidates_for_label(sn, "kelly");
        assert_eq!(single.candidate_count(), 3);
        let unknown = candidates_for_label(sn, "qqq");
        assert_eq!(unknown.candidate_count(), 0);
    }

    #[test]
    fn capitalized_and_plural_lookup() {
        let sn = mini_wordnet();
        // "Actors" resolves via lowercase + stemming.
        match candidates_for_label(sn, "Actors") {
            SenseCandidates::Single(senses) => assert!(!senses.is_empty()),
            other => panic!("expected Single, got {other:?}"),
        }
    }

    #[test]
    fn tokenizer_builds_preprocessed_tree() {
        let sn = mini_wordnet();
        let doc = xmltree::parse(
            r#"<movies><movie><directed_by>Alfred Hitchcock</directed_by>
               <FirstName>Grace</FirstName></movie></movies>"#,
        )
        .unwrap();
        let tree = TreeBuilder::with_tokenizer(LingTokenizer::new(sn))
            .build(&doc)
            .unwrap()
            .tree;
        let labels: Vec<_> = tree
            .preorder()
            .map(|id| tree.label(id).to_string())
            .collect();
        // directed_by → stop word "by" dropped, "directed" stemmed → "direct".
        assert!(labels.contains(&"direct".to_string()), "{labels:?}");
        // FirstName → the single concept "first name".
        assert!(labels.contains(&"first name".to_string()), "{labels:?}");
        // Text value "Alfred Hitchcock" tokenized into two leaf nodes.
        assert!(labels.contains(&"alfred".to_string()));
        assert!(labels.contains(&"hitchcock".to_string()));
    }

    #[test]
    fn tokenizer_drops_stop_words_in_values() {
        let sn = mini_wordnet();
        let doc = xmltree::parse("<plot>a photographer spies on his neighbors</plot>").unwrap();
        let tree = TreeBuilder::with_tokenizer(LingTokenizer::new(sn))
            .build(&doc)
            .unwrap()
            .tree;
        let labels: Vec<_> = tree
            .preorder()
            .map(|id| tree.label(id).to_string())
            .collect();
        assert!(!labels.contains(&"a".to_string()));
        assert!(!labels.contains(&"on".to_string()));
        assert!(labels.contains(&"photographer".to_string()));
        // "neighbors" → stem "neighbor" is in the lexicon.
        assert!(labels.contains(&"neighbor".to_string()));
    }

    #[test]
    fn label_kind_rederivation() {
        let sn = mini_wordnet();
        assert_eq!(label_kind(sn, "cast"), LabelKind::Single("cast".into()));
        assert_eq!(
            label_kind(sn, "first name"),
            LabelKind::Single("first name".into())
        );
        assert_eq!(
            label_kind(sn, "star picture"),
            LabelKind::Compound("star".into(), "picture".into())
        );
    }
}
