//! # xsdf
//!
//! The core library of **XSDF** — the XML Semantic Disambiguation Framework
//! of *Resolving XML Semantic Ambiguity* (Charbel, Tekli, Chbeir & Tekli,
//! EDBT 2015). XSDF transforms a syntactic XML tree into a semantic XML
//! tree whose ambiguous nodes carry unambiguous concept identifiers from a
//! reference semantic network.
//!
//! The pipeline (Figure 3 of the paper) has four stages, each a module:
//!
//! 1. linguistic pre-processing — performed while building the tree
//!    ([`senses::LingTokenizer`], backed by the `xsdf-lingproc` crate);
//! 2. node selection — the [`ambiguity`] degree measure (Definition 3)
//!    picks the most ambiguous nodes as disambiguation targets;
//! 3. context definition and representation — [`sphere`] neighborhoods
//!    (Definitions 4–5) and structurally weighted context vectors
//!    (Definitions 6–7);
//! 4. semantic disambiguation — [`concept_based`] (Definition 8),
//!    [`context_based`] (Definition 10), or their weighted combination
//!    (Equation 13), selected by [`config::DisambiguationProcess`].
//!
//! # Quick start
//!
//! ```
//! use xsdf::{Xsdf, XsdfConfig};
//!
//! let xml = r#"<films>
//!     <picture title="Rear Window">
//!         <cast><star>Stewart</star><star>Kelly</star></cast>
//!         <plot>a photographer spies on his neighbors</plot>
//!     </picture>
//! </films>"#;
//!
//! let framework = Xsdf::new(semnet::mini_wordnet(), XsdfConfig::default());
//! let result = framework.disambiguate_str(xml).unwrap();
//! // "Kelly" in a cast of stars resolves to Grace Kelly, the actress:
//! let kelly = result.assignment_for_label("kelly").unwrap();
//! assert_eq!(kelly, "kelly.grace");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ambiguity;
pub mod concept_based;
pub mod config;
pub mod context_based;
pub mod guard;
pub mod pipeline;
pub mod prune;
pub mod senses;
pub mod sphere;

pub use ambiguity::NodeAmbiguity;
pub use config::{
    AmbiguityWeights, DisambiguationProcess, ThresholdPolicy, VectorSimilarity, XsdfConfig,
};
pub use guard::{Deadline, Guard, GuardError, LimitKind};
pub use pipeline::{DisambiguationResult, NodeReport, SenseChoice, Xsdf};
pub use prune::PruningConfig;
pub use senses::{LingTokenizer, SenseCandidates};
pub use xmltree::distance::DistancePolicy;
