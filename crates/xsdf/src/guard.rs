//! Cooperative resource governance for the pipeline: per-document budgets
//! and deadlines, checked at stage boundaries and inside the sense-pair
//! scoring loop.
//!
//! The paper's pipeline assumes well-formed cooperative input, but
//! real-world XML is heterogeneous and sense-scoring cost explodes with
//! polysemy: a mega-fanout or hyper-polysemous document can hold a worker
//! hostage for seconds. A [`Guard`] bounds what one document may consume —
//! tree nodes, selected targets, scored sense pairs, wall-clock time — and
//! the guarded pipeline entry points ([`crate::Xsdf::select_guarded`],
//! [`crate::Xsdf::disambiguate_selected_guarded`]) return a
//! [`GuardError`] instead of running away. Checks are cooperative (no
//! signals, no thread cancellation), so a budget overrun surfaces at the
//! next check site — within one sense-pair evaluation of the overrun.

use std::cell::Cell;
use std::fmt;
use std::time::{Duration, Instant};

/// Which resource bound a document exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitKind {
    /// Raw document size in bytes.
    Bytes,
    /// Number of nodes in the built tree.
    Nodes,
    /// Element nesting depth during parsing.
    Depth,
    /// Number of selected disambiguation targets.
    Targets,
    /// Number of sense pairs scored during disambiguation.
    SensePairs,
}

impl fmt::Display for LimitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::Bytes => "document bytes",
            Self::Nodes => "tree nodes",
            Self::Depth => "parse depth",
            Self::Targets => "selected targets",
            Self::SensePairs => "scored sense pairs",
        };
        f.write_str(name)
    }
}

/// A resource-governance failure: the document is not malformed, it is
/// merely too expensive for the budget it was given.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardError {
    /// A resource budget was exceeded.
    LimitExceeded {
        /// Which budget.
        which: LimitKind,
        /// The configured bound.
        limit: u64,
        /// The observed (first offending) value.
        actual: u64,
    },
    /// The document's wall-clock deadline passed before the pipeline
    /// finished; the partial work is discarded.
    DeadlineExceeded {
        /// The configured per-document budget.
        budget: Duration,
        /// Elapsed time when the overrun was detected.
        elapsed: Duration,
    },
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LimitExceeded {
                which,
                limit,
                actual,
            } => write!(f, "{which} limit of {limit} exceeded ({actual})"),
            Self::DeadlineExceeded { budget, elapsed } => write!(
                f,
                "deadline of {:.1} ms exceeded after {:.1} ms",
                budget.as_secs_f64() * 1e3,
                elapsed.as_secs_f64() * 1e3
            ),
        }
    }
}

impl std::error::Error for GuardError {}

/// A per-document wall-clock deadline token.
///
/// Cheap to copy and purely cooperative: callers ask [`Deadline::check`] at
/// stage boundaries (and the scoring loop asks periodically), so a runaway
/// document returns an error at the next check site instead of stalling a
/// worker forever.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    started: Instant,
    budget: Duration,
}

impl Deadline {
    /// A deadline expiring `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Self {
            started: Instant::now(),
            budget,
        }
    }

    /// Time elapsed since the deadline was issued.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Whether the budget has run out.
    pub fn expired(&self) -> bool {
        self.elapsed() > self.budget
    }

    /// `Ok` while within budget, [`GuardError::DeadlineExceeded`] after.
    pub fn check(&self) -> Result<(), GuardError> {
        let elapsed = self.elapsed();
        if elapsed > self.budget {
            Err(GuardError::DeadlineExceeded {
                budget: self.budget,
                elapsed,
            })
        } else {
            Ok(())
        }
    }
}

/// How many sense-pair ticks pass between deadline checks inside the
/// scoring loop. `Instant::now` is cheap but not free; one check every 32
/// pairs bounds overrun detection latency to a handful of similarity
/// computations while keeping the common case branch-only.
const DEADLINE_CHECK_MASK: u64 = 31;

/// A per-document budget: optional bounds on tree size, target count,
/// scored sense pairs, and wall-clock time.
///
/// One `Guard` governs one document; the sense-pair counter is interior
/// (the scoring loop holds `&Guard`), so guards are neither `Sync` nor
/// meant to be shared across documents.
///
/// The sense-pair budget is denominated in *single-sense combined-similarity
/// evaluations*: scoring one candidate sense of a single-token label costs
/// one unit, while one candidate pair of a compound label costs two (it
/// evaluates both token senses against the context, per Equation 10), so
/// `max_sense_pairs` bounds the same amount of similarity work regardless
/// of label shape. Candidate pruning ([`crate::prune::PruningConfig`])
/// skips evaluations entirely, so a pruned run draws fewer units from the
/// same budget; the guard also tallies what pruning skipped
/// ([`Guard::candidates_pruned`], [`Guard::early_exits`]).
#[derive(Debug, Default)]
pub struct Guard {
    max_nodes: Option<usize>,
    max_targets: Option<usize>,
    max_sense_pairs: Option<u64>,
    deadline: Option<Deadline>,
    pairs: Cell<u64>,
    pruned: Cell<u64>,
    early_exits: Cell<u64>,
}

impl Guard {
    /// A guard with no bounds: every check passes. Used by the plain
    /// (unguarded) pipeline entry points.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Bounds the number of nodes in the built tree.
    pub fn with_max_nodes(mut self, max: usize) -> Self {
        self.max_nodes = Some(max);
        self
    }

    /// Bounds the number of selected disambiguation targets.
    pub fn with_max_targets(mut self, max: usize) -> Self {
        self.max_targets = Some(max);
        self
    }

    /// Bounds the number of sense pairs scored for the document.
    pub fn with_max_sense_pairs(mut self, max: u64) -> Self {
        self.max_sense_pairs = Some(max);
        self
    }

    /// Attaches a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Whether any bound is configured at all.
    pub fn is_unlimited(&self) -> bool {
        self.max_nodes.is_none()
            && self.max_targets.is_none()
            && self.max_sense_pairs.is_none()
            && self.deadline.is_none()
    }

    /// Sense pairs scored so far under this guard.
    pub fn pairs_scored(&self) -> u64 {
        self.pairs.get()
    }

    /// Budget units still available, or `None` when the pair budget is
    /// unlimited. Budgeted pruning uses this to shrink the candidate set
    /// *before* scoring instead of tripping the limit mid-loop.
    pub fn remaining_sense_pairs(&self) -> Option<u64> {
        self.max_sense_pairs
            .map(|max| max.saturating_sub(self.pairs.get()))
    }

    /// Candidate evaluations skipped by pruning under this guard (density
    /// screen drops, mid-scan abandonments, and early-exit skips).
    pub fn candidates_pruned(&self) -> u64 {
        self.pruned.get()
    }

    /// Times the scoring loop stopped early because the leader was
    /// mathematically uncatchable.
    pub fn early_exits(&self) -> u64 {
        self.early_exits.get()
    }

    /// Tallies `n` candidate evaluations skipped by pruning.
    pub fn note_pruned(&self, n: u64) {
        self.pruned.set(self.pruned.get() + n);
    }

    /// Tallies one uncatchable-leader loop exit.
    pub fn note_early_exit(&self) {
        self.early_exits.set(self.early_exits.get() + 1);
    }

    /// Checks the wall-clock deadline, if one is set.
    pub fn check_deadline(&self) -> Result<(), GuardError> {
        match &self.deadline {
            Some(d) => d.check(),
            None => Ok(()),
        }
    }

    /// Checks the tree-size bound against an observed node count.
    pub fn check_nodes(&self, nodes: usize) -> Result<(), GuardError> {
        check_limit(LimitKind::Nodes, self.max_nodes, nodes)
    }

    /// Checks the target bound against an observed selected-target count.
    pub fn check_targets(&self, targets: usize) -> Result<(), GuardError> {
        check_limit(LimitKind::Targets, self.max_targets, targets)
    }

    /// Accounts one budget unit — a single-sense combined-similarity
    /// evaluation in the scoring loop. Fails once the pair budget is
    /// exhausted; every 32nd tick also re-checks the deadline so a slow
    /// similarity computation cannot hide an overrun for long.
    pub fn tick_sense_pair(&self) -> Result<(), GuardError> {
        let scored = self.pairs.get() + 1;
        self.pairs.set(scored);
        if let Some(max) = self.max_sense_pairs {
            if scored > max {
                return Err(GuardError::LimitExceeded {
                    which: LimitKind::SensePairs,
                    limit: max,
                    actual: scored,
                });
            }
        }
        if scored & DEADLINE_CHECK_MASK == 0 {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Accounts `n` budget units at once — how the compound pair loop
    /// charges each candidate pair its true cost of two single-sense
    /// evaluations (Equation 10 scores both token senses against every
    /// context sense). Equivalent to `n` consecutive
    /// [`Guard::tick_sense_pair`] calls.
    pub fn tick_sense_pairs(&self, n: u64) -> Result<(), GuardError> {
        for _ in 0..n {
            self.tick_sense_pair()?;
        }
        Ok(())
    }
}

fn check_limit(which: LimitKind, limit: Option<usize>, actual: usize) -> Result<(), GuardError> {
    match limit {
        Some(max) if actual > max => Err(GuardError::LimitExceeded {
            which,
            limit: max as u64,
            actual: actual as u64,
        }),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_fails() {
        let g = Guard::unlimited();
        assert!(g.is_unlimited());
        g.check_deadline().unwrap();
        g.check_nodes(usize::MAX).unwrap();
        g.check_targets(usize::MAX).unwrap();
        for _ in 0..100 {
            g.tick_sense_pair().unwrap();
        }
        assert_eq!(g.pairs_scored(), 100);
    }

    #[test]
    fn node_and_target_bounds() {
        let g = Guard::unlimited().with_max_nodes(10).with_max_targets(2);
        g.check_nodes(10).unwrap();
        let err = g.check_nodes(11).unwrap_err();
        assert_eq!(
            err,
            GuardError::LimitExceeded {
                which: LimitKind::Nodes,
                limit: 10,
                actual: 11
            }
        );
        g.check_targets(2).unwrap();
        assert!(g.check_targets(3).is_err());
    }

    #[test]
    fn sense_pair_budget_trips_exactly_once_past_limit() {
        let g = Guard::unlimited().with_max_sense_pairs(3);
        for _ in 0..3 {
            g.tick_sense_pair().unwrap();
        }
        let err = g.tick_sense_pair().unwrap_err();
        assert!(matches!(
            err,
            GuardError::LimitExceeded {
                which: LimitKind::SensePairs,
                limit: 3,
                actual: 4
            }
        ));
    }

    #[test]
    fn weighted_ticks_draw_the_same_budget_as_single_ticks() {
        // A pair evaluation (2 units) and two single evaluations must be
        // indistinguishable to the budget.
        let g = Guard::unlimited().with_max_sense_pairs(4);
        g.tick_sense_pairs(2).unwrap();
        g.tick_sense_pairs(2).unwrap();
        assert_eq!(g.pairs_scored(), 4);
        let err = g.tick_sense_pairs(2).unwrap_err();
        assert!(matches!(
            err,
            GuardError::LimitExceeded {
                which: LimitKind::SensePairs,
                limit: 4,
                actual: 5
            }
        ));
    }

    #[test]
    fn remaining_budget_counts_down() {
        let g = Guard::unlimited();
        assert_eq!(g.remaining_sense_pairs(), None);
        let g = Guard::unlimited().with_max_sense_pairs(5);
        assert_eq!(g.remaining_sense_pairs(), Some(5));
        g.tick_sense_pairs(3).unwrap();
        assert_eq!(g.remaining_sense_pairs(), Some(2));
        g.tick_sense_pair().unwrap();
        g.tick_sense_pair().unwrap();
        assert_eq!(g.remaining_sense_pairs(), Some(0));
    }

    #[test]
    fn pruning_tallies_accumulate() {
        let g = Guard::unlimited();
        assert_eq!(g.candidates_pruned(), 0);
        assert_eq!(g.early_exits(), 0);
        g.note_pruned(3);
        g.note_pruned(2);
        g.note_early_exit();
        assert_eq!(g.candidates_pruned(), 5);
        assert_eq!(g.early_exits(), 1);
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        let err = d.check().unwrap_err();
        assert!(matches!(err, GuardError::DeadlineExceeded { .. }));
        let g = Guard::unlimited().with_deadline(d);
        assert!(g.check_deadline().is_err());
        // The periodic in-loop check also sees it (32nd tick).
        let g = Guard::unlimited().with_deadline(Deadline::after(Duration::ZERO));
        let mut tripped = false;
        for _ in 0..32 {
            if g.tick_sense_pair().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "deadline must surface within one check window");
    }

    #[test]
    fn generous_deadline_passes() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        d.check().unwrap();
    }

    #[test]
    fn errors_render_human_readably() {
        let e = GuardError::LimitExceeded {
            which: LimitKind::SensePairs,
            limit: 5,
            actual: 6,
        };
        assert_eq!(e.to_string(), "scored sense pairs limit of 5 exceeded (6)");
        let e = GuardError::DeadlineExceeded {
            budget: Duration::from_millis(100),
            elapsed: Duration::from_millis(150),
        };
        assert!(e.to_string().contains("100.0 ms"));
        assert!(e.to_string().contains("150.0 ms"));
    }
}
