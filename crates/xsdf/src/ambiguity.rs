//! The XML node ambiguity degree (Section 3.3): Propositions 1–3 and
//! Definition 3, with the compound-label special case and target selection.

use semnet::SemanticNetwork;
use xmltree::{NodeId, XmlTree};

use crate::config::{AmbiguityWeights, ThresholdPolicy};
use crate::senses::{candidates_for_label, SenseCandidates};

/// Proposition 1 — polysemy factor:
/// `(senses(ℓ) − 1) / (Max(senses(SN)) − 1) ∈ \[0, 1\]`.
///
/// Words unknown to the network have 0 senses; they are treated as
/// unambiguous (factor 0), since no sense can be assigned at all.
pub fn amb_polysemy(sense_count: usize, max_polysemy: usize) -> f64 {
    if max_polysemy <= 1 || sense_count == 0 {
        return 0.0;
    }
    (sense_count.saturating_sub(1)) as f64 / (max_polysemy - 1) as f64
}

/// Proposition 2 — depth factor: `1 − depth(x) / Max(depth(T)) ∈ \[0, 1\]`.
pub fn amb_depth(tree: &XmlTree, node: NodeId) -> f64 {
    let max = tree.max_depth();
    if max == 0 {
        return 1.0; // single-node tree: the root is maximally root-like
    }
    1.0 - tree.depth(node) as f64 / max as f64
}

/// Proposition 3 — density factor:
/// `1 − x.f̄ / Max(f̄an-out(T)) ∈ \[0, 1\]`, where `x.f̄` counts children with
/// distinct labels.
pub fn amb_density(tree: &XmlTree, node: NodeId) -> f64 {
    let max = tree.max_density();
    if max == 0 {
        return 1.0;
    }
    1.0 - tree.density(node) as f64 / max as f64
}

/// Definition 3 — the ambiguity degree of a node whose label has
/// `sense_count` senses:
///
/// ```text
///                    w_Pol · Amb_Polysemy
/// ───────────────────────────────────────────────────────────── ∈ \[0, 1\]
/// w_Depth·(1 − Amb_Depth) + w_Density·(1 − Amb_Density) + 1
/// ```
pub fn ambiguity_degree_raw(
    tree: &XmlTree,
    node: NodeId,
    sense_count: usize,
    max_polysemy: usize,
    w: AmbiguityWeights,
) -> f64 {
    let pol = amb_polysemy(sense_count, max_polysemy);
    let depth = amb_depth(tree, node);
    let density = amb_density(tree, node);
    let numerator = w.polysemy * pol;
    let denominator = w.depth * (1.0 - depth) + w.density * (1.0 - density) + 1.0;
    numerator / denominator
}

/// The ambiguity degree of a node, resolving its label's senses in `sn`.
/// For compound labels, the average of the two tokens' degrees (Section
/// 3.3's special case).
pub fn ambiguity_degree(
    sn: &SemanticNetwork,
    tree: &XmlTree,
    node: NodeId,
    w: AmbiguityWeights,
) -> f64 {
    let max_poly = sn.max_polysemy();
    match candidates_for_label(sn, tree.label(node)) {
        SenseCandidates::Unknown => 0.0,
        SenseCandidates::Single(senses) => {
            ambiguity_degree_raw(tree, node, senses.len(), max_poly, w)
        }
        SenseCandidates::Compound { first, second } => {
            let a = ambiguity_degree_raw(tree, node, first.len(), max_poly, w);
            let b = ambiguity_degree_raw(tree, node, second.len(), max_poly, w);
            (a + b) / 2.0
        }
    }
}

/// One node's ambiguity assessment.
#[derive(Debug, Clone)]
pub struct NodeAmbiguity {
    /// The assessed node.
    pub node: NodeId,
    /// Its `Amb_Deg` value.
    pub degree: f64,
    /// Whether it meets the selection threshold.
    pub selected: bool,
}

/// Computes `Amb_Deg` for every node and selects targets per the threshold
/// policy (Section 3.3). Nodes with no candidate senses are never selected
/// — they cannot be assigned a concept.
pub fn select_targets(
    sn: &SemanticNetwork,
    tree: &XmlTree,
    w: AmbiguityWeights,
    policy: ThresholdPolicy,
) -> Vec<NodeAmbiguity> {
    let degrees: Vec<(NodeId, f64, bool)> = tree
        .preorder()
        .map(|node| {
            let has_candidates = candidates_for_label(sn, tree.label(node)).candidate_count() > 0;
            (node, ambiguity_degree(sn, tree, node, w), has_candidates)
        })
        .collect();

    let threshold = match policy {
        ThresholdPolicy::Fixed(t) => t,
        ThresholdPolicy::Auto => {
            let eligible: Vec<f64> = degrees
                .iter()
                .filter(|(_, _, has)| *has)
                .map(|&(_, d, _)| d)
                .collect();
            if eligible.is_empty() {
                0.0
            } else {
                eligible.iter().sum::<f64>() / eligible.len() as f64
            }
        }
    };

    degrees
        .into_iter()
        .map(|(node, degree, has_candidates)| NodeAmbiguity {
            node,
            degree,
            selected: has_candidates && degree >= threshold,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::senses::LingTokenizer;
    use semnet::mini_wordnet;
    use xmltree::tree::TreeBuilder;

    fn tree(xml: &str) -> XmlTree {
        let doc = xmltree::parse(xml).unwrap();
        TreeBuilder::with_tokenizer(LingTokenizer::new(mini_wordnet()))
            .build(&doc)
            .unwrap()
            .tree
    }

    fn find(t: &XmlTree, label: &str) -> NodeId {
        t.preorder().find(|&id| t.label(id) == label).unwrap()
    }

    #[test]
    fn polysemy_factor_bounds() {
        assert_eq!(amb_polysemy(1, 33), 0.0); // monosemous → unambiguous
        assert_eq!(amb_polysemy(33, 33), 1.0); // "head" → maximal
        assert_eq!(amb_polysemy(0, 33), 0.0); // unknown → unambiguous
        let mid = amb_polysemy(8, 33); // "state"
        assert!((mid - 7.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn depth_factor_decreases_down_the_tree() {
        let t = tree("<films><picture><cast><star/></cast></picture></films>");
        let root = t.root();
        let star = find(&t, "star");
        assert_eq!(amb_depth(&t, root), 1.0);
        assert_eq!(amb_depth(&t, star), 0.0);
        let cast = find(&t, "cast");
        assert!(amb_depth(&t, cast) > amb_depth(&t, star));
    }

    #[test]
    fn density_factor_rewards_distinct_children() {
        // Figure 5: "picture" with distinct children labels is less
        // ambiguous than "picture" with repeated ones. Proposition 3
        // normalizes within one tree, so both variants live in one document.
        let t = tree(
            "<r><picture><title/><director/><genre/></picture><picture><img/><img/><img/></picture></r>",
        );
        let pictures: Vec<_> = t
            .preorder()
            .filter(|&id| t.label(id) == "picture")
            .collect();
        let d_distinct = amb_density(&t, pictures[0]);
        let d_repeated = amb_density(&t, pictures[1]);
        assert!(
            d_distinct < d_repeated,
            "distinct children must lower the density factor: {d_distinct} vs {d_repeated}"
        );
    }

    #[test]
    fn degree_in_unit_interval() {
        let t = tree(
            "<films><picture title=\"Rear Window\"><cast><star>Kelly</star></cast><plot>spies</plot></picture></films>",
        );
        for node in t.preorder() {
            let d = ambiguity_degree(mini_wordnet(), &t, node, AmbiguityWeights::equal());
            assert!((0.0..=1.0).contains(&d), "Amb_Deg({}) = {d}", t.label(node));
        }
    }

    #[test]
    fn assumption4_monosemous_word_scores_zero_numerator() {
        // A label with exactly one sense has Amb_Polysemy = 0 → Amb_Deg = 0
        // regardless of depth and density (Assumption 4).
        let t = tree("<proceedings><treasurer/></proceedings>");
        let sn = mini_wordnet();
        let treasurer = find(&t, "treasurer");
        assert_eq!(sn.polysemy("treasurer"), 1);
        assert_eq!(
            ambiguity_degree(sn, &t, treasurer, AmbiguityWeights::equal()),
            0.0
        );
    }

    #[test]
    fn zero_polysemy_weight_zeroes_all_degrees() {
        // Section 3.3: w_Polysemy = 0 → every node has Amb_Deg = 0.
        let t = tree("<films><picture><cast/></picture></films>");
        let w = AmbiguityWeights::new(0.0, 1.0, 1.0);
        for node in t.preorder() {
            assert_eq!(ambiguity_degree(mini_wordnet(), &t, node, w), 0.0);
        }
    }

    #[test]
    fn deeper_node_with_same_label_is_less_ambiguous() {
        // Proposition 2 via Definition 3: the same label at two depths with
        // equal density (both "state" nodes have one distinct child).
        let t = tree("<state><a><b><state><x/></state></b></a></state>");
        let sn = mini_wordnet();
        let root = t.root();
        let deep = t
            .preorder()
            .skip(1)
            .find(|&id| t.label(id) == "state")
            .unwrap();
        let w = AmbiguityWeights::equal();
        assert!(
            ambiguity_degree(sn, &t, root, w) > ambiguity_degree(sn, &t, deep, w),
            "root occurrence must be more ambiguous"
        );
    }

    #[test]
    fn select_all_with_zero_threshold() {
        let t = tree("<films><picture><cast><star>Kelly</star></cast></picture></films>");
        let sn = mini_wordnet();
        let out = select_targets(
            sn,
            &t,
            AmbiguityWeights::equal(),
            ThresholdPolicy::Fixed(0.0),
        );
        // Every node whose label has senses is selected.
        for na in &out {
            let has = candidates_for_label(sn, t.label(na.node)).candidate_count() > 0;
            assert_eq!(na.selected, has, "label {}", t.label(na.node));
        }
    }

    #[test]
    fn high_threshold_selects_nothing() {
        let t = tree("<films><picture><cast/></picture></films>");
        let out = select_targets(
            mini_wordnet(),
            &t,
            AmbiguityWeights::equal(),
            ThresholdPolicy::Fixed(1.1),
        );
        assert!(out.iter().all(|na| !na.selected));
    }

    #[test]
    fn auto_threshold_selects_above_average() {
        let t = tree(
            "<films><picture><cast><star>Kelly</star><star>Stewart</star></cast><treasurer/></picture></films>",
        );
        let out = select_targets(
            mini_wordnet(),
            &t,
            AmbiguityWeights::equal(),
            ThresholdPolicy::Auto,
        );
        let selected: Vec<_> = out.iter().filter(|na| na.selected).collect();
        let unselected: Vec<_> = out
            .iter()
            .filter(|na| !na.selected && na.degree > 0.0)
            .collect();
        assert!(!selected.is_empty());
        // Every selected node is at least as ambiguous as every unselected one.
        for s in &selected {
            for u in &unselected {
                assert!(s.degree >= u.degree);
            }
        }
    }

    #[test]
    fn unknown_labels_never_selected() {
        let t = tree("<films><zorbleflux/></films>");
        let out = select_targets(
            mini_wordnet(),
            &t,
            AmbiguityWeights::equal(),
            ThresholdPolicy::Fixed(0.0),
        );
        let z = out
            .iter()
            .find(|na| t.label(na.node) == "zorbleflux")
            .unwrap();
        assert!(!z.selected);
        assert_eq!(z.degree, 0.0);
    }

    #[test]
    fn compound_degree_is_average() {
        let t = tree("<a><star_picture/></a>");
        let sn = mini_wordnet();
        let node = find(&t, "star picture");
        let w = AmbiguityWeights::equal();
        let d = ambiguity_degree(sn, &t, node, w);
        let ds = ambiguity_degree_raw(&t, node, sn.polysemy("star"), sn.max_polysemy(), w);
        let dp = ambiguity_degree_raw(&t, node, sn.polysemy("picture"), sn.max_polysemy(), w);
        assert!((d - (ds + dp) / 2.0).abs() < 1e-12);
    }
}
