//! The end-to-end XSDF pipeline (Figure 3): parse → pre-process → select
//! targets → disambiguate → semantic XML tree.

use semnet::{ConceptId, SemanticNetwork};
use semsim::{CombinedSimilarity, SimilarityCache};
use xmltree::semantic::SenseAnnotation;
use xmltree::tree::{ContentMode, TreeBuilder};
use xmltree::{NodeId, ParseError, SemanticTree, XmlTree};

use crate::ambiguity::{select_targets, NodeAmbiguity};
use crate::concept_based::ConceptContext;
use crate::config::XsdfConfig;
use crate::context_based::ContextVectorScorer;
use crate::guard::{Guard, GuardError};
use crate::senses::{disambiguation_candidates, LingTokenizer, SenseCandidates};

/// The sense (or sense pair, for compound labels) chosen for a target node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenseChoice {
    /// One concept for a single-token label.
    Single(ConceptId),
    /// One concept per token of an unmatched compound label.
    Pair(ConceptId, ConceptId),
}

impl SenseChoice {
    /// The primary concept (the first of a pair).
    pub fn primary(self) -> ConceptId {
        match self {
            Self::Single(c) | Self::Pair(c, _) => c,
        }
    }
}

/// Per-node outcome of a disambiguation run.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// The tree node.
    pub node: NodeId,
    /// Its processed label.
    pub label: String,
    /// Its ambiguity degree (Definition 3).
    pub ambiguity: f64,
    /// Whether it was selected as a disambiguation target.
    pub selected: bool,
    /// Number of candidate senses (sense pairs for compounds).
    pub candidates: usize,
    /// The winning sense and its score, when one was assigned.
    pub chosen: Option<(SenseChoice, f64)>,
}

/// The result of running XSDF over one document.
#[derive(Debug, Clone)]
pub struct DisambiguationResult {
    /// The semantically augmented tree (Figure 4.b).
    pub semantic_tree: SemanticTree,
    /// Per-node reports in preorder.
    pub reports: Vec<NodeReport>,
}

impl DisambiguationResult {
    /// Nodes that were selected as targets.
    pub fn targets(&self) -> impl Iterator<Item = &NodeReport> {
        self.reports.iter().filter(|r| r.selected)
    }

    /// Number of targets that received a sense.
    pub fn assigned_count(&self) -> usize {
        self.reports.iter().filter(|r| r.chosen.is_some()).count()
    }

    /// Convenience lookup: the concept key assigned to the first node with
    /// the given label.
    pub fn assignment_for_label(&self, label: &str) -> Option<&str> {
        self.reports
            .iter()
            .find(|r| r.label == label && r.chosen.is_some())
            .and_then(|r| self.semantic_tree.sense(r.node).map(|s| s.concept.as_str()))
    }
}

/// The XML Semantic Disambiguation Framework: a reference semantic network
/// plus a pipeline configuration.
pub struct Xsdf<'sn> {
    sn: &'sn SemanticNetwork,
    config: XsdfConfig,
}

impl<'sn> Xsdf<'sn> {
    /// Creates a framework instance over the given network.
    pub fn new(sn: &'sn SemanticNetwork, config: XsdfConfig) -> Self {
        Self { sn, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &XsdfConfig {
        &self.config
    }

    /// The reference semantic network.
    pub fn network(&self) -> &'sn SemanticNetwork {
        self.sn
    }

    /// Parses an XML string and disambiguates it.
    pub fn disambiguate_str(&self, xml: &str) -> Result<DisambiguationResult, ParseError> {
        let doc = xmltree::parse(xml)?;
        Ok(self.disambiguate_document(&doc))
    }

    /// Builds the pre-processed tree for a parsed document and
    /// disambiguates it.
    pub fn disambiguate_document(&self, doc: &xmltree::Document) -> DisambiguationResult {
        let tree = self.build_tree(doc);
        self.disambiguate_tree(&tree)
    }

    /// Builds the rooted ordered labeled tree with linguistic
    /// pre-processing, honoring the structure-only / structure-and-content
    /// configuration.
    pub fn build_tree(&self, doc: &xmltree::Document) -> XmlTree {
        let mode = if self.config.structure_and_content {
            ContentMode::StructureAndContent
        } else {
            ContentMode::StructureOnly
        };
        let mut build = TreeBuilder::with_tokenizer(LingTokenizer::new(self.sn))
            .content_mode(mode)
            .build(doc)
            // invariant: the parser rejects rootless input, so every
            // `Document` that reaches here has a root element
            .expect("document must have a root element");
        if self.config.resolve_hyperlinks {
            let links = xmltree::links::resolve_links(doc);
            xmltree::links::install_links(&mut build, &links);
        }
        build.tree
    }

    /// Runs selection + disambiguation over an already-built tree.
    pub fn disambiguate_tree(&self, tree: &XmlTree) -> DisambiguationResult {
        self.run(tree, None)
    }

    /// Disambiguates only the given nodes (the paper's evaluation protocol:
    /// target nodes are pre-selected, then disambiguated). Selection
    /// (ambiguity threshold) still applies within the restricted set;
    /// reports cover only the requested nodes, in preorder.
    pub fn disambiguate_nodes(&self, tree: &XmlTree, nodes: &[NodeId]) -> DisambiguationResult {
        self.run(tree, Some(nodes))
    }

    /// Disambiguates an already-built tree, memoizing pair similarities in
    /// the caller-supplied measure. This is the entry point for concurrent
    /// batch engines: build one shared cache, wrap it per worker in a
    /// [`CombinedSimilarity::with_cache`], and every document benefits from
    /// pairs scored for the others.
    pub fn disambiguate_tree_with<C: SimilarityCache>(
        &self,
        tree: &XmlTree,
        sim: &CombinedSimilarity<C>,
    ) -> DisambiguationResult {
        self.disambiguate_selected(tree, &self.select(tree), sim)
    }

    /// Stage 2 of the pipeline (Section 3.3): computes the ambiguity degree
    /// of every node and marks selected targets per the configured
    /// threshold policy. Exposed so staged callers (e.g. batch engines
    /// timing each stage) can run selection and disambiguation separately;
    /// feed the result to [`Xsdf::disambiguate_selected`].
    pub fn select(&self, tree: &XmlTree) -> Vec<NodeAmbiguity> {
        select_targets(
            self.sn,
            tree,
            self.config.ambiguity_weights,
            self.config.threshold,
        )
    }

    /// [`Xsdf::select`] under a resource [`Guard`]: checks the tree-size
    /// bound and the deadline before computing ambiguity degrees, and the
    /// selected-target bound after. Batch engines use this so one
    /// mega-fanout or hyper-polysemous document degrades into a
    /// per-document error instead of starving its worker.
    pub fn select_guarded(
        &self,
        tree: &XmlTree,
        guard: &Guard,
    ) -> Result<Vec<NodeAmbiguity>, GuardError> {
        guard.check_nodes(tree.len())?;
        guard.check_deadline()?;
        let ambiguities = self.select(tree);
        guard.check_targets(ambiguities.iter().filter(|a| a.selected).count())?;
        Ok(ambiguities)
    }

    fn run(&self, tree: &XmlTree, restrict: Option<&[NodeId]>) -> DisambiguationResult {
        let mut ambiguities = self.select(tree);
        if let Some(nodes) = restrict {
            let wanted: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
            ambiguities.retain(|na| wanted.contains(&na.node));
        }
        let sim = CombinedSimilarity::new(self.config.similarity);
        self.disambiguate_selected(tree, &ambiguities, &sim)
    }

    /// Stage 4 of the pipeline: scores and annotates the given
    /// (pre-selected) targets, reporting one entry per element of
    /// `ambiguities` in order.
    pub fn disambiguate_selected<C: SimilarityCache>(
        &self,
        tree: &XmlTree,
        ambiguities: &[NodeAmbiguity],
        sim: &CombinedSimilarity<C>,
    ) -> DisambiguationResult {
        self.disambiguate_selected_guarded(tree, ambiguities, sim, &Guard::unlimited())
            // invariant: an unlimited guard has no bounds, so no check fails
            .expect("unlimited guard cannot trip")
    }

    /// [`Xsdf::disambiguate_selected`] under a resource [`Guard`]: the
    /// deadline is re-checked per target and every 32 scored sense pairs,
    /// and each candidate evaluation draws on the sense-pair budget (one
    /// unit per single-sense evaluation, two per compound pair — see
    /// [`Guard`]), so a runaway document returns a partial-result error
    /// instead of stalling its worker. The partial work is discarded —
    /// callers get `Err`, never a half-annotated tree.
    pub fn disambiguate_selected_guarded<C: SimilarityCache>(
        &self,
        tree: &XmlTree,
        ambiguities: &[NodeAmbiguity],
        sim: &CombinedSimilarity<C>,
        guard: &Guard,
    ) -> Result<DisambiguationResult, GuardError> {
        let cfg = &self.config;
        let (w_concept, w_context) = cfg.process.weights();

        let mut semantic_tree = SemanticTree::new(tree.clone());
        let mut reports = Vec::with_capacity(tree.len());

        for na in ambiguities {
            guard.check_deadline()?;
            let node = na.node;
            let label = tree.label(node).to_string();
            let candidates = disambiguation_candidates(self.sn, &label, tree.node(node).kind);
            let candidate_count = candidates.candidate_count();
            let mut report = NodeReport {
                node,
                label,
                ambiguity: na.degree,
                selected: na.selected,
                candidates: candidate_count,
                chosen: None,
            };
            if na.selected && candidate_count > 0 {
                if let Some((choice, score)) = self.score_candidates(
                    tree,
                    node,
                    &candidates,
                    sim,
                    w_concept,
                    w_context,
                    guard,
                )? {
                    // Annotation gate (accepted deviation, see DESIGN.md):
                    // a multi-candidate winner must score *strictly* above
                    // `min_score` — a score exactly at the threshold
                    // abstains — while a monosemous label annotates
                    // unconditionally, evidence or not, because its sense
                    // is certain a priori.
                    if score > cfg.min_score || candidate_count == 1 {
                        self.annotate(&mut semantic_tree, node, choice, score);
                        report.chosen = Some((choice, score));
                    }
                }
            }
            reports.push(report);
        }
        Ok(DisambiguationResult {
            semantic_tree,
            reports,
        })
    }

    /// Scores every candidate sense of a target and returns the best.
    ///
    /// Budget: each single-sense evaluation ticks the guard's sense-pair
    /// budget once; a compound candidate pair ticks twice (it evaluates
    /// both token senses against the context, per Equation 10).
    ///
    /// Tie-breaking is part of the determinism contract: **every** path
    /// keeps the *first* maximum — a challenger must score strictly
    /// higher. (The compound one-token-unknown fallback historically kept
    /// the *last* tie, an `Iterator::max_by` artifact, while the `Single`
    /// branch and the pair loop kept the first; the contract is now
    /// keep-first everywhere, mirrored by the conformance reference.)
    /// Exact pruning leans on this: abandoning a candidate whose upper
    /// bound merely *equals* the leader is safe only because an equal
    /// score never wins.
    ///
    /// Candidate pruning ([`crate::prune`], `config.prune`, off by
    /// default) is applied here: a density pre-screen may drop candidates
    /// before scoring (levels (b)/(c)), and the exact early exit (level
    /// (a)) abandons candidates whose running upper bound cannot strictly
    /// beat the leader, stopping the whole loop once the leader is
    /// uncatchable. Level (a) is provably result-identical: survivors
    /// reuse the bit-exact arithmetic of the unpruned scorers.
    #[allow(clippy::too_many_arguments)]
    fn score_candidates<C: SimilarityCache>(
        &self,
        tree: &XmlTree,
        node: NodeId,
        candidates: &SenseCandidates,
        sim: &CombinedSimilarity<C>,
        w_concept: f64,
        w_context: f64,
        guard: &Guard,
    ) -> Result<Option<(SenseChoice, f64)>, GuardError> {
        let radius = self.config.radius;
        let prune = self.config.prune;
        // Build each scorer lazily: pure processes need only one of them.
        let concept_ctx = (w_concept > 0.0).then(|| {
            ConceptContext::build_with_policy(self.sn, tree, node, radius, self.config.distance)
        });
        let context_scorer = (w_context > 0.0).then(|| {
            ContextVectorScorer::build(tree, node, radius)
                .with_measure(self.config.vector_similarity)
        });

        // Level (a) machinery: per-target suffix weight sums feed the
        // running concept-score bound; `global_bound` is the combined
        // score a *perfect* candidate would reach in this context, and
        // `slack` absorbs floating-point drift (plus any requested
        // level-(c) margin) so a prune can never flip a comparison.
        let prune_on = prune.early_exit;
        let suffix = prune_on
            .then(|| concept_ctx.as_ref().map(ConceptContext::suffix_weight_sums))
            .flatten();
        let slack = prune.slack();
        let global_bound = w_concept
            * concept_ctx
                .as_ref()
                .map_or(0.0, ConceptContext::max_concept_score)
            + w_context
                * context_scorer
                    .as_ref()
                    .map_or(0.0, ContextVectorScorer::score_bound);

        // Levels (b)/(c): the density screen's K for single-sense lists
        // and for compound pair counts. The budgeted K is re-derived per
        // target from the guard's remaining budget, so later targets of a
        // budgeted document screen harder instead of tripping the limit;
        // a compound pair costs two budget units, hence the halving.
        let density_k = (prune.density_top_k > 0).then_some(prune.density_top_k);
        let budget_k = prune
            .budgeted
            .then(|| guard.remaining_sense_pairs())
            .flatten()
            .map(|r| (r as usize).max(1));
        let single_k = min_opt(density_k, budget_k);
        let pair_k = min_opt(density_k, budget_k.map(|b| (b / 2).max(1)));
        let density_senses = (single_k.is_some() || pair_k.is_some()).then(|| {
            concept_ctx
                .as_ref()
                .map(ConceptContext::context_senses)
                .unwrap_or_else(|| {
                    // Pure context-based process: build a screen-only
                    // concept context for its sense inventory.
                    ConceptContext::build_with_policy(
                        self.sn,
                        tree,
                        node,
                        radius,
                        self.config.distance,
                    )
                    .context_senses()
                })
        });
        let screen = |senses: &[ConceptId], k: usize, ctx_senses: &[ConceptId]| -> Vec<ConceptId> {
            let mask = crate::prune::density_keep_mask(self.sn, senses, ctx_senses, k);
            senses
                .iter()
                .zip(&mask)
                .filter(|&(_, &kept)| kept)
                .map(|(&s, _)| s)
                .collect()
        };

        // Combined Equation 13 scorers. The context score is computed
        // first (it is a single whole-vector comparison — nothing to
        // abandon incrementally), then the concept score entry by entry
        // under the running bound. `None` means the candidate was
        // abandoned: its true score provably cannot strictly beat
        // `leader`. Survivor arithmetic is identical to the unpruned path.
        let score_single = |s: ConceptId, leader: Option<f64>| -> Option<f64> {
            let x = context_scorer
                .as_ref()
                .map_or(0.0, |cs| cs.score_single_cached(self.sn, s, sim.cache()));
            let c = match (concept_ctx.as_ref(), suffix.as_deref()) {
                (Some(ctx), Some(sfx)) => {
                    let mut abandon = |ub: f64| {
                        leader.is_some_and(|l| w_concept * ub + w_context * x + slack <= l)
                    };
                    ctx.score_single_bounded(self.sn, sim, s, sfx, &mut abandon)?
                }
                (Some(ctx), None) => ctx.score_single(self.sn, sim, s),
                (None, _) => 0.0,
            };
            Some(w_concept * c + w_context * x)
        };
        let score_pair = |a: ConceptId, b: ConceptId, leader: Option<f64>| -> Option<f64> {
            let x = context_scorer
                .as_ref()
                .map_or(0.0, |cs| cs.score_pair(self.sn, a, b));
            let c = match (concept_ctx.as_ref(), suffix.as_deref()) {
                (Some(ctx), Some(sfx)) => {
                    let mut abandon = |ub: f64| {
                        leader.is_some_and(|l| w_concept * ub + w_context * x + slack <= l)
                    };
                    ctx.score_pair_bounded(self.sn, sim, a, b, sfx, &mut abandon)?
                }
                (Some(ctx), None) => ctx.score_pair(self.sn, sim, a, b),
                (None, _) => 0.0,
            };
            Some(w_concept * c + w_context * x)
        };

        let best_single = |senses: &[ConceptId]| -> Result<Option<(SenseChoice, f64)>, GuardError> {
            let screened;
            let senses: &[ConceptId] = match (single_k, &density_senses) {
                (Some(k), Some(ctx_senses)) if senses.len() > k => {
                    screened = screen(senses, k, ctx_senses);
                    guard.note_pruned((senses.len() - screened.len()) as u64);
                    &screened
                }
                _ => senses,
            };
            let mut best: Option<(SenseChoice, f64)> = None;
            for (i, &s) in senses.iter().enumerate() {
                if prune_on {
                    if let Some((_, leader)) = best {
                        if global_bound + slack <= leader {
                            // Not even a perfect candidate could strictly
                            // beat the leader: the rest of the list is
                            // mathematically out of the race.
                            guard.note_pruned((senses.len() - i) as u64);
                            guard.note_early_exit();
                            break;
                        }
                    }
                }
                guard.tick_sense_pair()?;
                match score_single(s, best.map(|(_, b)| b)) {
                    Some(score) => {
                        if best.is_none_or(|(_, b)| score > b) {
                            best = Some((SenseChoice::Single(s), score));
                        }
                    }
                    None => guard.note_pruned(1),
                }
            }
            Ok(best)
        };

        match candidates {
            SenseCandidates::Unknown => Ok(None),
            SenseCandidates::Single(senses) => best_single(senses),
            SenseCandidates::Compound { first, second } => {
                // One of the token lists may be empty (token unknown to the
                // lexicon): fall back to single-token choice.
                if first.is_empty() {
                    return best_single(second);
                }
                if second.is_empty() {
                    return best_single(first);
                }
                // Screening pair-by-pair would cost as much as scoring, so
                // each side is screened independently to ⌈√K⌉ senses,
                // bounding the kept pair count near K.
                let (screened_first, screened_second);
                let (first, second): (&[ConceptId], &[ConceptId]) = match (pair_k, &density_senses)
                {
                    (Some(k), Some(ctx_senses)) if first.len() * second.len() > k => {
                        let cap = crate::prune::compound_side_cap(k);
                        screened_first = screen(first, cap, ctx_senses);
                        screened_second = screen(second, cap, ctx_senses);
                        let kept = screened_first.len() * screened_second.len();
                        guard.note_pruned((first.len() * second.len() - kept) as u64);
                        (&screened_first, &screened_second)
                    }
                    _ => (first, second),
                };
                let mut best: Option<(SenseChoice, f64)> = None;
                'pairs: for (i, &a) in first.iter().enumerate() {
                    for (j, &b) in second.iter().enumerate() {
                        if prune_on {
                            if let Some((_, leader)) = best {
                                if global_bound + slack <= leader {
                                    let remaining = (first.len() - i) * second.len() - j;
                                    guard.note_pruned(remaining as u64);
                                    guard.note_early_exit();
                                    break 'pairs;
                                }
                            }
                        }
                        // A compound pair evaluates both token senses
                        // against the context: two budget units.
                        guard.tick_sense_pairs(2)?;
                        match score_pair(a, b, best.map(|(_, bst)| bst)) {
                            Some(score) => {
                                if best.is_none_or(|(_, bst)| score > bst) {
                                    best = Some((SenseChoice::Pair(a, b), score));
                                }
                            }
                            None => guard.note_pruned(1),
                        }
                    }
                }
                Ok(best)
            }
        }
    }

    /// Disambiguates a batch of trees in parallel with scoped threads
    /// (whole-document parallelism: each tree is independent). `threads`
    /// is clamped to the batch size; 0 or 1 runs sequentially.
    ///
    /// ```
    /// use xsdf::{Xsdf, XsdfConfig};
    /// let sn = semnet::mini_wordnet();
    /// let xsdf = Xsdf::new(sn, XsdfConfig::default());
    /// let docs: Vec<_> = (0..4)
    ///     .map(|_| xmltree::parse("<cast><star>Kelly</star></cast>").unwrap())
    ///     .collect();
    /// let trees: Vec<_> = docs.iter().map(|d| xsdf.build_tree(d)).collect();
    /// let tree_refs: Vec<&xmltree::XmlTree> = trees.iter().collect();
    /// let results = xsdf.disambiguate_batch(&tree_refs, 2);
    /// assert_eq!(results.len(), 4);
    /// ```
    pub fn disambiguate_batch(
        &self,
        trees: &[&XmlTree],
        threads: usize,
    ) -> Vec<DisambiguationResult> {
        let threads = threads.clamp(1, trees.len().max(1));
        if threads <= 1 || trees.len() <= 1 {
            return trees.iter().map(|t| self.disambiguate_tree(t)).collect();
        }
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<DisambiguationResult>>> =
            trees.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= trees.len() {
                        break;
                    }
                    let result = self.disambiguate_tree(trees[i]);
                    // invariant: slot i is locked only by the one worker
                    // that claimed index i, and never across a panic (the
                    // result is computed before the lock is taken), so the
                    // mutex cannot be contended or poisoned
                    *results[i].lock().expect("no panics hold the lock") = Some(result);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                // invariant: a worker panic propagates out of the scope
                // above before this runs, so every slot was filled and no
                // lock is poisoned
                slot.into_inner()
                    .expect("lock")
                    .expect("every index processed")
            })
            .collect()
    }

    fn annotate(
        &self,
        semantic_tree: &mut SemanticTree,
        node: NodeId,
        choice: SenseChoice,
        score: f64,
    ) {
        let concept = match choice {
            SenseChoice::Single(c) => self.sn.concept(c).key.clone(),
            SenseChoice::Pair(a, b) => {
                format!("{}+{}", self.sn.concept(a).key, self.sn.concept(b).key)
            }
        };
        let gloss = match choice {
            SenseChoice::Single(c) => Some(self.sn.concept(c).gloss.clone()),
            SenseChoice::Pair(a, _) => Some(self.sn.concept(a).gloss.clone()),
        };
        semantic_tree.annotate(
            node,
            SenseAnnotation {
                concept,
                gloss,
                score,
            },
        );
    }
}

/// Minimum of two optional caps, where `None` means "uncapped".
fn min_opt(a: Option<usize>, b: Option<usize>) -> Option<usize> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, None) => a,
        (None, b) => b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DisambiguationProcess, ThresholdPolicy};
    use semnet::mini_wordnet;

    const FIGURE1_DOC1: &str = r#"<films>
        <picture title="Rear Window">
            <director>Hitchcock</director>
            <year>1954</year>
            <genre>mystery</genre>
            <cast><star>Stewart</star><star>Kelly</star></cast>
            <plot>A wheelchair bound photographer spies on his neighbors</plot>
        </picture>
    </films>"#;

    const FIGURE1_DOC2: &str = r#"<movies>
        <movie year="1954">
            <name>Rear Window</name>
            <directed_by>Alfred Hitchcock</directed_by>
            <actors>
                <actor><firstname>Grace</firstname><lastname>Kelly</lastname></actor>
                <actor><firstname>James</firstname><lastname>Stewart</lastname></actor>
            </actors>
        </movie>
    </movies>"#;

    fn run(xml: &str, config: XsdfConfig) -> DisambiguationResult {
        Xsdf::new(mini_wordnet(), config)
            .disambiguate_str(xml)
            .unwrap()
    }

    #[test]
    fn figure1_doc1_kelly_is_grace() {
        let result = run(FIGURE1_DOC1, XsdfConfig::default());
        assert_eq!(result.assignment_for_label("kelly"), Some("kelly.grace"));
    }

    #[test]
    fn figure1_doc1_cast_is_actors() {
        let result = run(FIGURE1_DOC1, XsdfConfig::default());
        assert_eq!(result.assignment_for_label("cast"), Some("cast.actors"));
    }

    #[test]
    fn figure1_doc1_star_is_performer() {
        let result = run(FIGURE1_DOC1, XsdfConfig::default());
        assert_eq!(result.assignment_for_label("star"), Some("star.performer"));
    }

    #[test]
    fn figure1_doc2_with_different_tagging_agrees() {
        // Figure 1's point: different structure/tagging, same entities.
        let result = run(FIGURE1_DOC2, XsdfConfig::default());
        assert_eq!(result.assignment_for_label("kelly"), Some("kelly.grace"));
        assert_eq!(
            result.assignment_for_label("stewart"),
            Some("stewart.james")
        );
        // movie resolves to the film sense.
        assert_eq!(result.assignment_for_label("movie"), Some("film.movie"));
    }

    #[test]
    fn context_based_process_runs() {
        let cfg = XsdfConfig {
            process: DisambiguationProcess::ContextBased,
            ..XsdfConfig::default()
        };
        let result = run(FIGURE1_DOC1, cfg);
        assert!(result.assigned_count() > 0);
    }

    #[test]
    fn combined_process_runs() {
        let cfg = XsdfConfig {
            process: DisambiguationProcess::Combined {
                concept: 0.5,
                context: 0.5,
            },
            ..XsdfConfig::default()
        };
        let result = run(FIGURE1_DOC1, cfg);
        assert_eq!(result.assignment_for_label("cast"), Some("cast.actors"));
    }

    #[test]
    fn threshold_one_selects_nothing() {
        let cfg = XsdfConfig {
            threshold: ThresholdPolicy::Fixed(1.1),
            ..XsdfConfig::default()
        };
        let result = run(FIGURE1_DOC1, cfg);
        assert_eq!(result.assigned_count(), 0);
        assert!(result.targets().count() == 0);
    }

    #[test]
    fn structure_only_has_no_value_nodes() {
        let cfg = XsdfConfig {
            structure_and_content: false,
            ..XsdfConfig::default()
        };
        let result = run(FIGURE1_DOC1, cfg);
        assert!(result.reports.iter().all(|r| r.label != "kelly"));
        // but tag names still disambiguated
        assert_eq!(result.assignment_for_label("cast"), Some("cast.actors"));
    }

    #[test]
    fn reports_cover_every_node_in_preorder() {
        let result = run(FIGURE1_DOC1, XsdfConfig::default());
        let n = result.semantic_tree.tree().len();
        assert_eq!(result.reports.len(), n);
        for (i, r) in result.reports.iter().enumerate() {
            assert_eq!(r.node.index(), i);
        }
    }

    #[test]
    fn scores_are_recorded_and_bounded() {
        let result = run(FIGURE1_DOC1, XsdfConfig::default());
        for r in &result.reports {
            if let Some((_, score)) = &r.chosen {
                assert!((0.0..=1.0).contains(score), "{}: {score}", r.label);
            }
        }
    }

    #[test]
    fn semantic_tree_annotations_match_reports() {
        let result = run(FIGURE1_DOC1, XsdfConfig::default());
        let annotated: Vec<_> = result.semantic_tree.annotations().map(|(n, _)| n).collect();
        let chosen: Vec<_> = result
            .reports
            .iter()
            .filter(|r| r.chosen.is_some())
            .map(|r| r.node)
            .collect();
        assert_eq!(annotated, chosen);
    }

    #[test]
    fn compound_label_gets_pair_or_single() {
        let result = run(
            "<films><star_picture/><cast/><actor/></films>",
            XsdfConfig::default(),
        );
        let report = result
            .reports
            .iter()
            .find(|r| r.label == "star picture")
            .unwrap();
        assert!(report.chosen.is_some());
        let concept = result.semantic_tree.sense(report.node).unwrap();
        assert!(
            concept.concept.contains('+'),
            "expected pair key, got {}",
            concept.concept
        );
    }

    #[test]
    fn min_score_gate_abstains_on_weak_evidence() {
        let cfg = XsdfConfig {
            min_score: 0.99,
            ..XsdfConfig::default()
        };
        let result = run(FIGURE1_DOC1, cfg);
        // With an absurd score floor, polysemous targets abstain; only
        // monosemous targets (candidate_count == 1) pass the gate.
        for r in &result.reports {
            if let Some((_, _)) = &r.chosen {
                assert_eq!(r.candidates, 1, "{} should have abstained", r.label);
            }
        }
    }

    #[test]
    fn radius_zero_yields_no_context_but_does_not_panic() {
        let cfg = XsdfConfig {
            radius: 0,
            ..XsdfConfig::default()
        };
        let result = run(FIGURE1_DOC1, cfg);
        // Concept scores are all zero (empty sphere): every selected node
        // with multiple senses keeps its first-scored candidate at 0.0 or
        // abstains; the run itself must succeed.
        assert_eq!(result.reports.len(), result.semantic_tree.tree().len());
    }

    #[test]
    fn batch_matches_sequential() {
        let sn = mini_wordnet();
        let xsdf = Xsdf::new(sn, XsdfConfig::default());
        let docs: Vec<xmltree::Document> = [FIGURE1_DOC1, FIGURE1_DOC2, FIGURE1_DOC1]
            .iter()
            .map(|xml| xmltree::parse(xml).unwrap())
            .collect();
        let trees: Vec<XmlTree> = docs.iter().map(|d| xsdf.build_tree(d)).collect();
        let refs: Vec<&XmlTree> = trees.iter().collect();
        let sequential = xsdf.disambiguate_batch(&refs, 1);
        let parallel = xsdf.disambiguate_batch(&refs, 3);
        assert_eq!(sequential.len(), parallel.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.assigned_count(), b.assigned_count());
            for (ra, rb) in a.reports.iter().zip(&b.reports) {
                assert_eq!(ra.chosen, rb.chosen, "{}", ra.label);
            }
        }
    }

    #[test]
    fn hyperlinks_extend_the_context_graph() {
        // A book references its author by IDREF: with hyperlink resolution
        // the author's neighborhood reaches the book's, helping both sides.
        let xml = r##"<library>
            <performers><performer id="p1"><name>Kelly</name></performer></performers>
            <films><picture ref="p1"><cast><star>Stewart</star></cast></picture></films>
        </library>"##;
        let sn = mini_wordnet();
        let with_links = Xsdf::new(sn, XsdfConfig::default())
            .disambiguate_str(xml)
            .unwrap();
        assert!(with_links.semantic_tree.tree().link_count() > 0);
        // "Kelly" sits under performers; through the link its sphere also
        // sees picture/cast/star, and it resolves to the actress.
        assert_eq!(
            with_links.assignment_for_label("kelly"),
            Some("kelly.grace")
        );
        let without = Xsdf::new(
            sn,
            XsdfConfig {
                resolve_hyperlinks: false,
                ..XsdfConfig::default()
            },
        )
        .disambiguate_str(xml)
        .unwrap();
        assert_eq!(without.semantic_tree.tree().link_count(), 0);
    }

    #[test]
    fn compound_fallback_tie_keeps_first_sense() {
        // Regression for the tie-break contract divergence: the compound
        // one-token-unknown fallback was built on keep-last (`max_by`)
        // semantics while every other path kept the first maximum. Two
        // hand-built twin concepts — identical lemmas, glosses, frequency,
        // and taxonomy — force an exact positive tie; the keep-first
        // contract must pick the earlier sense (the pre-fix fallback
        // picked the later one).
        use semnet::{NetworkBuilder, PartOfSpeech};
        let mut b = NetworkBuilder::new();
        b.concept(
            "anchor.n",
            &["anchor"],
            "the shared anchor concept of the twins",
            10,
            PartOfSpeech::Noun,
        );
        b.noun(
            "twin.a",
            &["twin"],
            "one of two identical concepts",
            5,
            "anchor.n",
        );
        b.noun(
            "twin.b",
            &["twin"],
            "one of two identical concepts",
            5,
            "anchor.n",
        );
        let sn = b.build().unwrap();
        let senses = sn.senses("twin");
        assert_eq!(senses.len(), 2);
        // "blank" is unknown to this lexicon, so the compound label
        // "blank twin" takes the one-sided fallback over "twin"'s senses.
        let result = Xsdf::new(&sn, XsdfConfig::default())
            .disambiguate_str("<anchor><blank_twin/></anchor>")
            .unwrap();
        let report = result
            .reports
            .iter()
            .find(|r| r.label == "blank twin")
            .expect("compound label report");
        let (choice, score) = report.chosen.expect("tied positive score must annotate");
        assert!(score > 0.0, "twins must gather real evidence: {score}");
        let first_key = &sn.concept(senses[0]).key;
        match choice {
            SenseChoice::Single(c) => assert_eq!(&sn.concept(c).key, first_key),
            SenseChoice::Pair(..) => panic!("one-sided fallback must yield a single sense"),
        }
    }

    #[test]
    fn sense_pair_budget_counts_single_evaluations() {
        // Regression for the budget unit mismatch: a compound candidate
        // pair evaluates both token senses against the context
        // (Equation 10), so it must draw two budget units where a
        // single-sense candidate draws one. Pre-fix, the pair loop ticked
        // once per pair, making --max-sense-pairs mean different work
        // depending on label shape.
        let sn = mini_wordnet();
        let xsdf = Xsdf::new(sn, XsdfConfig::default());
        let doc = xmltree::parse("<films><star_picture/><cast/><actor/></films>").unwrap();
        let tree = xsdf.build_tree(&doc);
        let sim = CombinedSimilarity::default();

        for (label, units_per_candidate) in [("star picture", 2), ("cast", 1)] {
            let mut ambiguities = xsdf.select(&tree);
            ambiguities.retain(|na| tree.label(na.node) == label);
            assert_eq!(ambiguities.len(), 1, "{label}");
            let candidates =
                disambiguation_candidates(sn, label, tree.node(ambiguities[0].node).kind);
            let units = units_per_candidate * candidates.candidate_count() as u64;

            let exact = Guard::unlimited().with_max_sense_pairs(units);
            xsdf.disambiguate_selected_guarded(&tree, &ambiguities, &sim, &exact)
                .unwrap_or_else(|e| panic!("{label}: budget {units} must suffice: {e}"));
            assert_eq!(exact.pairs_scored(), units, "{label}");

            let short = Guard::unlimited().with_max_sense_pairs(units - 1);
            let err = xsdf
                .disambiguate_selected_guarded(&tree, &ambiguities, &sim, &short)
                .expect_err("one unit short must trip the budget");
            match err {
                GuardError::LimitExceeded { which, .. } => {
                    assert_eq!(which, crate::guard::LimitKind::SensePairs, "{label}")
                }
                other => panic!("{label}: unexpected error {other}"),
            }
        }
    }

    #[test]
    fn gate_boundary_score_at_threshold_abstains_monosemous_passes() {
        // Boundary pins for the annotation gate: at radius 0 every sphere
        // is empty and every concept score is exactly 0.0 == min_score, so
        // polysemous targets sit precisely on the threshold — they must
        // abstain (strict >) — while monosemous targets annotate even with
        // zero evidence (their sense is certain a priori).
        let cfg = XsdfConfig {
            radius: 0,
            ..XsdfConfig::default()
        };
        let result = run(FIGURE1_DOC1, cfg);
        let mut saw_polysemous = false;
        let mut saw_monosemous = false;
        for r in result.reports.iter().filter(|r| r.selected) {
            if r.candidates > 1 {
                saw_polysemous = true;
                assert!(
                    r.chosen.is_none(),
                    "{} scored exactly min_score and must abstain",
                    r.label
                );
            } else if r.candidates == 1 {
                saw_monosemous = true;
                let (_, score) = r.chosen.expect("monosemous targets bypass the gate");
                assert_eq!(score, 0.0, "{}", r.label);
            }
        }
        assert!(
            saw_polysemous && saw_monosemous,
            "{saw_polysemous} {saw_monosemous}"
        );
    }

    fn assert_reports_bit_identical(a: &DisambiguationResult, b: &DisambiguationResult) {
        assert_eq!(a.reports.len(), b.reports.len());
        for (ra, rb) in a.reports.iter().zip(&b.reports) {
            match (ra.chosen, rb.chosen) {
                (None, None) => {}
                (Some((ca, sa)), Some((cb, sb))) => {
                    assert_eq!(ca, cb, "{}", ra.label);
                    assert_eq!(sa.to_bits(), sb.to_bits(), "{}: {sa} vs {sb}", ra.label);
                }
                other => panic!("{}: {:?}", ra.label, other),
            }
        }
    }

    #[test]
    fn exact_pruning_is_bit_identical_across_processes_and_radii() {
        let compound_doc = "<films><star_picture/><cast/><actor/></films>";
        for process in [
            DisambiguationProcess::ConceptBased,
            DisambiguationProcess::ContextBased,
            DisambiguationProcess::Combined {
                concept: 0.6,
                context: 0.4,
            },
        ] {
            for radius in [1, 2, 3] {
                for xml in [FIGURE1_DOC1, FIGURE1_DOC2, compound_doc] {
                    let base = XsdfConfig {
                        radius,
                        process,
                        ..XsdfConfig::default()
                    };
                    let pruned_cfg = XsdfConfig {
                        prune: crate::prune::PruningConfig::exact(),
                        ..base.clone()
                    };
                    assert_reports_bit_identical(&run(xml, base), &run(xml, pruned_cfg));
                }
            }
        }
    }

    #[test]
    fn exact_pruning_actually_prunes_polysemous_targets() {
        let cfg = XsdfConfig {
            prune: crate::prune::PruningConfig::exact(),
            ..XsdfConfig::default()
        };
        let xsdf = Xsdf::new(mini_wordnet(), cfg);
        let doc = xmltree::parse(FIGURE1_DOC1).unwrap();
        let tree = xsdf.build_tree(&doc);
        let ambiguities = xsdf.select(&tree);
        let sim = CombinedSimilarity::default();
        let guard = Guard::unlimited();
        xsdf.disambiguate_selected_guarded(&tree, &ambiguities, &sim, &guard)
            .unwrap();
        assert!(
            guard.candidates_pruned() > 0,
            "the polysemous Figure 1 document must see abandoned candidates"
        );
    }

    #[test]
    fn density_pruning_is_deterministic_and_bounded() {
        let cfg = XsdfConfig {
            prune: crate::prune::PruningConfig::density(2),
            ..XsdfConfig::default()
        };
        let a = run(FIGURE1_DOC1, cfg.clone());
        let b = run(FIGURE1_DOC1, cfg);
        // Deterministic: two runs agree bit-for-bit.
        assert_reports_bit_identical(&a, &b);
        assert!(a.assigned_count() > 0);
        // Bounded divergence: when the screened run picks the same sense
        // as the unpruned run, the score is bit-identical (survivors keep
        // the exact arithmetic); Figure 1's strong winners must survive a
        // K=2 screen.
        let unpruned = run(FIGURE1_DOC1, XsdfConfig::default());
        assert_eq!(a.assignment_for_label("cast"), Some("cast.actors"));
        assert_eq!(a.assignment_for_label("kelly"), Some("kelly.grace"));
        for (ra, ru) in a.reports.iter().zip(&unpruned.reports) {
            if let (Some((ca, sa)), Some((cu, su))) = (ra.chosen, ru.chosen) {
                if ca == cu {
                    assert_eq!(sa.to_bits(), su.to_bits(), "{}", ra.label);
                }
            }
        }
    }

    #[test]
    fn budgeted_pruning_degrades_instead_of_tripping() {
        // A budget smaller than the candidate list: the unbudgeted run
        // trips the sense-pair limit mid-target, the budgeted run screens
        // the list down to what the budget affords and completes.
        let sn = mini_wordnet();
        let doc = xmltree::parse(FIGURE1_DOC1).unwrap();
        let sim = CombinedSimilarity::default();

        let plain = Xsdf::new(sn, XsdfConfig::default());
        let tree = plain.build_tree(&doc);
        let mut ambiguities = plain.select(&tree);
        ambiguities.retain(|na| tree.label(na.node) == "cast");
        assert_eq!(ambiguities.len(), 1);
        let senses = disambiguation_candidates(sn, "cast", tree.node(ambiguities[0].node).kind);
        let budget = senses.candidate_count() as u64 - 2;

        let guard = Guard::unlimited().with_max_sense_pairs(budget);
        plain
            .disambiguate_selected_guarded(&tree, &ambiguities, &sim, &guard)
            .expect_err("unbudgeted run must trip the limit");

        let budgeted = Xsdf::new(
            sn,
            XsdfConfig {
                prune: crate::prune::PruningConfig {
                    early_exit: true,
                    budgeted: true,
                    ..crate::prune::PruningConfig::default()
                },
                ..XsdfConfig::default()
            },
        );
        let guard = Guard::unlimited().with_max_sense_pairs(budget);
        let result = budgeted
            .disambiguate_selected_guarded(&tree, &ambiguities, &sim, &guard)
            .expect("budgeted run must degrade gracefully");
        assert!(guard.pairs_scored() <= budget);
        assert!(guard.candidates_pruned() > 0);
        // The densest candidate survives the screen and still wins.
        assert_eq!(result.assignment_for_label("cast"), Some("cast.actors"));
    }

    #[test]
    fn pruned_batch_matches_unpruned_batch_across_threads() {
        let sn = mini_wordnet();
        let docs: Vec<xmltree::Document> = [FIGURE1_DOC1, FIGURE1_DOC2, FIGURE1_DOC1]
            .iter()
            .map(|xml| xmltree::parse(xml).unwrap())
            .collect();
        let plain = Xsdf::new(sn, XsdfConfig::default());
        let pruned = Xsdf::new(
            sn,
            XsdfConfig {
                prune: crate::prune::PruningConfig::exact(),
                ..XsdfConfig::default()
            },
        );
        let trees: Vec<XmlTree> = docs.iter().map(|d| plain.build_tree(d)).collect();
        let refs: Vec<&XmlTree> = trees.iter().collect();
        let baseline = plain.disambiguate_batch(&refs, 1);
        for threads in [1, 2, 3] {
            let got = pruned.disambiguate_batch(&refs, threads);
            assert_eq!(baseline.len(), got.len());
            for (a, b) in baseline.iter().zip(&got) {
                assert_reports_bit_identical(a, b);
            }
        }
    }

    #[test]
    fn annotated_xml_output_is_produced() {
        let result = run(FIGURE1_DOC1, XsdfConfig::default());
        let xml = result.semantic_tree.to_annotated_xml();
        assert!(xml.contains("concept=\"cast.actors\""));
        assert!(xml.contains("concept=\"kelly.grace\""));
    }
}
