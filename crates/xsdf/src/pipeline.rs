//! The end-to-end XSDF pipeline (Figure 3): parse → pre-process → select
//! targets → disambiguate → semantic XML tree.

use semnet::{ConceptId, SemanticNetwork};
use semsim::{CombinedSimilarity, SimilarityCache};
use xmltree::semantic::SenseAnnotation;
use xmltree::tree::{ContentMode, TreeBuilder};
use xmltree::{NodeId, ParseError, SemanticTree, XmlTree};

use crate::ambiguity::{select_targets, NodeAmbiguity};
use crate::concept_based::ConceptContext;
use crate::config::XsdfConfig;
use crate::context_based::ContextVectorScorer;
use crate::guard::{Guard, GuardError};
use crate::senses::{disambiguation_candidates, LingTokenizer, SenseCandidates};

/// The sense (or sense pair, for compound labels) chosen for a target node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenseChoice {
    /// One concept for a single-token label.
    Single(ConceptId),
    /// One concept per token of an unmatched compound label.
    Pair(ConceptId, ConceptId),
}

impl SenseChoice {
    /// The primary concept (the first of a pair).
    pub fn primary(self) -> ConceptId {
        match self {
            Self::Single(c) | Self::Pair(c, _) => c,
        }
    }
}

/// Per-node outcome of a disambiguation run.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// The tree node.
    pub node: NodeId,
    /// Its processed label.
    pub label: String,
    /// Its ambiguity degree (Definition 3).
    pub ambiguity: f64,
    /// Whether it was selected as a disambiguation target.
    pub selected: bool,
    /// Number of candidate senses (sense pairs for compounds).
    pub candidates: usize,
    /// The winning sense and its score, when one was assigned.
    pub chosen: Option<(SenseChoice, f64)>,
}

/// The result of running XSDF over one document.
#[derive(Debug, Clone)]
pub struct DisambiguationResult {
    /// The semantically augmented tree (Figure 4.b).
    pub semantic_tree: SemanticTree,
    /// Per-node reports in preorder.
    pub reports: Vec<NodeReport>,
}

impl DisambiguationResult {
    /// Nodes that were selected as targets.
    pub fn targets(&self) -> impl Iterator<Item = &NodeReport> {
        self.reports.iter().filter(|r| r.selected)
    }

    /// Number of targets that received a sense.
    pub fn assigned_count(&self) -> usize {
        self.reports.iter().filter(|r| r.chosen.is_some()).count()
    }

    /// Convenience lookup: the concept key assigned to the first node with
    /// the given label.
    pub fn assignment_for_label(&self, label: &str) -> Option<&str> {
        self.reports
            .iter()
            .find(|r| r.label == label && r.chosen.is_some())
            .and_then(|r| self.semantic_tree.sense(r.node).map(|s| s.concept.as_str()))
    }
}

/// The XML Semantic Disambiguation Framework: a reference semantic network
/// plus a pipeline configuration.
pub struct Xsdf<'sn> {
    sn: &'sn SemanticNetwork,
    config: XsdfConfig,
}

impl<'sn> Xsdf<'sn> {
    /// Creates a framework instance over the given network.
    pub fn new(sn: &'sn SemanticNetwork, config: XsdfConfig) -> Self {
        Self { sn, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &XsdfConfig {
        &self.config
    }

    /// The reference semantic network.
    pub fn network(&self) -> &'sn SemanticNetwork {
        self.sn
    }

    /// Parses an XML string and disambiguates it.
    pub fn disambiguate_str(&self, xml: &str) -> Result<DisambiguationResult, ParseError> {
        let doc = xmltree::parse(xml)?;
        Ok(self.disambiguate_document(&doc))
    }

    /// Builds the pre-processed tree for a parsed document and
    /// disambiguates it.
    pub fn disambiguate_document(&self, doc: &xmltree::Document) -> DisambiguationResult {
        let tree = self.build_tree(doc);
        self.disambiguate_tree(&tree)
    }

    /// Builds the rooted ordered labeled tree with linguistic
    /// pre-processing, honoring the structure-only / structure-and-content
    /// configuration.
    pub fn build_tree(&self, doc: &xmltree::Document) -> XmlTree {
        let mode = if self.config.structure_and_content {
            ContentMode::StructureAndContent
        } else {
            ContentMode::StructureOnly
        };
        let mut build = TreeBuilder::with_tokenizer(LingTokenizer::new(self.sn))
            .content_mode(mode)
            .build(doc)
            // invariant: the parser rejects rootless input, so every
            // `Document` that reaches here has a root element
            .expect("document must have a root element");
        if self.config.resolve_hyperlinks {
            let links = xmltree::links::resolve_links(doc);
            xmltree::links::install_links(&mut build, &links);
        }
        build.tree
    }

    /// Runs selection + disambiguation over an already-built tree.
    pub fn disambiguate_tree(&self, tree: &XmlTree) -> DisambiguationResult {
        self.run(tree, None)
    }

    /// Disambiguates only the given nodes (the paper's evaluation protocol:
    /// target nodes are pre-selected, then disambiguated). Selection
    /// (ambiguity threshold) still applies within the restricted set;
    /// reports cover only the requested nodes, in preorder.
    pub fn disambiguate_nodes(&self, tree: &XmlTree, nodes: &[NodeId]) -> DisambiguationResult {
        self.run(tree, Some(nodes))
    }

    /// Disambiguates an already-built tree, memoizing pair similarities in
    /// the caller-supplied measure. This is the entry point for concurrent
    /// batch engines: build one shared cache, wrap it per worker in a
    /// [`CombinedSimilarity::with_cache`], and every document benefits from
    /// pairs scored for the others.
    pub fn disambiguate_tree_with<C: SimilarityCache>(
        &self,
        tree: &XmlTree,
        sim: &CombinedSimilarity<C>,
    ) -> DisambiguationResult {
        self.disambiguate_selected(tree, &self.select(tree), sim)
    }

    /// Stage 2 of the pipeline (Section 3.3): computes the ambiguity degree
    /// of every node and marks selected targets per the configured
    /// threshold policy. Exposed so staged callers (e.g. batch engines
    /// timing each stage) can run selection and disambiguation separately;
    /// feed the result to [`Xsdf::disambiguate_selected`].
    pub fn select(&self, tree: &XmlTree) -> Vec<NodeAmbiguity> {
        select_targets(
            self.sn,
            tree,
            self.config.ambiguity_weights,
            self.config.threshold,
        )
    }

    /// [`Xsdf::select`] under a resource [`Guard`]: checks the tree-size
    /// bound and the deadline before computing ambiguity degrees, and the
    /// selected-target bound after. Batch engines use this so one
    /// mega-fanout or hyper-polysemous document degrades into a
    /// per-document error instead of starving its worker.
    pub fn select_guarded(
        &self,
        tree: &XmlTree,
        guard: &Guard,
    ) -> Result<Vec<NodeAmbiguity>, GuardError> {
        guard.check_nodes(tree.len())?;
        guard.check_deadline()?;
        let ambiguities = self.select(tree);
        guard.check_targets(ambiguities.iter().filter(|a| a.selected).count())?;
        Ok(ambiguities)
    }

    fn run(&self, tree: &XmlTree, restrict: Option<&[NodeId]>) -> DisambiguationResult {
        let mut ambiguities = self.select(tree);
        if let Some(nodes) = restrict {
            let wanted: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
            ambiguities.retain(|na| wanted.contains(&na.node));
        }
        let sim = CombinedSimilarity::new(self.config.similarity);
        self.disambiguate_selected(tree, &ambiguities, &sim)
    }

    /// Stage 4 of the pipeline: scores and annotates the given
    /// (pre-selected) targets, reporting one entry per element of
    /// `ambiguities` in order.
    pub fn disambiguate_selected<C: SimilarityCache>(
        &self,
        tree: &XmlTree,
        ambiguities: &[NodeAmbiguity],
        sim: &CombinedSimilarity<C>,
    ) -> DisambiguationResult {
        self.disambiguate_selected_guarded(tree, ambiguities, sim, &Guard::unlimited())
            // invariant: an unlimited guard has no bounds, so no check fails
            .expect("unlimited guard cannot trip")
    }

    /// [`Xsdf::disambiguate_selected`] under a resource [`Guard`]: the
    /// deadline is re-checked per target and every 32 scored sense pairs,
    /// and each candidate evaluation draws on the sense-pair budget, so a
    /// runaway document returns a partial-result error instead of stalling
    /// its worker. The partial work is discarded — callers get `Err`, never
    /// a half-annotated tree.
    pub fn disambiguate_selected_guarded<C: SimilarityCache>(
        &self,
        tree: &XmlTree,
        ambiguities: &[NodeAmbiguity],
        sim: &CombinedSimilarity<C>,
        guard: &Guard,
    ) -> Result<DisambiguationResult, GuardError> {
        let cfg = &self.config;
        let (w_concept, w_context) = cfg.process.weights();

        let mut semantic_tree = SemanticTree::new(tree.clone());
        let mut reports = Vec::with_capacity(tree.len());

        for na in ambiguities {
            guard.check_deadline()?;
            let node = na.node;
            let label = tree.label(node).to_string();
            let candidates = disambiguation_candidates(self.sn, &label, tree.node(node).kind);
            let candidate_count = candidates.candidate_count();
            let mut report = NodeReport {
                node,
                label,
                ambiguity: na.degree,
                selected: na.selected,
                candidates: candidate_count,
                chosen: None,
            };
            if na.selected && candidate_count > 0 {
                if let Some((choice, score)) = self.score_candidates(
                    tree,
                    node,
                    &candidates,
                    sim,
                    w_concept,
                    w_context,
                    guard,
                )? {
                    if score > cfg.min_score || candidate_count == 1 {
                        self.annotate(&mut semantic_tree, node, choice, score);
                        report.chosen = Some((choice, score));
                    }
                }
            }
            reports.push(report);
        }
        Ok(DisambiguationResult {
            semantic_tree,
            reports,
        })
    }

    /// Scores every candidate sense of a target and returns the best. Each
    /// candidate evaluation ticks the guard's sense-pair budget.
    #[allow(clippy::too_many_arguments)]
    fn score_candidates<C: SimilarityCache>(
        &self,
        tree: &XmlTree,
        node: NodeId,
        candidates: &SenseCandidates,
        sim: &CombinedSimilarity<C>,
        w_concept: f64,
        w_context: f64,
        guard: &Guard,
    ) -> Result<Option<(SenseChoice, f64)>, GuardError> {
        let radius = self.config.radius;
        // Build each scorer lazily: pure processes need only one of them.
        let concept_ctx = (w_concept > 0.0).then(|| {
            ConceptContext::build_with_policy(self.sn, tree, node, radius, self.config.distance)
        });
        let context_scorer = (w_context > 0.0).then(|| {
            ContextVectorScorer::build(tree, node, radius)
                .with_measure(self.config.vector_similarity)
        });

        let combined_single = |s: ConceptId| -> f64 {
            let c = concept_ctx
                .as_ref()
                .map_or(0.0, |ctx| ctx.score_single(self.sn, sim, s));
            let x = context_scorer
                .as_ref()
                .map_or(0.0, |cs| cs.score_single_cached(self.sn, s, sim.cache()));
            w_concept * c + w_context * x
        };
        let combined_pair = |a: ConceptId, b: ConceptId| -> f64 {
            let c = concept_ctx
                .as_ref()
                .map_or(0.0, |ctx| ctx.score_pair(self.sn, sim, a, b));
            let x = context_scorer
                .as_ref()
                .map_or(0.0, |cs| cs.score_pair(self.sn, a, b));
            w_concept * c + w_context * x
        };
        // Tie-breaking is part of the determinism contract: the `Single`
        // branch historically keeps the *first* maximum, the compound
        // fallback (built on `Iterator::max_by`) kept the *last*.
        let best_single = |senses: &[ConceptId],
                           keep_last_tie: bool|
         -> Result<Option<(SenseChoice, f64)>, GuardError> {
            let mut best: Option<(SenseChoice, f64)> = None;
            for &s in senses {
                guard.tick_sense_pair()?;
                let score = combined_single(s);
                let better = match best {
                    None => true,
                    Some((_, b)) => score > b || (keep_last_tie && score == b),
                };
                if better {
                    best = Some((SenseChoice::Single(s), score));
                }
            }
            Ok(best)
        };

        match candidates {
            SenseCandidates::Unknown => Ok(None),
            SenseCandidates::Single(senses) => best_single(senses, false),
            SenseCandidates::Compound { first, second } => {
                // One of the token lists may be empty (token unknown to the
                // lexicon): fall back to single-token choice.
                if first.is_empty() {
                    return best_single(second, true);
                }
                if second.is_empty() {
                    return best_single(first, true);
                }
                let mut best: Option<(SenseChoice, f64)> = None;
                for &a in first {
                    for &b in second {
                        guard.tick_sense_pair()?;
                        let score = combined_pair(a, b);
                        if best.as_ref().is_none_or(|&(_, bst)| score > bst) {
                            best = Some((SenseChoice::Pair(a, b), score));
                        }
                    }
                }
                Ok(best)
            }
        }
    }

    /// Disambiguates a batch of trees in parallel with scoped threads
    /// (whole-document parallelism: each tree is independent). `threads`
    /// is clamped to the batch size; 0 or 1 runs sequentially.
    ///
    /// ```
    /// use xsdf::{Xsdf, XsdfConfig};
    /// let sn = semnet::mini_wordnet();
    /// let xsdf = Xsdf::new(sn, XsdfConfig::default());
    /// let docs: Vec<_> = (0..4)
    ///     .map(|_| xmltree::parse("<cast><star>Kelly</star></cast>").unwrap())
    ///     .collect();
    /// let trees: Vec<_> = docs.iter().map(|d| xsdf.build_tree(d)).collect();
    /// let tree_refs: Vec<&xmltree::XmlTree> = trees.iter().collect();
    /// let results = xsdf.disambiguate_batch(&tree_refs, 2);
    /// assert_eq!(results.len(), 4);
    /// ```
    pub fn disambiguate_batch(
        &self,
        trees: &[&XmlTree],
        threads: usize,
    ) -> Vec<DisambiguationResult> {
        let threads = threads.clamp(1, trees.len().max(1));
        if threads <= 1 || trees.len() <= 1 {
            return trees.iter().map(|t| self.disambiguate_tree(t)).collect();
        }
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<DisambiguationResult>>> =
            trees.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= trees.len() {
                        break;
                    }
                    let result = self.disambiguate_tree(trees[i]);
                    // invariant: slot i is locked only by the one worker
                    // that claimed index i, and never across a panic (the
                    // result is computed before the lock is taken), so the
                    // mutex cannot be contended or poisoned
                    *results[i].lock().expect("no panics hold the lock") = Some(result);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                // invariant: a worker panic propagates out of the scope
                // above before this runs, so every slot was filled and no
                // lock is poisoned
                slot.into_inner()
                    .expect("lock")
                    .expect("every index processed")
            })
            .collect()
    }

    fn annotate(
        &self,
        semantic_tree: &mut SemanticTree,
        node: NodeId,
        choice: SenseChoice,
        score: f64,
    ) {
        let concept = match choice {
            SenseChoice::Single(c) => self.sn.concept(c).key.clone(),
            SenseChoice::Pair(a, b) => {
                format!("{}+{}", self.sn.concept(a).key, self.sn.concept(b).key)
            }
        };
        let gloss = match choice {
            SenseChoice::Single(c) => Some(self.sn.concept(c).gloss.clone()),
            SenseChoice::Pair(a, _) => Some(self.sn.concept(a).gloss.clone()),
        };
        semantic_tree.annotate(
            node,
            SenseAnnotation {
                concept,
                gloss,
                score,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DisambiguationProcess, ThresholdPolicy};
    use semnet::mini_wordnet;

    const FIGURE1_DOC1: &str = r#"<films>
        <picture title="Rear Window">
            <director>Hitchcock</director>
            <year>1954</year>
            <genre>mystery</genre>
            <cast><star>Stewart</star><star>Kelly</star></cast>
            <plot>A wheelchair bound photographer spies on his neighbors</plot>
        </picture>
    </films>"#;

    const FIGURE1_DOC2: &str = r#"<movies>
        <movie year="1954">
            <name>Rear Window</name>
            <directed_by>Alfred Hitchcock</directed_by>
            <actors>
                <actor><firstname>Grace</firstname><lastname>Kelly</lastname></actor>
                <actor><firstname>James</firstname><lastname>Stewart</lastname></actor>
            </actors>
        </movie>
    </movies>"#;

    fn run(xml: &str, config: XsdfConfig) -> DisambiguationResult {
        Xsdf::new(mini_wordnet(), config)
            .disambiguate_str(xml)
            .unwrap()
    }

    #[test]
    fn figure1_doc1_kelly_is_grace() {
        let result = run(FIGURE1_DOC1, XsdfConfig::default());
        assert_eq!(result.assignment_for_label("kelly"), Some("kelly.grace"));
    }

    #[test]
    fn figure1_doc1_cast_is_actors() {
        let result = run(FIGURE1_DOC1, XsdfConfig::default());
        assert_eq!(result.assignment_for_label("cast"), Some("cast.actors"));
    }

    #[test]
    fn figure1_doc1_star_is_performer() {
        let result = run(FIGURE1_DOC1, XsdfConfig::default());
        assert_eq!(result.assignment_for_label("star"), Some("star.performer"));
    }

    #[test]
    fn figure1_doc2_with_different_tagging_agrees() {
        // Figure 1's point: different structure/tagging, same entities.
        let result = run(FIGURE1_DOC2, XsdfConfig::default());
        assert_eq!(result.assignment_for_label("kelly"), Some("kelly.grace"));
        assert_eq!(
            result.assignment_for_label("stewart"),
            Some("stewart.james")
        );
        // movie resolves to the film sense.
        assert_eq!(result.assignment_for_label("movie"), Some("film.movie"));
    }

    #[test]
    fn context_based_process_runs() {
        let cfg = XsdfConfig {
            process: DisambiguationProcess::ContextBased,
            ..XsdfConfig::default()
        };
        let result = run(FIGURE1_DOC1, cfg);
        assert!(result.assigned_count() > 0);
    }

    #[test]
    fn combined_process_runs() {
        let cfg = XsdfConfig {
            process: DisambiguationProcess::Combined {
                concept: 0.5,
                context: 0.5,
            },
            ..XsdfConfig::default()
        };
        let result = run(FIGURE1_DOC1, cfg);
        assert_eq!(result.assignment_for_label("cast"), Some("cast.actors"));
    }

    #[test]
    fn threshold_one_selects_nothing() {
        let cfg = XsdfConfig {
            threshold: ThresholdPolicy::Fixed(1.1),
            ..XsdfConfig::default()
        };
        let result = run(FIGURE1_DOC1, cfg);
        assert_eq!(result.assigned_count(), 0);
        assert!(result.targets().count() == 0);
    }

    #[test]
    fn structure_only_has_no_value_nodes() {
        let cfg = XsdfConfig {
            structure_and_content: false,
            ..XsdfConfig::default()
        };
        let result = run(FIGURE1_DOC1, cfg);
        assert!(result.reports.iter().all(|r| r.label != "kelly"));
        // but tag names still disambiguated
        assert_eq!(result.assignment_for_label("cast"), Some("cast.actors"));
    }

    #[test]
    fn reports_cover_every_node_in_preorder() {
        let result = run(FIGURE1_DOC1, XsdfConfig::default());
        let n = result.semantic_tree.tree().len();
        assert_eq!(result.reports.len(), n);
        for (i, r) in result.reports.iter().enumerate() {
            assert_eq!(r.node.index(), i);
        }
    }

    #[test]
    fn scores_are_recorded_and_bounded() {
        let result = run(FIGURE1_DOC1, XsdfConfig::default());
        for r in &result.reports {
            if let Some((_, score)) = &r.chosen {
                assert!((0.0..=1.0).contains(score), "{}: {score}", r.label);
            }
        }
    }

    #[test]
    fn semantic_tree_annotations_match_reports() {
        let result = run(FIGURE1_DOC1, XsdfConfig::default());
        let annotated: Vec<_> = result.semantic_tree.annotations().map(|(n, _)| n).collect();
        let chosen: Vec<_> = result
            .reports
            .iter()
            .filter(|r| r.chosen.is_some())
            .map(|r| r.node)
            .collect();
        assert_eq!(annotated, chosen);
    }

    #[test]
    fn compound_label_gets_pair_or_single() {
        let result = run(
            "<films><star_picture/><cast/><actor/></films>",
            XsdfConfig::default(),
        );
        let report = result
            .reports
            .iter()
            .find(|r| r.label == "star picture")
            .unwrap();
        assert!(report.chosen.is_some());
        let concept = result.semantic_tree.sense(report.node).unwrap();
        assert!(
            concept.concept.contains('+'),
            "expected pair key, got {}",
            concept.concept
        );
    }

    #[test]
    fn min_score_gate_abstains_on_weak_evidence() {
        let cfg = XsdfConfig {
            min_score: 0.99,
            ..XsdfConfig::default()
        };
        let result = run(FIGURE1_DOC1, cfg);
        // With an absurd score floor, polysemous targets abstain; only
        // monosemous targets (candidate_count == 1) pass the gate.
        for r in &result.reports {
            if let Some((_, _)) = &r.chosen {
                assert_eq!(r.candidates, 1, "{} should have abstained", r.label);
            }
        }
    }

    #[test]
    fn radius_zero_yields_no_context_but_does_not_panic() {
        let cfg = XsdfConfig {
            radius: 0,
            ..XsdfConfig::default()
        };
        let result = run(FIGURE1_DOC1, cfg);
        // Concept scores are all zero (empty sphere): every selected node
        // with multiple senses keeps its first-scored candidate at 0.0 or
        // abstains; the run itself must succeed.
        assert_eq!(result.reports.len(), result.semantic_tree.tree().len());
    }

    #[test]
    fn batch_matches_sequential() {
        let sn = mini_wordnet();
        let xsdf = Xsdf::new(sn, XsdfConfig::default());
        let docs: Vec<xmltree::Document> = [FIGURE1_DOC1, FIGURE1_DOC2, FIGURE1_DOC1]
            .iter()
            .map(|xml| xmltree::parse(xml).unwrap())
            .collect();
        let trees: Vec<XmlTree> = docs.iter().map(|d| xsdf.build_tree(d)).collect();
        let refs: Vec<&XmlTree> = trees.iter().collect();
        let sequential = xsdf.disambiguate_batch(&refs, 1);
        let parallel = xsdf.disambiguate_batch(&refs, 3);
        assert_eq!(sequential.len(), parallel.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.assigned_count(), b.assigned_count());
            for (ra, rb) in a.reports.iter().zip(&b.reports) {
                assert_eq!(ra.chosen, rb.chosen, "{}", ra.label);
            }
        }
    }

    #[test]
    fn hyperlinks_extend_the_context_graph() {
        // A book references its author by IDREF: with hyperlink resolution
        // the author's neighborhood reaches the book's, helping both sides.
        let xml = r##"<library>
            <performers><performer id="p1"><name>Kelly</name></performer></performers>
            <films><picture ref="p1"><cast><star>Stewart</star></cast></picture></films>
        </library>"##;
        let sn = mini_wordnet();
        let with_links = Xsdf::new(sn, XsdfConfig::default())
            .disambiguate_str(xml)
            .unwrap();
        assert!(with_links.semantic_tree.tree().link_count() > 0);
        // "Kelly" sits under performers; through the link its sphere also
        // sees picture/cast/star, and it resolves to the actress.
        assert_eq!(
            with_links.assignment_for_label("kelly"),
            Some("kelly.grace")
        );
        let without = Xsdf::new(
            sn,
            XsdfConfig {
                resolve_hyperlinks: false,
                ..XsdfConfig::default()
            },
        )
        .disambiguate_str(xml)
        .unwrap();
        assert_eq!(without.semantic_tree.tree().link_count(), 0);
    }

    #[test]
    fn annotated_xml_output_is_produced() {
        let result = run(FIGURE1_DOC1, XsdfConfig::default());
        let xml = result.semantic_tree.to_annotated_xml();
        assert!(xml.contains("concept=\"cast.actors\""));
        assert!(xml.contains("concept=\"kelly.grace\""));
    }
}
