use xmltree::tree::TreeBuilder;
use xsdf::senses::LingTokenizer;

fn main() {
    let sn = semnet::mini_wordnet();
    let doc = xmltree::parse(
        "<films><picture><cast><star>Stewart</star><star>Kelly</star></cast><plot/></picture></films>",
    ).unwrap();
    let tree = TreeBuilder::with_tokenizer(LingTokenizer::new(sn))
        .build(&doc)
        .unwrap()
        .tree;
    let cast = tree.preorder().find(|&n| tree.label(n) == "cast").unwrap();
    let sim = semsim::CombinedSimilarity::default();
    let ctx = xsdf::concept_based::ConceptContext::build(sn, &tree, cast, 2);
    for key in [
        "cast.actors",
        "cast.mold",
        "cast.throw",
        "cast.plaster",
        "cast.appearance",
    ] {
        let c = sn.by_key(key).unwrap();
        println!(
            "{key}: concept_score = {:.4}",
            ctx.score_single(sn, &sim, c)
        );
    }
    println!("--- pairwise sims of cast senses vs context senses ---");
    for ckey in ["cast.actors", "cast.mold", "cast.appearance"] {
        let c = sn.by_key(ckey).unwrap();
        for okey in [
            "star.performer",
            "star.celestial",
            "star.shape",
            "kelly.grace",
            "picture.image",
            "film.movie",
            "plot.story",
            "stewart.james",
        ] {
            let o = sn.by_key(okey).unwrap();
            let wp = semsim::wu_palmer(sn, c, o);
            let li = semsim::lin(sn, c, o);
            let gl = semsim::extended_gloss_overlap(sn, c, o);
            println!(
                "{ckey:18} vs {okey:18}: wp={wp:.3} lin={li:.3} gloss={gl:.3} comb={:.3}",
                (wp + li + gl) / 3.0
            );
        }
        println!();
    }
}
