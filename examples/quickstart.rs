//! Quickstart: disambiguate the paper's Figure 1 document and print the
//! semantically annotated result.
//!
//! Run with: `cargo run -p xsdf --example quickstart`

use xsdf::{Xsdf, XsdfConfig};

const DOC: &str = r#"<?xml version="1.0"?>
<films>
  <picture title="Rear Window">
    <director>Hitchcock</director>
    <year>1954</year>
    <genre>mystery</genre>
    <cast>
      <star>Stewart</star>
      <star>Kelly</star>
    </cast>
    <plot>A wheelchair bound photographer spies on his neighbors</plot>
  </picture>
</films>"#;

fn main() {
    // 1. A reference semantic network: the built-in MiniWordNet (use
    //    semnet::format::from_text to load your own WordNet export).
    let network = semnet::mini_wordnet();

    // 2. The framework with its default configuration (threshold 0 =
    //    disambiguate every node; sphere radius 2; concept-based process).
    let xsdf = Xsdf::new(network, XsdfConfig::default());

    // 3. Run the full pipeline on an XML string.
    let result = xsdf.disambiguate_str(DOC).expect("well-formed XML");

    println!(
        "Resolved {} of {} nodes:\n",
        result.assigned_count(),
        result.reports.len()
    );
    for report in &result.reports {
        if let Some((_choice, score)) = &report.chosen {
            let sense = result.semantic_tree.sense(report.node).unwrap();
            println!(
                "  {:12} -> {:20} (score {:.3}, ambiguity {:.3})",
                report.label, sense.concept, score, report.ambiguity
            );
            if let Some(gloss) = &sense.gloss {
                println!("               \"{gloss}\"");
            }
        }
    }

    println!(
        "\nAnnotated XML:\n{}",
        result.semantic_tree.to_annotated_xml()
    );
}
