//! Domain example: semantic clustering of heterogeneous XML documents —
//! the paper's XML classification/clustering application (references
//! [49, 53]).
//!
//! Documents from four domains (films, music, food, horticulture) are
//! disambiguated; each document becomes a bag of concept identifiers, and
//! documents are clustered by concept overlap. Tag-name clustering would
//! be fooled by shared labels like `title`, `name`, and `price`; concept
//! overlap is not, because those labels resolve to different senses (or
//! the shared concepts are outweighed by the domain concepts).
//!
//! Run with: `cargo run -p xsdf --example semantic_clustering`

use std::collections::BTreeSet;

use xsdf::{Xsdf, XsdfConfig};

const DOCS: &[(&str, &str)] = &[
    (
        "film-1",
        r#"<films><picture><director>Hitchcock</director><cast><star>Kelly</star></cast><genre>mystery</genre></picture></films>"#,
    ),
    (
        "film-2",
        r#"<movies><movie><title>the night</title><director>Welles</director><cast><star>Bogart</star></cast></movie></movies>"#,
    ),
    (
        "music-1",
        r#"<catalog><cd><title>blues</title><artist>Olsson</artist><track>7</track><company>Novak</company></cd></catalog>"#,
    ),
    (
        "music-2",
        r#"<catalog><cd><title>jazz</title><artist>Petrov</artist><country>Norway</country><price>12</price></cd></catalog>"#,
    ),
    (
        "menu-1",
        r#"<menu><food><name>waffle</name><description>waffle with cream and syrup</description><price>8</price></food></menu>"#,
    ),
    (
        "menu-2",
        r#"<menu><food><name>omelet</name><description>omelet with egg and bacon</description><calories>400</calories></food></menu>"#,
    ),
    (
        "plants-1",
        r#"<catalog><plant><common>rose</common><zone>5</zone><light>sun</light><price>3</price></plant></catalog>"#,
    ),
    (
        "plants-2",
        r#"<catalog><plant><common>fern</common><zone>4</zone><light>shade</light></plant></catalog>"#,
    ),
];

fn concept_set(xsdf: &Xsdf, xml: &str) -> BTreeSet<String> {
    let result = xsdf.disambiguate_str(xml).expect("well-formed XML");
    result
        .semantic_tree
        .annotations()
        .map(|(_, s)| s.concept.clone())
        .collect()
}

fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    if union == 0.0 {
        0.0
    } else {
        inter / union
    }
}

fn main() {
    let network = semnet::mini_wordnet();
    let xsdf = Xsdf::new(network, XsdfConfig::default());

    let sets: Vec<(&str, BTreeSet<String>)> = DOCS
        .iter()
        .map(|(name, xml)| (*name, concept_set(&xsdf, xml)))
        .collect();

    println!("Pairwise concept overlap (Jaccard):\n");
    print!("{:>10}", "");
    for (name, _) in &sets {
        print!("{name:>10}");
    }
    println!();
    for (name_a, set_a) in &sets {
        print!("{name_a:>10}");
        for (_, set_b) in &sets {
            print!("{:>10.2}", jaccard(set_a, set_b));
        }
        println!();
    }

    // Single-link clustering at a fixed threshold.
    let threshold = 0.25;
    let mut cluster_of: Vec<usize> = (0..sets.len()).collect();
    for i in 0..sets.len() {
        for j in (i + 1)..sets.len() {
            if jaccard(&sets[i].1, &sets[j].1) >= threshold {
                let (a, b) = (cluster_of[i], cluster_of[j]);
                let target = a.min(b);
                for c in cluster_of.iter_mut() {
                    if *c == a || *c == b {
                        *c = target;
                    }
                }
            }
        }
    }
    println!("\nClusters at Jaccard >= {threshold}:");
    let ids: BTreeSet<usize> = cluster_of.iter().copied().collect();
    for id in ids {
        let members: Vec<&str> = sets
            .iter()
            .enumerate()
            .filter(|(i, _)| cluster_of[*i] == id)
            .map(|(_, (name, _))| *name)
            .collect();
        println!("  {members:?}");
    }

    // The two documents of each domain must land together.
    for pair in [(0, 1), (2, 3), (4, 5), (6, 7)] {
        assert_eq!(
            cluster_of[pair.0], cluster_of[pair.1],
            "{} and {} should share a cluster",
            DOCS[pair.0].0, DOCS[pair.1].0
        );
    }
    println!("\n=> each domain's documents cluster together by shared concepts");
}
