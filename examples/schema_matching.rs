//! Domain example: XML schema matching via disambiguated tag concepts —
//! one of the applications motivating the paper (references [13, 55]).
//!
//! Two record schemas use different tag vocabularies. Matching tags
//! syntactically fails (`director` vs `directed_by`, `star` vs `actor`),
//! but after disambiguation each tag is a concept, and concepts can be
//! compared with the semantic similarity of Definition 9.
//!
//! Run with: `cargo run -p xsdf --example schema_matching`

use semsim::CombinedSimilarity;
use xsdf::{SenseChoice, Xsdf, XsdfConfig};

const SCHEMA_A: &str = r#"<films>
  <picture>
    <director>Hitchcock</director>
    <cast><star>Kelly</star></cast>
    <genre>mystery</genre>
  </picture>
</films>"#;

const SCHEMA_B: &str = r#"<movies>
  <movie>
    <directed_by>Alfred Hitchcock</directed_by>
    <actors><actor>Grace Kelly</actor></actors>
    <category>thriller</category>
  </movie>
</movies>"#;

/// Disambiguates a schema exemplar and returns `(tag label, concept)` for
/// every annotated element/attribute node.
fn tag_concepts(xsdf: &Xsdf, xml: &str) -> Vec<(String, semnet::ConceptId)> {
    let result = xsdf.disambiguate_str(xml).expect("well-formed XML");
    result
        .reports
        .iter()
        .filter(|r| result.semantic_tree.tree().node(r.node).kind != xmltree::NodeKind::ValueToken)
        .filter_map(|r| {
            r.chosen.as_ref().map(|(choice, _)| {
                let c = match choice {
                    SenseChoice::Single(c) => *c,
                    SenseChoice::Pair(a, _) => *a,
                };
                (r.label.clone(), c)
            })
        })
        .collect()
}

fn main() {
    let network = semnet::mini_wordnet();
    let xsdf = Xsdf::new(network, XsdfConfig::default());
    let sim = CombinedSimilarity::default();

    let tags_a = tag_concepts(&xsdf, SCHEMA_A);
    let tags_b = tag_concepts(&xsdf, SCHEMA_B);

    println!("Semantic tag correspondences (similarity of Definition 9):\n");
    println!(
        "{:<14} {:<14} {:<24} {:<24} sim",
        "schema A", "schema B", "concept A", "concept B"
    );
    let mut matched = 0;
    for (label_a, ca) in &tags_a {
        // Best match in schema B.
        let best = tags_b
            .iter()
            .map(|(label_b, cb)| (label_b, cb, sim.similarity(network, *ca, *cb)))
            .max_by(|x, y| x.2.total_cmp(&y.2));
        if let Some((label_b, cb, score)) = best {
            if score > 0.4 {
                matched += 1;
                println!(
                    "{:<14} {:<14} {:<24} {:<24} {score:.3}",
                    label_a,
                    label_b,
                    network.concept(*ca).key,
                    network.concept(*cb).key,
                );
            }
        }
    }
    println!("\n=> {matched} tag correspondences found across disjoint vocabularies");
    assert!(
        matched >= 3,
        "director/cast/genre should align with their counterparts"
    );
}
