//! Domain example: semantic-aware query rewriting and expansion — the
//! *first* application the paper's introduction motivates (references
//! [11, 40]: "expanding keyword queries by including semantically related
//! terms from XML documents to obtain relevant results").
//!
//! A keyword query ("star") over a heterogeneous movie corpus misses
//! documents that say `actor`, `performer`, or `lead`. After XSDF
//! disambiguation, both the query term and the documents live in concept
//! space: the query concept is expanded through the semantic network
//! (synonyms, hypernyms, hyponyms) and matched against each document's
//! disambiguated concepts.
//!
//! Run with: `cargo run -p xsdf --example query_expansion`

use std::collections::BTreeSet;

use semnet::graph::{concept_sphere, RelationFilter};
use xsdf::{Xsdf, XsdfConfig};

const CORPUS: &[(&str, &str)] = &[
    (
        "doc-1",
        r#"<films><picture><cast><star>Kelly</star></cast></picture></films>"#,
    ),
    (
        "doc-2",
        r#"<movies><movie><actors><actor>Grace Kelly</actor></actors></movie></movies>"#,
    ),
    (
        "doc-3",
        r#"<show><performer>Stewart</performer><stage>theater</stage></show>"#,
    ),
    (
        "doc-4",
        r#"<catalog><cd><artist>Olsson</artist><track>9</track></cd></catalog>"#,
    ),
    (
        "doc-5",
        r#"<menu><food><name>waffle</name><price>8</price></food></menu>"#,
    ),
];

fn main() {
    let sn = semnet::mini_wordnet();
    let xsdf = Xsdf::new(sn, XsdfConfig::default());

    // 1. Disambiguate every document into a set of concept keys.
    let doc_concepts: Vec<(&str, BTreeSet<String>)> = CORPUS
        .iter()
        .map(|(name, xml)| {
            let result = xsdf.disambiguate_str(xml).expect("well-formed corpus");
            let concepts = result
                .semantic_tree
                .annotations()
                .map(|(_, s)| s.concept.clone())
                .collect();
            (*name, concepts)
        })
        .collect();

    // 2. The user queries a bare keyword. Resolve it against the network;
    //    for a fair demo, pick the performing-arts reading as a film search
    //    UI would (the first sense in a movie vertical).
    let query = "star";
    let query_concept = sn
        .senses(query)
        .iter()
        .copied()
        .find(|&c| sn.concept(c).key == "star.performer")
        .expect("star has a performer sense");
    println!(
        "query keyword: {query:?} -> concept {}",
        sn.concept(query_concept).key
    );

    // 3. Expand the query concept through the semantic network: its
    //    synonyms plus everything within 2 semantic links (hypernyms,
    //    hyponyms, members — the paper's "semantically related terms").
    let mut expansion: BTreeSet<String> = BTreeSet::new();
    expansion.insert(sn.concept(query_concept).key.clone());
    for (concept, _) in concept_sphere(sn, query_concept, 2, &RelationFilter::All) {
        expansion.insert(sn.concept(concept).key.clone());
    }
    println!("\nexpanded to {} concepts, e.g.:", expansion.len());
    for key in expansion.iter().take(8) {
        println!("  {key}");
    }

    // 4. Match: a document is relevant if its concepts intersect the
    //    expansion.
    println!("\nresults:");
    let mut hits = Vec::new();
    for (name, concepts) in &doc_concepts {
        let matched: Vec<&String> = concepts.intersection(&expansion).collect();
        if !matched.is_empty() {
            hits.push(*name);
            println!("  {name}: matched via {matched:?}");
        }
    }
    println!(
        "\nnon-matches: {:?}",
        doc_concepts
            .iter()
            .map(|(n, _)| *n)
            .filter(|n| !hits.contains(n))
            .collect::<Vec<_>>()
    );

    // The syntactic query "star" only occurs in doc-1; semantic expansion
    // also finds the actor/performer documents but not music or food.
    assert!(hits.contains(&"doc-1"), "literal match");
    assert!(hits.contains(&"doc-2"), "actor document found via concepts");
    assert!(
        hits.contains(&"doc-3"),
        "performer document found via concepts"
    );
    assert!(
        !hits.contains(&"doc-5"),
        "the waffle stays out of the results"
    );
}
