//! Domain example: semantic-aware processing of a heterogeneous movie
//! catalog — the paper's Figure 1 scenario at scale.
//!
//! Two sources describe the same films with different tags and structure
//! (`<picture>` vs `<movie>`, `<star>` vs `<actor>`). After XSDF
//! disambiguation both collapse onto the same concept identifiers, so a
//! semantic-aware application can integrate them — the query-rewriting and
//! schema-matching use cases of the paper's introduction.
//!
//! Run with: `cargo run -p xsdf --example movie_catalog`

use std::collections::BTreeMap;

use xsdf::{Xsdf, XsdfConfig};

const SOURCE_A: &str = r#"<films>
  <picture title="Rear Window">
    <director>Hitchcock</director><genre>mystery</genre>
    <cast><star>Stewart</star><star>Kelly</star></cast>
  </picture>
  <picture title="Notorious">
    <director>Hitchcock</director><genre>thriller</genre>
    <cast><star>Grant</star><star>Bergman</star></cast>
  </picture>
</films>"#;

const SOURCE_B: &str = r#"<movies>
  <movie year="1954">
    <name>Rear Window</name>
    <directed_by>Alfred Hitchcock</directed_by>
    <actors>
      <actor><firstname>James</firstname><lastname>Stewart</lastname></actor>
      <actor><firstname>Grace</firstname><lastname>Kelly</lastname></actor>
    </actors>
  </movie>
</movies>"#;

fn concept_census(xsdf: &Xsdf, xml: &str) -> BTreeMap<String, usize> {
    let result = xsdf.disambiguate_str(xml).expect("well-formed XML");
    let mut census = BTreeMap::new();
    for (_, sense) in result.semantic_tree.annotations() {
        *census.entry(sense.concept.clone()).or_insert(0) += 1;
    }
    census
}

fn main() {
    let network = semnet::mini_wordnet();
    let xsdf = Xsdf::new(network, XsdfConfig::default());

    let census_a = concept_census(&xsdf, SOURCE_A);
    let census_b = concept_census(&xsdf, SOURCE_B);

    println!("Concepts from source A (films/picture/cast/star tagging):");
    for (concept, n) in &census_a {
        println!("  {n} x {concept}");
    }
    println!("\nConcepts from source B (movies/movie/actors tagging):");
    for (concept, n) in &census_b {
        println!("  {n} x {concept}");
    }

    let shared: Vec<&String> = census_a
        .keys()
        .filter(|k| census_b.contains_key(*k))
        .collect();
    println!(
        "\nShared concepts despite fully different tagging ({}):",
        shared.len()
    );
    for concept in &shared {
        println!("  {concept}");
    }
    assert!(
        shared.iter().any(|c| c.as_str() == "kelly.grace"),
        "both sources should resolve Kelly to Grace Kelly"
    );
    println!("\n=> integration key: both sources mention kelly.grace and stewart.james");
}
