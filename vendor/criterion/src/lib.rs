//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the slice of criterion's API the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `finish`, [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — as a simple
//! wall-clock harness: each benchmark is warmed up briefly, timed over
//! `sample_size` batches, and reported as median ns/iter on stdout. There
//! are no statistical refinements, plots, or saved baselines; the numbers
//! are indicative, not criterion-grade.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Collects timing state for one benchmark body.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
    samples: usize,
}

impl Bencher {
    /// Times the closure, adaptively choosing an iteration count so each
    /// sample batch takes roughly a millisecond.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up and batch-size calibration.
        let mut iters_per_batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(body());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_batch >= 1 << 20 {
                break;
            }
            iters_per_batch *= 4;
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(body());
            }
            per_iter.push(start.elapsed().as_secs_f64() * 1e9 / iters_per_batch as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        self.ns_per_iter = per_iter[per_iter.len() / 2];
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut body: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            ns_per_iter: 0.0,
            samples: self.sample_size,
        };
        body(&mut bencher);
        report(&id, bencher.ns_per_iter);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut body: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            ns_per_iter: 0.0,
            samples: self.sample_size,
        };
        body(&mut bencher);
        report(&format!("{}/{}", self.name, id.into()), bencher.ns_per_iter);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn report(id: &str, ns: f64) {
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{id:<48} time: {value:>10.3} {unit}/iter");
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function(format!("dyn_{}", 1), |b| b.iter(|| black_box(2) * 2));
        group.finish();
    }
}
