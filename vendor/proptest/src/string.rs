//! A generator-oriented subset of regular expressions, used by string
//! strategies (`"[a-z]{1,20}"` and friends).
//!
//! Supported syntax: literal characters, character classes `[a-z0-9_]`
//! (ranges and singletons, no negation), groups `(...)`, the escapes `\.`
//! `\-` `\\` and the category `\PC` (any printable, non-control character),
//! and the quantifiers `{n}`, `{n,m}`, `?`, `*`, `+` (the unbounded ones
//! capped at 8 repetitions).

use crate::test_runner::TestRng;

/// One parsed regex element.
enum Node {
    /// A fixed character.
    Literal(char),
    /// A character class: concrete choices to draw from.
    Class(Vec<(char, char)>),
    /// Any printable (non-control) character, `\PC`.
    Printable,
    /// A parenthesized sequence.
    Group(Vec<Quantified>),
}

/// A node plus its repetition bounds.
struct Quantified {
    node: Node,
    min: u32,
    max: u32,
}

/// A parsed generator-regex.
pub struct RegexGen {
    seq: Vec<Quantified>,
}

impl RegexGen {
    /// Parses the pattern, rejecting unsupported syntax.
    pub fn parse(pattern: &str) -> Result<Self, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let seq = parse_sequence(&chars, &mut pos, false)?;
        if pos != chars.len() {
            return Err(format!("unexpected {:?} at offset {pos}", chars[pos]));
        }
        Ok(Self { seq })
    }

    /// Generates one matching string.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        emit_sequence(&self.seq, rng, &mut out);
        out
    }
}

fn parse_sequence(
    chars: &[char],
    pos: &mut usize,
    in_group: bool,
) -> Result<Vec<Quantified>, String> {
    let mut seq = Vec::new();
    while *pos < chars.len() {
        let c = chars[*pos];
        if c == ')' {
            if in_group {
                return Ok(seq);
            }
            return Err("unmatched ')'".into());
        }
        let node = parse_atom(chars, pos)?;
        let (min, max) = parse_quantifier(chars, pos)?;
        seq.push(Quantified { node, min, max });
    }
    if in_group {
        return Err("unclosed '('".into());
    }
    Ok(seq)
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Result<Node, String> {
    match chars[*pos] {
        '(' => {
            *pos += 1;
            let inner = parse_sequence(chars, pos, true)?;
            if *pos >= chars.len() || chars[*pos] != ')' {
                return Err("unclosed '('".into());
            }
            *pos += 1;
            Ok(Node::Group(inner))
        }
        '[' => {
            *pos += 1;
            parse_class(chars, pos)
        }
        '\\' => {
            *pos += 1;
            let Some(&esc) = chars.get(*pos) else {
                return Err("dangling '\\'".into());
            };
            *pos += 1;
            match esc {
                'P' | 'p' => {
                    // Only the category `\PC` (not-control) is supported.
                    if chars.get(*pos) == Some(&'C') {
                        *pos += 1;
                        Ok(Node::Printable)
                    } else {
                        Err("only the \\PC category is supported".into())
                    }
                }
                '.' | '-' | '\\' | '(' | ')' | '[' | ']' | '{' | '}' | '+' | '*' | '?' => {
                    Ok(Node::Literal(esc))
                }
                other => Err(format!("unsupported escape \\{other}")),
            }
        }
        '.' => Err("'.' wildcard not supported (use \\PC)".into()),
        '|' => Err("alternation not supported".into()),
        c => {
            *pos += 1;
            Ok(Node::Literal(c))
        }
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Result<Node, String> {
    let mut ranges = Vec::new();
    if chars.get(*pos) == Some(&'^') {
        return Err("negated classes not supported".into());
    }
    while *pos < chars.len() && chars[*pos] != ']' {
        let mut lo = chars[*pos];
        *pos += 1;
        if lo == '\\' {
            let Some(&esc) = chars.get(*pos) else {
                return Err("dangling '\\' in class".into());
            };
            *pos += 1;
            lo = esc;
        }
        // A range `a-z` (a trailing or leading '-' is a literal).
        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&c| c != ']') {
            *pos += 1;
            let mut hi = chars[*pos];
            *pos += 1;
            if hi == '\\' {
                let Some(&esc) = chars.get(*pos) else {
                    return Err("dangling '\\' in class".into());
                };
                *pos += 1;
                hi = esc;
            }
            if hi < lo {
                return Err(format!("inverted class range {lo}-{hi}"));
            }
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    if chars.get(*pos) != Some(&']') {
        return Err("unclosed '['".into());
    }
    *pos += 1;
    if ranges.is_empty() {
        return Err("empty character class".into());
    }
    Ok(Node::Class(ranges))
}

fn parse_quantifier(chars: &[char], pos: &mut usize) -> Result<(u32, u32), String> {
    match chars.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut min_text = String::new();
            while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                min_text.push(chars[*pos]);
                *pos += 1;
            }
            let min: u32 = min_text.parse().map_err(|_| "bad quantifier".to_string())?;
            let max = match chars.get(*pos) {
                Some(',') => {
                    *pos += 1;
                    let mut max_text = String::new();
                    while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                        max_text.push(chars[*pos]);
                        *pos += 1;
                    }
                    max_text.parse().map_err(|_| "bad quantifier".to_string())?
                }
                _ => min,
            };
            if chars.get(*pos) != Some(&'}') {
                return Err("unclosed '{'".into());
            }
            *pos += 1;
            if max < min {
                return Err("inverted quantifier bounds".into());
            }
            Ok((min, max))
        }
        Some('?') => {
            *pos += 1;
            Ok((0, 1))
        }
        Some('*') => {
            *pos += 1;
            Ok((0, 8))
        }
        Some('+') => {
            *pos += 1;
            Ok((1, 8))
        }
        _ => Ok((1, 1)),
    }
}

fn emit_sequence(seq: &[Quantified], rng: &mut TestRng, out: &mut String) {
    for q in seq {
        let reps = q.min + (rng.below(u64::from(q.max - q.min) + 1) as u32);
        for _ in 0..reps {
            emit_node(&q.node, rng, out);
        }
    }
}

/// A small pool of printable non-ASCII characters so `\PC` exercises
/// multi-byte UTF-8 paths.
const UNICODE_POOL: &[char] = &['é', 'ß', 'Ω', 'λ', '中', '文', 'Ж', '🎬'];

fn emit_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u64 = ranges.iter().map(|(lo, hi)| span_len(*lo, *hi)).sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let len = span_len(*lo, *hi);
                if pick < len {
                    out.push(char_at(*lo, pick));
                    return;
                }
                pick -= len;
            }
            unreachable!("class pick within total");
        }
        Node::Printable => {
            // Mostly printable ASCII, occasionally wider Unicode.
            if rng.below(8) == 0 {
                out.push(UNICODE_POOL[rng.below(UNICODE_POOL.len() as u64) as usize]);
            } else {
                out.push(char::from(0x20 + rng.below(0x5F) as u8));
            }
        }
        Node::Group(inner) => emit_sequence(inner, rng, out),
    }
}

fn span_len(lo: char, hi: char) -> u64 {
    u64::from(u32::from(hi) - u32::from(lo)) + 1
}

fn char_at(lo: char, offset: u64) -> char {
    char::from_u32(u32::from(lo) + offset as u32).expect("class chars stay in valid ranges")
}

#[cfg(test)]
mod tests {
    use super::RegexGen;
    use crate::test_runner::TestRng;

    fn sample(pattern: &str) -> String {
        RegexGen::parse(pattern)
            .unwrap()
            .generate(&mut TestRng::for_test(pattern))
    }

    #[test]
    fn workspace_patterns_all_parse() {
        for p in [
            "[a-z]{1,20}",
            "[bcdfgmprt][aeiou][bcdfgmprt]{1,3}",
            "[A-Z0-9]{1,10}",
            "[A-Za-z0-9_\\-\\.]{0,30}",
            "[a-z]{1,15}(_[a-z]{1,15}){0,3}",
            "\\PC{0,120}",
            "([a-z]{1,8} ){0,10}",
            "[a-e]",
            "[a-f]",
            "\\PC{0,40}",
        ] {
            let mut rng = TestRng::for_test(p);
            let gen = RegexGen::parse(p).unwrap_or_else(|e| panic!("{p}: {e}"));
            for _ in 0..50 {
                let _ = gen.generate(&mut rng);
            }
        }
    }

    #[test]
    fn class_output_stays_in_class() {
        let mut rng = TestRng::for_test("class");
        let gen = RegexGen::parse("[a-cx]{4,4}").unwrap();
        for _ in 0..100 {
            let s = gen.generate(&mut rng);
            assert_eq!(s.chars().count(), 4);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | 'x')), "{s}");
        }
    }

    #[test]
    fn group_repetition_bounds() {
        let mut rng = TestRng::for_test("group");
        let gen = RegexGen::parse("(ab){2,3}").unwrap();
        for _ in 0..50 {
            let s = gen.generate(&mut rng);
            assert!(s == "abab" || s == "ababab", "{s}");
        }
    }

    #[test]
    fn printable_is_not_control() {
        let mut rng = TestRng::for_test("pc");
        let gen = RegexGen::parse("\\PC{40,40}").unwrap();
        let s = gen.generate(&mut rng);
        assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
    }

    #[test]
    fn escaped_literals() {
        assert_eq!(sample("a\\.b\\-c"), "a.b-c");
    }

    #[test]
    fn unsupported_syntax_is_rejected() {
        assert!(RegexGen::parse("a|b").is_err());
        assert!(RegexGen::parse("[^a]").is_err());
        assert!(RegexGen::parse(".").is_err());
    }
}
