//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements the slice of proptest's API that the workspace's property
//! tests use: the [`proptest!`] macro with `#![proptest_config(...)]`,
//! [`prop_assert!`] / [`prop_assert_eq!`], the [`strategy::Strategy`] trait
//! with `prop_map`, range and tuple strategies, regex-literal string
//! strategies (a small generator-oriented regex subset), plus
//! [`collection::vec`], [`option::of`], and [`bool@crate::bool`]'s `ANY`.
//!
//! Semantics: each test runs `cases` deterministic pseudo-random cases
//! (seeded from the test name). There is no shrinking — a failing case
//! reports its inputs via the panic message from the assertion itself.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod string;
pub mod test_runner;

/// Strategies over collections (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over `Option` (`proptest::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`: `None` half the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` of a value from `inner`, or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Strategies over `bool` (`proptest::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The common import surface (`proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Alias module so `prop::bool::ANY`-style paths work.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("case {case}/{}: {e}", config.cases);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2i32..=2, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn regex_strings_match_class(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vec_and_option_compose(
            v in prop::collection::vec(prop::option::of(0usize..5), 1..10),
            b in prop::bool::ANY,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().flatten().all(|&x| x < 5));
            prop_assert_eq!(b || !b, true);
        }

        #[test]
        fn prop_map_applies(n in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(n % 2 == 0 && n < 20);
        }

        #[test]
        fn groups_repeat(s in "([a-b]{1,2}_){0,3}") {
            prop_assert!(s.len() <= 9);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 5..6);
        let mut r1 = crate::test_runner::TestRng::for_test("fixed");
        let mut r2 = crate::test_runner::TestRng::for_test("fixed");
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
