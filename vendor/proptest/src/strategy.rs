//! The [`Strategy`] trait and the built-in strategies for ranges, tuples,
//! mapped values, and regex string literals.

use crate::string::RegexGen;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// String-literal strategies generate strings matching the literal as a
/// (small-subset) regular expression.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        RegexGen::parse(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
