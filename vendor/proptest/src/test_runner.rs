//! Test-runner types: configuration, the deterministic RNG, and the
//! case-failure error carried by `prop_assert!`.

use std::fmt;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given rendered message.
    pub fn fail(message: String) -> Self {
        Self { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 generator, seeded from the test name so each
/// test sees a stable stream across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name: stable across runs (unlike `DefaultHasher`,
        // which is only stable within one program execution by contract).
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
