//! Offline stand-in for the `serde_json` crate: renders the vendored
//! serde's [`serde::Value`] trees as (pretty or compact) JSON text.

#![forbid(unsafe_code)]

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The vendored data model is infallible, so this is
/// never produced; it exists for API compatibility.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

/// Compact JSON for any serializable value.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), None, 0, &mut out);
    Ok(out)
}

/// Pretty-printed (2-space indented) JSON for any serializable value.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: floats always carry a decimal point or
                // exponent so they round-trip as floats.
                let text = format!("{x:?}");
                out.push_str(&text);
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            items.iter(),
            items.len(),
            '[',
            ']',
            indent,
            depth,
            out,
            |item, out, ind, d| write_value(item, ind, d, out),
        ),
        Value::Object(members) => write_seq(
            members.iter(),
            members.len(),
            '{',
            '}',
            indent,
            depth,
            out,
            |(key, item), out, ind, d| {
                write_string(key, out);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(item, ind, d, out);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I, T>(
    items: I,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(T, &mut String, Option<usize>, usize),
) where
    I: Iterator<Item = T>,
{
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(item, out, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_shapes() {
        let value = Value::Object(vec![
            ("name".into(), Value::Str("x\"y".into())),
            ("n".into(), Value::Int(-3)),
            ("f".into(), Value::Float(1.5)),
            (
                "list".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        assert_eq!(
            to_string(&value).unwrap(),
            r#"{"name":"x\"y","n":-3,"f":1.5,"list":[true,null],"empty":[]}"#
        );
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n  \"name\": \"x\\\"y\""), "{pretty}");
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn floats_keep_a_decimal_marker() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
