//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements exactly the slice of the `rand 0.8` API that the workspace
//! uses: [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], [`rngs::mock::StepRng`],
//! and [`seq::SliceRandom`] (`choose` / `shuffle`).
//!
//! The generator behind [`rngs::StdRng`] is SplitMix64 — statistically fine
//! for synthetic-corpus generation and fully deterministic from the seed,
//! which is the only property the workspace relies on. Streams differ from
//! upstream `rand`, so generated corpora differ in content (not in shape or
//! invariants) from builds against crates.io.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness: the subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in the given (half-open or inclusive) range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators: the subset of `rand::SeedableRng` used here.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// `u64 -> f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::super::Rng;

        /// Arithmetic-progression generator (`rand::rngs::mock::StepRng`).
        #[derive(Debug, Clone)]
        pub struct StepRng {
            value: u64,
            step: u64,
        }

        impl StepRng {
            /// Starts at `initial`, advancing by `step` per draw.
            pub fn new(initial: u64, step: u64) -> Self {
                Self {
                    value: initial,
                    step,
                }
            }
        }

        impl Rng for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.step);
                out
            }
        }
    }
}

/// Sequence helpers (`rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(0, 13);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 13);
        assert_eq!(rng.next_u64(), 26);
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
