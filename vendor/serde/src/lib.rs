//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the slice of serde the workspace uses: a [`Serialize`] trait
//! (JSON-oriented — it produces a [`Value`] tree directly instead of
//! driving a generic `Serializer`), `#[derive(Serialize)]` for plain
//! named-field structs (via the vendored `serde_derive`), and impls for the
//! std types the workspace serializes. The sibling `serde_json` stub
//! renders [`Value`] trees as JSON text.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A JSON value tree: the data model behind [`Serialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any signed integer.
    Int(i128),
    /// Integers above `i128::MAX` are unrepresentable and unused here.
    UInt(u128),
    /// A finite or non-finite double (non-finite renders as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object whose member order is the declaration order.
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves into a JSON [`Value`].
pub trait Serialize {
    /// The value tree for `self`.
    fn to_json_value(&self) -> Value;
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}

serialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_json_value(&self) -> Value {
        Value::UInt(*self)
    }
}

impl Serialize for i128 {
    fn to_json_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_json_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_impls_cover_workspace_field_types() {
        assert_eq!(3usize.to_json_value(), Value::Int(3));
        assert_eq!((-4i32).to_json_value(), Value::Int(-4));
        assert_eq!(1.5f64.to_json_value(), Value::Float(1.5));
        assert_eq!(true.to_json_value(), Value::Bool(true));
        assert_eq!("x".to_json_value(), Value::Str("x".into()));
        assert_eq!(
            [1.0f64, 2.0].to_json_value(),
            Value::Array(vec![Value::Float(1.0), Value::Float(2.0)])
        );
        assert_eq!(Option::<u32>::None.to_json_value(), Value::Null);
    }
}
