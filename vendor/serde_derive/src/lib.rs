//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the shapes this workspace actually
//! declares: non-generic structs with named fields (and unit structs, which
//! serialize as empty objects). Anything else — enums, tuple structs,
//! generics, `#[serde(...)]` attributes — is rejected with a compile error,
//! keeping the stub honest about its coverage.
//!
//! Built on the compiler's own `proc_macro` API only, so it needs no
//! `syn`/`quote` from crates.io.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` (an object of the named fields,
/// in declaration order).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(stream) => stream,
        Err(message) => format!("compile_error!({message:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes_and_visibility(&trees, &mut i);
    match trees.get(i) {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => i += 1,
        Some(TokenTree::Ident(kw)) if kw.to_string() == "enum" => {
            return Err("this vendored serde_derive does not support enums".into());
        }
        _ => return Err("expected a struct declaration".into()),
    }
    let name = match trees.get(i) {
        Some(TokenTree::Ident(name)) => {
            i += 1;
            name.to_string()
        }
        _ => return Err("expected a struct name".into()),
    };
    // Unit struct `struct X;` — serialize as an empty object.
    if trees.get(i).is_none() || punct_is(trees.get(i), ';') {
        return Ok(render(&name, &[]));
    }
    match trees.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            Err("this vendored serde_derive does not support generics".into())
        }
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
            let fields = field_names(body.stream())?;
            Ok(render(&name, &fields))
        }
        Some(TokenTree::Group(_)) => {
            Err("this vendored serde_derive does not support tuple structs".into())
        }
        _ => Err("unsupported struct shape".into()),
    }
}

fn punct_is(tree: Option<&TokenTree>, c: char) -> bool {
    matches!(tree, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attributes_and_visibility(trees: &[TokenTree], i: &mut usize) {
    loop {
        match trees.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the attribute body group
                if matches!(trees.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(kw)) if kw.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    trees.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// The field identifiers of a named-field struct body, in order.
fn field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let trees: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        skip_attributes_and_visibility(&trees, &mut i);
        let Some(TokenTree::Ident(field)) = trees.get(i) else {
            return Err("expected a named field".into());
        };
        if !punct_is(trees.get(i + 1), ':') {
            return Err(format!("field {field} is not a named field"));
        }
        fields.push(field.to_string());
        i += 2;
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        while let Some(tree) = trees.get(i) {
            match tree {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

fn render(name: &str, fields: &[String]) -> TokenStream {
    let members: String = fields
        .iter()
        .map(|f| format!("({f:?}.to_string(), serde::Serialize::to_json_value(&self.{f})),"))
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> serde::Value {{\n\
                 serde::Value::Object(vec![{members}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}
