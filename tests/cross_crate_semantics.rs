//! Cross-crate consistency tests: invariants that hold only when the
//! substrates (tree model, semantic network, similarity measures) agree
//! with the core framework's expectations.

use semsim::{extended_gloss_overlap, lin, wu_palmer, CombinedSimilarity};
use xmltree::tree::TreeBuilder;
use xsdf::senses::{disambiguation_candidates, SenseCandidates};
use xsdf::sphere::{concept_context_vector, xml_context_vector};
use xsdf::LingTokenizer;

#[test]
fn similarity_measures_agree_on_identity_and_bounds() {
    let sn = semnet::mini_wordnet();
    let probe: Vec<_> = sn.all_concepts().step_by(97).collect();
    let sim = CombinedSimilarity::default();
    for &a in &probe {
        assert!((sim.similarity(sn, a, a) - 1.0).abs() < 1e-9);
        for &b in &probe {
            for (name, v) in [
                ("wp", wu_palmer(sn, a, b)),
                ("lin", lin(sn, a, b)),
                ("gloss", extended_gloss_overlap(sn, a, b)),
                ("combined", sim.similarity(sn, a, b)),
            ] {
                assert!(
                    (0.0..=1.0).contains(&v),
                    "{name}({}, {}) = {v}",
                    sn.concept(a).key,
                    sn.concept(b).key
                );
            }
        }
    }
}

#[test]
fn every_lexicon_word_produces_candidates() {
    // The lexicon predicate used by pre-processing and the candidate
    // resolution used by disambiguation must agree: every word the
    // network knows yields at least one candidate for an element node.
    let sn = semnet::mini_wordnet();
    for word in [
        "state",
        "cast",
        "head",
        "first name",
        "kelly",
        "waffle",
        "zone",
    ] {
        assert!(sn.has_word(word), "{word}");
        match disambiguation_candidates(sn, word, xmltree::NodeKind::Element) {
            SenseCandidates::Single(senses) => assert!(!senses.is_empty(), "{word}"),
            other => panic!("{word}: {other:?}"),
        }
    }
}

#[test]
fn xml_and_concept_vectors_share_one_label_space() {
    // Definition 10 compares XML-side and network-side vectors by cosine:
    // they must inhabit the same space of lowercase word labels.
    let sn = semnet::mini_wordnet();
    let doc = xmltree::parse(
        "<films><picture><cast><star>Stewart</star><star>Kelly</star></cast></picture></films>",
    )
    .unwrap();
    let tree = TreeBuilder::with_tokenizer(LingTokenizer::new(sn))
        .build(&doc)
        .unwrap()
        .tree;
    let cast = tree.preorder().find(|&n| tree.label(n) == "cast").unwrap();
    let xml_v = xml_context_vector(&tree, cast, 2);
    let concept_v = concept_context_vector(
        sn,
        sn.by_key("cast.actors").unwrap(),
        2,
        &semnet::graph::RelationFilter::All,
    );
    // Both vectors mention "star" (structural sibling / member concept).
    assert!(xml_v.get("star") > 0.0);
    assert!(concept_v.get("star") > 0.0);
    assert!(xml_v.cosine(&concept_v) > 0.0);
}

#[test]
fn corpus_gold_is_always_reachable_by_the_pipeline() {
    // For every gold node of a sampled corpus, the gold key must be among
    // the disambiguation candidates the pipeline would consider.
    let sn = semnet::mini_wordnet();
    let corpus = corpus::Corpus::generate_small(sn, 1234, 1);
    for doc in corpus.documents() {
        for (&node, gold) in &doc.gold {
            let label = doc.tree.label(node);
            let kind = doc.tree.node(node).kind;
            let keys: Vec<String> = match disambiguation_candidates(sn, label, kind) {
                SenseCandidates::Unknown => Vec::new(),
                SenseCandidates::Single(senses) => {
                    senses.iter().map(|&c| sn.concept(c).key.clone()).collect()
                }
                SenseCandidates::Compound { first, second } => first
                    .iter()
                    .flat_map(|&a| {
                        second
                            .iter()
                            .map(move |&b| format!("{}+{}", sn.concept(a).key, sn.concept(b).key))
                    })
                    .collect(),
            };
            assert!(
                keys.contains(&gold.key()),
                "{label}: {:?} not in {keys:?}",
                gold.key()
            );
        }
    }
}

#[test]
fn baselines_and_xsdf_use_identical_trees() {
    // All methods must see the same pre-processed tree: assignments refer
    // to the same NodeIds.
    use baselines::{Disambiguator, Rpd, Vsd, XsdfDisambiguator};
    let sn = semnet::mini_wordnet();
    let doc = xmltree::parse("<films><picture><cast><star>Kelly</star></cast></picture></films>")
        .unwrap();
    let tree = TreeBuilder::with_tokenizer(LingTokenizer::new(sn))
        .build(&doc)
        .unwrap()
        .tree;
    let xsdf = XsdfDisambiguator::new(xsdf::XsdfConfig::default());
    let methods: [&dyn Disambiguator; 3] = [&xsdf, &Rpd::new(), &Vsd::new()];
    for m in methods {
        for &node in m.disambiguate(sn, &tree).keys() {
            assert!(
                node.index() < tree.len(),
                "{} assigned an out-of-tree node",
                m.name()
            );
        }
    }
}

#[test]
fn mini_wordnet_roundtrips_and_still_disambiguates() {
    // Serialize the builtin network to the text format, load it back, and
    // run the flagship example against the loaded copy.
    let sn = semnet::builtin::build_mini_wordnet();
    let text = semnet::format::to_text(&sn);
    let reloaded = semnet::format::from_text(&text).unwrap();
    let result = xsdf::Xsdf::new(&reloaded, xsdf::XsdfConfig::default())
        .disambiguate_str("<films><picture><cast><star>Kelly</star></cast></picture></films>")
        .unwrap();
    assert_eq!(result.assignment_for_label("kelly"), Some("kelly.grace"));
    assert_eq!(result.assignment_for_label("cast"), Some("cast.actors"));
}
