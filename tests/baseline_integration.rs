//! Integration tests of the RPD and VSD baselines against the generated
//! corpus: the qualitative behaviours Table 4 and Section 4.3.2 describe.

use baselines::{Disambiguator, Rpd, Vsd, XsdfDisambiguator};
use corpus::Corpus;
use xmltree::NodeKind;
use xsdf::XsdfConfig;

#[test]
fn baselines_disambiguate_all_structural_nodes_they_know() {
    // Motivation 1: RPD and VSD have no target-selection phase — every
    // structural node with senses gets processed.
    let sn = semnet::mini_wordnet();
    let corpus = Corpus::generate_small(sn, 77, 1);
    let doc = corpus.dataset(corpus::DatasetId::Imdb).next().unwrap();
    for method in [&Rpd::new() as &dyn Disambiguator, &Vsd::new()] {
        let out = method.disambiguate(sn, &doc.tree);
        for node in doc.tree.preorder() {
            if doc.tree.node(node).kind == NodeKind::ValueToken {
                assert!(
                    !out.contains_key(&node),
                    "{} touched a token",
                    method.name()
                );
            }
        }
        assert!(!out.is_empty());
    }
}

#[test]
fn content_extension_covers_tokens_too() {
    let sn = semnet::mini_wordnet();
    let corpus = Corpus::generate_small(sn, 77, 1);
    let doc = corpus.dataset(corpus::DatasetId::Imdb).next().unwrap();
    let faithful = Rpd::new().disambiguate(sn, &doc.tree);
    let extended = Rpd::with_content().disambiguate(sn, &doc.tree);
    assert!(extended.len() > faithful.len());
    // The extension is a superset on structural nodes.
    for node in faithful.keys() {
        assert!(extended.contains_key(node));
    }
}

#[test]
fn target_restricted_runs_match_full_runs() {
    // disambiguate_targets must agree with disambiguate on the overlap.
    let sn = semnet::mini_wordnet();
    let corpus = Corpus::generate_small(sn, 42, 1);
    let doc = corpus.dataset(corpus::DatasetId::CdCatalog).next().unwrap();
    let targets: Vec<_> = doc.gold.keys().copied().collect();
    for method in [
        &Rpd::new() as &dyn Disambiguator,
        &Vsd::new(),
        &XsdfDisambiguator::new(XsdfConfig::default()),
    ] {
        let full = method.disambiguate(sn, &doc.tree);
        let restricted = method.disambiguate_targets(sn, &doc.tree, &targets);
        for node in &targets {
            assert_eq!(
                full.get(node),
                restricted.get(node),
                "{} differs on node {node:?}",
                method.name()
            );
        }
    }
}

#[test]
fn vsd_context_is_wider_than_rpd_context() {
    // VSD sees siblings (crossable edges in all directions); RPD sees only
    // the root path. On a node whose evidence is all in its siblings, VSD
    // can succeed where RPD has nothing to go on beyond sense frequency.
    let sn = semnet::mini_wordnet();
    let doc = xmltree::parse("<files><cast/><star/><actor/><director/></files>").unwrap();
    let tree = xmltree::tree::TreeBuilder::with_tokenizer(xsdf::LingTokenizer::new(sn))
        .build(&doc)
        .unwrap()
        .tree;
    let cast = tree.preorder().find(|&n| tree.label(n) == "cast").unwrap();
    let vsd_out = Vsd::new().disambiguate(sn, &tree);
    let choice = vsd_out[&cast];
    let key = match choice {
        xsdf::SenseChoice::Single(c) => sn.concept(c).key.clone(),
        xsdf::SenseChoice::Pair(a, b) => format!("{}+{}", sn.concept(a).key, sn.concept(b).key),
    };
    assert_eq!(
        key, "cast.actors",
        "VSD should leverage sibling actors/stars"
    );
}

#[test]
fn methods_rank_as_figure9_on_a_small_sample() {
    // A coarse smoke check of the Figure 9 ordering on a reduced corpus:
    // XSDF's f-value is at least that of both baselines on Group 1.
    use xsdf_eval::experiments::score_document;
    use xsdf_eval::metrics::PrfScores;
    let sn = semnet::mini_wordnet();
    let corpus = Corpus::generate_small(sn, 2015, 3);
    let samples = corpus.sample_targets(13);
    let xsdf = XsdfDisambiguator::new(XsdfConfig::optimal_rich());
    let rpd = Rpd::new();
    let vsd = Vsd::new();
    let mut scores = [PrfScores::default(); 3];
    for (doc_idx, targets) in &samples {
        let doc = &corpus.documents()[*doc_idx];
        if doc.dataset != corpus::DatasetId::Shakespeare {
            continue;
        }
        let methods: [&dyn Disambiguator; 3] = [&xsdf, &rpd, &vsd];
        for (i, m) in methods.iter().enumerate() {
            scores[i].merge(score_document(sn, *m, doc, targets));
        }
    }
    let [x, r, v] = scores.map(|s| s.f_value());
    assert!(x > r, "XSDF {x} should beat RPD {r} on Group 1");
    assert!(x > v, "XSDF {x} should beat VSD {v} on Group 1");
}
