//! End-to-end integration tests: raw XML strings through the full XSDF
//! pipeline (parser → pre-processing → selection → disambiguation →
//! semantic tree), exercising the paper's running examples.

use xsdf::{DisambiguationProcess, ThresholdPolicy, Xsdf, XsdfConfig};

const FIGURE1_DOC1: &str = r#"<?xml version="1.0"?>
<films>
  <picture title="Rear Window">
    <director>Hitchcock</director>
    <year>1954</year>
    <genre>mystery</genre>
    <cast>
      <star>Stewart</star>
      <star>Kelly</star>
    </cast>
    <plot>A wheelchair bound photographer spies on his neighbors</plot>
  </picture>
</films>"#;

const FIGURE1_DOC2: &str = r#"<?xml version="1.0"?>
<movies>
  <movie year="1954">
    <name>Rear Window</name>
    <directed_by>Alfred Hitchcock</directed_by>
    <actors>
      <actor><firstname>Grace</firstname><lastname>Kelly</lastname></actor>
      <actor><firstname>James</firstname><lastname>Stewart</lastname></actor>
    </actors>
  </movie>
</movies>"#;

#[test]
fn figure1_both_documents_resolve_the_same_entities() {
    // Figure 1's motivating claim: two documents with different structure
    // and tagging describe the same movie; disambiguation should surface
    // the same concepts from both.
    let sn = semnet::mini_wordnet();
    let xsdf = Xsdf::new(sn, XsdfConfig::default());
    let r1 = xsdf.disambiguate_str(FIGURE1_DOC1).unwrap();
    let r2 = xsdf.disambiguate_str(FIGURE1_DOC2).unwrap();
    assert_eq!(r1.assignment_for_label("kelly"), Some("kelly.grace"));
    assert_eq!(r2.assignment_for_label("kelly"), Some("kelly.grace"));
    assert_eq!(r1.assignment_for_label("stewart"), Some("stewart.james"));
    assert_eq!(r2.assignment_for_label("stewart"), Some("stewart.james"));
    assert_eq!(
        r1.assignment_for_label("hitchcock"),
        Some("hitchcock.alfred")
    );
    assert_eq!(
        r2.assignment_for_label("hitchcock"),
        Some("hitchcock.alfred")
    );
}

#[test]
fn headline_example_cast_star_picture() {
    let sn = semnet::mini_wordnet();
    let result = Xsdf::new(sn, XsdfConfig::default())
        .disambiguate_str(FIGURE1_DOC1)
        .unwrap();
    assert_eq!(result.assignment_for_label("cast"), Some("cast.actors"));
    assert_eq!(result.assignment_for_label("star"), Some("star.performer"));
    assert_eq!(result.assignment_for_label("picture"), Some("film.movie"));
    assert_eq!(result.assignment_for_label("genre"), Some("genre.kind"));
}

#[test]
fn ambiguity_selection_reduces_work() {
    // Motivation 1: with the automatic threshold, only the most ambiguous
    // nodes are processed; with threshold 0, every known node is.
    let sn = semnet::mini_wordnet();
    let all = Xsdf::new(sn, XsdfConfig::default())
        .disambiguate_str(FIGURE1_DOC1)
        .unwrap();
    let selective = Xsdf::new(
        sn,
        XsdfConfig {
            threshold: ThresholdPolicy::Auto,
            ..XsdfConfig::default()
        },
    )
    .disambiguate_str(FIGURE1_DOC1)
    .unwrap();
    let all_targets = all.targets().count();
    let selective_targets = selective.targets().count();
    assert!(
        selective_targets < all_targets,
        "{selective_targets} !< {all_targets}"
    );
    assert!(selective_targets > 0);
    // Selected nodes are the most ambiguous ones.
    let min_selected = selective
        .targets()
        .map(|r| r.ambiguity)
        .fold(f64::INFINITY, f64::min);
    let max_unselected = selective
        .reports
        .iter()
        .filter(|r| !r.selected && r.candidates > 0)
        .map(|r| r.ambiguity)
        .fold(0.0f64, f64::max);
    assert!(min_selected >= max_unselected);
}

#[test]
fn all_three_processes_agree_on_easy_nodes() {
    let sn = semnet::mini_wordnet();
    for process in [
        DisambiguationProcess::ConceptBased,
        DisambiguationProcess::ContextBased,
        DisambiguationProcess::Combined {
            concept: 0.5,
            context: 0.5,
        },
    ] {
        let cfg = XsdfConfig {
            process,
            ..XsdfConfig::default()
        };
        let result = Xsdf::new(sn, cfg).disambiguate_str(FIGURE1_DOC1).unwrap();
        // "mystery" under genre is nearly unambiguous in context.
        assert_eq!(
            result.assignment_for_label("mystery"),
            Some("mystery.story"),
            "{process:?}"
        );
    }
}

#[test]
fn semantic_tree_round_trips_to_annotated_xml() {
    let sn = semnet::mini_wordnet();
    let result = Xsdf::new(sn, XsdfConfig::default())
        .disambiguate_str(FIGURE1_DOC1)
        .unwrap();
    let xml = result.semantic_tree.to_annotated_xml();
    assert!(xml.contains("concept=\"kelly.grace\""));
    assert!(xml.contains("concept=\"cast.actors\""));
    // The annotated output is well-formed XML.
    let reparsed = xmltree::parse(&xml).expect("annotated XML parses");
    assert!(reparsed.element_count() > 10);
}

#[test]
fn malformed_xml_is_an_error_not_a_panic() {
    let sn = semnet::mini_wordnet();
    let xsdf = Xsdf::new(sn, XsdfConfig::default());
    assert!(xsdf.disambiguate_str("<films><cast></films>").is_err());
    assert!(xsdf.disambiguate_str("").is_err());
    assert!(xsdf.disambiguate_str("not xml at all").is_err());
}

#[test]
fn unknown_vocabulary_is_left_untouched() {
    let sn = semnet::mini_wordnet();
    let result = Xsdf::new(sn, XsdfConfig::default())
        .disambiguate_str("<zorbleflux><quuxit>Blargh</quuxit></zorbleflux>")
        .unwrap();
    assert_eq!(result.assigned_count(), 0);
    assert_eq!(result.targets().count(), 0);
}

#[test]
fn custom_semantic_network_via_text_format() {
    // A user-supplied knowledge base loaded from the text format drives the
    // same pipeline.
    let text = "\
concept entity | n | 10 | entity | the root of everything
concept gadget.n | n | 5 | gadget, widget | a small mechanical device
concept widget.gui | n | 3 | widget | an element of a graphical user interface on a screen
concept device.n | n | 4 | device | a mechanical contraption invented for a purpose
concept screen.n | n | 4 | screen | the display surface of a computer interface
rel gadget.n isa device.n
rel device.n isa entity
rel widget.gui isa entity
rel screen.n isa entity
rel widget.gui part-of screen.n
";
    let sn = semnet::format::from_text(text).unwrap();
    let result = Xsdf::new(&sn, XsdfConfig::default())
        .disambiguate_str("<screen><widget/></screen>")
        .unwrap();
    // In a screen context, "widget" is the GUI element, not the gadget.
    assert_eq!(result.assignment_for_label("widget"), Some("widget.gui"));
}

#[test]
fn structure_only_mode_skips_content() {
    let sn = semnet::mini_wordnet();
    let cfg = XsdfConfig {
        structure_and_content: false,
        ..XsdfConfig::default()
    };
    let result = Xsdf::new(sn, cfg).disambiguate_str(FIGURE1_DOC1).unwrap();
    assert!(result.reports.iter().all(|r| r.label != "kelly"));
    assert_eq!(result.assignment_for_label("cast"), Some("cast.actors"));
}
