//! Shape tests for the reproduced tables and figures: on a reduced corpus,
//! the qualitative findings of the paper's Section 4 must hold. (The full
//! corpus numbers live in EXPERIMENTS.md and regenerate via the `exp_*`
//! binaries; these tests keep the shapes from regressing.)

use corpus::{Corpus, Group};
use xsdf_eval::experiments::{fig9, table1, table2, table3, table4};

fn small_corpus() -> (&'static semnet::SemanticNetwork, Corpus) {
    let sn = semnet::mini_wordnet();
    // 3 documents per dataset keeps the suite fast while preserving shapes.
    (sn, Corpus::generate_small(sn, 2015, 3))
}

#[test]
fn table1_group_ordering() {
    let (sn, corpus) = small_corpus();
    let t1 = table1::run(sn, &corpus);
    let amb = |g: usize| t1.groups[g - 1].amb_deg;
    let st = |g: usize| t1.groups[g - 1].struct_deg;
    // Groups 1-2 are the high-ambiguity half; group 1 is the most
    // structured, group 2 the least.
    assert!(amb(1) > amb(3), "G1 {:.4} vs G3 {:.4}", amb(1), amb(3));
    assert!(amb(1) > amb(4));
    assert!(amb(2) > amb(4));
    assert!(st(1) > st(2), "G1 {:.4} vs G2 {:.4}", st(1), st(2));
}

#[test]
fn table2_group1_positive_group4_weak() {
    let (sn, corpus) = small_corpus();
    let t2 = table2::run(sn, &corpus, 13);
    // The paper's headline: strong positive correlation on Group 1,
    // weak-to-negative on Group 4 (whose personnel dataset is the most
    // negative row).
    assert!(
        t2.group1_correlation() > 0.15,
        "G1 {:.3}",
        t2.group1_correlation()
    );
    assert!(
        t2.group4_mean_correlation() < t2.group1_correlation() - 0.2,
        "G4 {:.3} vs G1 {:.3}",
        t2.group4_mean_correlation(),
        t2.group1_correlation()
    );
    let doc9 = &t2.rows[8];
    assert!(
        doc9.correlations[0] < 0.0,
        "personnel should correlate negatively"
    );
}

#[test]
fn table3_shakespeare_largest_catalog_smallest() {
    let (sn, corpus) = small_corpus();
    let t3 = table3::run(sn, &corpus);
    let nodes = |i: usize| t3.rows[i - 1].avg_nodes;
    assert!(nodes(1) > nodes(2), "shakespeare > amazon");
    assert!(nodes(2) > nodes(8), "amazon > plant catalog");
    // Polysemy: the high-ambiguity groups lead.
    let poly = |i: usize| t3.rows[i - 1].stats.polysemy_avg;
    assert!(
        poly(1) > poly(7),
        "shakespeare more polysemous than food menu"
    );
}

#[test]
fn table4_checklist_is_the_papers() {
    let rows = table4::rows();
    assert!(rows.iter().all(|f| f.xsdf), "XSDF checks every feature");
    assert_eq!(rows.iter().filter(|f| f.rpd).count(), 1);
    assert_eq!(rows.iter().filter(|f| f.vsd).count(), 5);
}

#[test]
fn fig9_xsdf_leads_where_the_paper_says() {
    let (sn, corpus) = small_corpus();
    let f9 = fig9::run(sn, &corpus, 13);
    // Group 1: the paper's largest improvement.
    assert!(
        f9.f(1, "XSDF") > f9.f(1, "RPD"),
        "G1: XSDF {:.3} vs RPD {:.3}",
        f9.f(1, "XSDF"),
        f9.f(1, "RPD")
    );
    assert!(f9.f(1, "XSDF") > f9.f(1, "VSD"));
    // Group 2: clear improvement too.
    assert!(f9.f(2, "XSDF") > f9.f(2, "RPD"));
    // Group 4: "almost 0% improvement... RPD produces better results":
    // RPD must at least win on precision there.
    let xsdf4 = f9.cell(4, "XSDF").unwrap();
    let rpd4 = f9.cell(4, "RPD").unwrap();
    assert!(rpd4.precision > xsdf4.precision, "RPD leads G4 precision");
    // And the f-gap on G4 is small (±10%).
    let gap = (xsdf4.f_value - rpd4.f_value).abs();
    assert!(gap < 0.1, "G4 f-gap {gap:.3} should be near zero");
}

#[test]
fn fig9_optimal_configs_match_paper() {
    assert_eq!(fig9::optimal_config(Group::G1).radius, 1);
    for g in [Group::G2, Group::G3, Group::G4] {
        assert_eq!(fig9::optimal_config(g).radius, 3);
    }
}

#[test]
fn f_values_in_papers_ballpark() {
    // The paper reports f-values roughly in [0.55, 0.69] for XSDF across
    // configurations; allow a generous band around it.
    let (sn, corpus) = small_corpus();
    let f9 = fig9::run(sn, &corpus, 13);
    for group in 1..=4 {
        let f = f9.f(group, "XSDF");
        assert!((0.45..=0.95).contains(&f), "group {group}: f = {f:.3}");
    }
}
